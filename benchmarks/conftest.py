"""Benchmark plumbing.

Every benchmark regenerates one table or figure of the paper and prints
the rows/series (bypassing capture) so that

    pytest benchmarks/ --benchmark-only

produces the full paper-vs-measured record. Experiments run once per
benchmark (``rounds=1``): the quantity under test is the experiment's
output, the wall time is reported for bookkeeping.
"""

import pytest


@pytest.fixture
def run_once(benchmark, capsys):
    """Run an experiment once under the benchmark timer and print its
    rendered output to the real terminal."""

    def _run(run_fn, render_fn, *args, **kwargs):
        result = benchmark.pedantic(
            lambda: run_fn(*args, **kwargs), rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(render_fn(result))
        return result

    return _run
