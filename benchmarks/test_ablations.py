"""Ablations of Equinox's design choices (DESIGN.md per-experiment index).

Three studies beyond the paper's figures:

* hardware vs software scheduling — the §6 claim that a software
  control plane cannot harvest training without violating latency;
* staging-capacity sensitivity — how the <2% staging slice sizes the
  training prefetch pipeline;
* spike-guard threshold — the latency/harvest trade of the
  installation-time queue threshold.
"""

from repro.core.equinox import EquinoxAccelerator
from repro.dse.table1 import equinox_configuration
from repro.hw.config import AcceleratorConfig
from repro.models.lstm import deepbench_lstm


def _accelerator(scheduler="priority", staging_fraction=0.02,
                 queue_threshold=None):
    base = equinox_configuration("500us")
    config = AcceleratorConfig(
        name=base.name, n=base.n, m=base.m, w=base.w,
        frequency_hz=base.frequency_hz, encoding=base.encoding,
        staging_fraction=staging_fraction,
    )
    return EquinoxAccelerator(
        config, deepbench_lstm(), training_model=deepbench_lstm(),
        scheduler=scheduler, queue_threshold=queue_threshold,
    )


def test_ablation_software_scheduling(run_once):
    def run():
        rows = []
        for scheduler in ("priority", "software"):
            acc = _accelerator(scheduler=scheduler)
            report = acc.run(load=0.5, requests=8 * acc.batch_slots)
            rows.append(
                (scheduler, report.training_top_s, report.p99_latency_us / 1e3)
            )
        return rows

    def render(rows):
        lines = ["Ablation: hardware vs software scheduling @50% load",
                 "scheduler   train TOp/s   p99 ms"]
        for name, train, p99 in rows:
            lines.append(f"{name:10s} {train:12.1f} {p99:8.2f}")
        return "\n".join(lines)

    rows = run_once(run, render)
    by_name = {name: train for name, train, _ in rows}
    # Software scheduling harvests a small fraction of the hardware
    # scheduler's training throughput (the paper reports ~none).
    assert by_name["software"] < 0.5 * by_name["priority"]


def test_ablation_staging_capacity(run_once):
    def run():
        rows = []
        for fraction in (0.005, 0.02, 0.08):
            acc = _accelerator(staging_fraction=fraction)
            report = acc.run(load=0.4, requests=8 * acc.batch_slots)
            rows.append((fraction, report.training_top_s))
        return rows

    def render(rows):
        lines = ["Ablation: staging slice size vs training harvest @40% load",
                 "staging %   train TOp/s"]
        for fraction, train in rows:
            lines.append(f"{fraction * 100:8.1f} {train:14.1f}")
        return "\n".join(lines)

    rows = run_once(run, render)
    # More staging never hurts; the paper's 2% sits near the knee.
    assert rows[-1][1] >= rows[0][1] * 0.95


def test_ablation_queue_threshold(run_once):
    def run():
        rows = []
        acc0 = _accelerator()
        batch = acc0.batch_slots
        for threshold in (batch // 2, 2 * batch, 8 * batch):
            acc = _accelerator(queue_threshold=threshold)
            report = acc.run(load=0.8, requests=8 * acc.batch_slots)
            rows.append(
                (threshold, report.training_top_s, report.p99_latency_us / 1e3)
            )
        return rows

    def render(rows):
        lines = ["Ablation: spike-guard threshold @80% load",
                 "threshold req   train TOp/s   p99 ms"]
        for threshold, train, p99 in rows:
            lines.append(f"{threshold:13d} {train:13.1f} {p99:8.2f}")
        return "\n".join(lines)

    rows = run_once(run, render)
    # A looser guard lets more training through.
    assert rows[-1][1] >= rows[0][1]
