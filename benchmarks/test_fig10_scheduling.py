"""Figure 10: priority vs fair vs inference-only scheduling."""

from repro.eval import fig10


def test_fig10_scheduling(run_once):
    result = run_once(fig10.run, fig10.render)
    # Priority scheduling sustains at least the fair scheduler's
    # throughput under the latency target (paper: 1.3x better), and
    # approaches the inference-only accelerator.
    priority = result.max_throughput_under_target("Inf+Train+Priority")
    fair = result.max_throughput_under_target("Inf+Train+Fair")
    alone = result.max_throughput_under_target("Inf")
    assert priority >= fair
    assert priority >= 0.85 * alone
    # Training is actually harvested under both co-location policies.
    assert any(train > 10 for _, _, train in result.curves["Inf+Train+Priority"])
