"""Figure 11: adaptive batching policy, threshold sweep, training impact."""

from repro.eval import fig11


def test_fig11_adaptive_batching(run_once):
    result = run_once(fig11.run, fig11.render)
    # (a) static batching violates the target at low load; adaptive
    # bounds formation time and meets it.
    assert result.static_violates_at_low_load()
    assert result.adaptive_meets_at_low_load()
    # (b) larger thresholds mean higher low-load p99.
    low_idx = 0
    p99_2x = result.threshold_curves[2.0][low_idx][0]
    p99_10x = result.threshold_curves[10.0][low_idx][0]
    assert p99_10x > p99_2x
    # Long waits are infrequent: even at 10x, most batches are complete
    # at moderate load (paper: <1% incomplete).
    mid_idx = len(result.loads) // 2
    assert result.threshold_curves[10.0][mid_idx][2] < 0.5
