"""Figure 2: hbfp8 vs fp32 convergence (classification + perplexity)."""

from repro.eval import fig2


def test_fig2_convergence(run_once):
    result = run_once(fig2.run, fig2.render)
    # The claim: hbfp8 tracks fp32.
    assert result.final_error_gap() < 6.0
    assert 0.8 < result.final_perplexity_ratio() < 1.25
