"""Figure 6: latency-vs-throughput design space, hbfp8 and bfloat16."""

from repro.eval import fig6


def test_fig6_design_space(run_once):
    result = run_once(fig6.run, fig6.render)
    # hbfp8's frontier pushes far past bfloat16's early knee.
    assert result.max_throughput("hbfp8") > 300
    assert result.max_throughput("bfloat16") < 100
    assert result.knee_throughput("hbfp8") > 4 * result.knee_throughput(
        "bfloat16"
    )
