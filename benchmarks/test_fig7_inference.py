"""Figure 7: inference p99 latency vs throughput per configuration."""

from repro.eval import fig7


def test_fig7_inference(run_once):
    result = run_once(fig7.run, fig7.render)
    # Relaxed hbfp8 designs sustain several times the min design's
    # throughput under the latency target (paper: ~6x).
    best_min = result.max_throughput_under_target("hbfp8", "min")
    best_500 = result.max_throughput_under_target("hbfp8", "500us")
    assert best_500 > 3.5 * best_min
    # hbfp8 beats bfloat16 under the same target (paper: up to 5.15x).
    bf16 = result.max_throughput_under_target("bfloat16", "500us")
    assert best_500 > 3.5 * bf16
