"""Figure 8: Equinox_500µs MMU cycle breakdown, Inf vs Inf+Train."""

from repro.eval import fig8


def test_fig8_cycle_breakdown(run_once):
    result = run_once(fig8.run, fig8.render)
    # At 5% load roughly half the machine idles and dummies dominate
    # the busy share; training reclaims most of the idle.
    low = result.breakdowns[(0.05, False)]
    assert low["idle"] > 0.3
    assert low["dummy"] > low["working"]
    assert result.idle_reclaimed(0.05) > 0.15
    # At 95% the accelerator saturates: training is starved out.
    assert result.training_top_s[(0.95, True)] < result.training_top_s[
        (0.5, True)
    ]
