"""Figure 9: training throughput vs inference load, all configurations."""

from repro.eval import fig9


def test_fig9_training_throughput(run_once):
    result = run_once(fig9.run, fig9.render)
    # Equinox_500us harvests a large fraction of the dedicated
    # accelerator at 60% load (paper: 78%); Equinox_min stays low
    # (paper: 19%).
    assert result.fraction_of_max("500us", 0.6) > 0.45
    assert result.fraction_of_max("min", 0.6) < 0.35
    # Harvest declines with load for every configuration.
    for series in result.curves.values():
        assert series[0] > series[-1]
