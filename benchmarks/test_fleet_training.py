"""Fleet-scale free training (extension): N Equinox + parameter server."""

from repro.cluster import EquinoxFleet
from repro.workload import diurnal_load_profile


def _run():
    from repro.cluster import ParameterServer

    # A sharded parameter service (400 Gb/s aggregate fabric).
    fleet = EquinoxFleet(size=6, server=ParameterServer(network_bytes_per_s=50e9))
    # A fleet snapshot: six accelerators spread across the diurnal swing.
    loads = diurnal_load_profile(points=6, low=0.15, high=0.8)
    return fleet.train(loads=loads, batches=6, local_steps=8)


def _render(report):
    lines = [
        "Fleet training: 6x Equinox_500us + parameter server",
        "worker  load   inf TOp/s  train TOp/s  iter ms",
    ]
    for w in report.workers:
        lines.append(
            f"{w.worker_id:6d} {w.load:5.2f} {w.inference_top_s:10.1f} "
            f"{w.training_top_s:12.1f} {w.iteration_s * 1e3:8.2f}"
        )
    lines.append(
        f"round: compute {report.round.compute_s * 1e3:.2f} ms, "
        f"communication {report.round.communication_fraction:.0%}"
    )
    lines.append(
        f"fleet harvest: {report.fleet_training_top_s:.1f} TOp/s = "
        f"{report.dedicated_equivalents:.2f} dedicated training "
        f"accelerators for free ({report.samples_per_s:.0f} samples/s, "
        f"scaling efficiency {report.scaling_efficiency:.0%})"
    )
    return "\n".join(lines)


def test_fleet_training(run_once):
    report = run_once(_run, _render)
    # Six moderately loaded inference accelerators give away more than
    # one dedicated training accelerator's worth of throughput.
    assert report.dedicated_equivalents > 1.0
    assert report.scaling_efficiency > 0.5
