"""Kernel microbenchmarks: simulator event rate and quantized GEMMs.

Unlike the experiment benchmarks (rounds=1), these time small kernels
properly so regressions in the hot paths show up in the
pytest-benchmark table.
"""

import numpy as np

from repro.arith.bfloat16 import to_bfloat16
from repro.arith.bfp import BFPFormat, BlockFloatTensor
from repro.arith.hbfp import hbfp_gemm
from repro.sim.engine import Simulator
from repro.sim.resources import SerialResource


def test_event_loop_throughput(benchmark):
    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 5000:
                sim.after(1.0, tick)

        sim.after(1.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == 5000


def test_serial_resource_throughput(benchmark):
    def run():
        sim = Simulator()
        res = SerialResource(sim)
        for _ in range(2000):
            res.request(1.0)
        sim.run()
        return res.busy_cycles

    assert benchmark(run) == 2000.0


def test_bfp_quantization(benchmark):
    x = np.random.default_rng(0).standard_normal((256, 256)).astype(np.float32)
    fmt = BFPFormat()
    result = benchmark(lambda: BlockFloatTensor.from_float(x, fmt))
    assert result.shape == (256, 256)


def test_hbfp_gemm(benchmark):
    rng = np.random.default_rng(1)
    a = rng.standard_normal((64, 256)).astype(np.float32)
    b = rng.standard_normal((256, 64)).astype(np.float32)
    out = benchmark(lambda: hbfp_gemm(a, b))
    assert out.shape == (64, 64)


def test_bfloat16_rounding(benchmark):
    x = np.random.default_rng(2).standard_normal((512, 512)).astype(np.float32)
    out = benchmark(lambda: to_bfloat16(x))
    assert out.shape == x.shape
