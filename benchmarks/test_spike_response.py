"""Spike response: the priority guard in the time domain (extension)."""

from repro.eval import spike


def test_spike_response(run_once):
    result = run_once(spike.run, spike.render)
    # The guard sacrifices training, not latency, during the spike —
    # and the harvest recovers when the spike subsides (§3.2).
    assert result.training_drop() > 0.3
    assert result.recovers()
    assert result.latency_always_under_target()
