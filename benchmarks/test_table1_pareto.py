"""Table 1: Pareto-optimal designs under latency constraints."""

from repro.eval import table1


def test_table1_pareto(run_once):
    result = run_once(table1.run, table1.render)
    # Headline ratios: paper reports 5.53x (50µs) and 6.67x (500µs).
    assert 4.0 <= result.throughput_ratio("hbfp8", "50us") <= 7.0
    assert 5.0 <= result.throughput_ratio("hbfp8", "500us") <= 8.0
