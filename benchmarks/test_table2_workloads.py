"""Table 2: workload sensitivity (LSTM, GRU, ResNet50)."""

from repro.eval import table2


def test_table2_workloads(run_once):
    result = run_once(table2.run, table2.render)
    # LSTM and GRU deliver near-identical throughput despite the two
    # orders of magnitude between their service times.
    assert result.recurrent_throughputs_match(tolerance=0.25)
    # ResNet50 runs at a fraction of peak: its lowered convolutions
    # tile poorly on the large MMU (paper: 67 vs 319 TOp/s).
    assert result.rows["resnet50"][1] < 0.5 * result.rows["lstm"][1]
    # GRU's service time is tens of ms, LSTM's sub-ms.
    assert result.rows["gru"][2] > 20.0
    assert result.rows["lstm"][2] < 1.0
