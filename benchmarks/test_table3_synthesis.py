"""Table 3: Equinox_500µs component area/power and overheads."""

from repro.eval import table3


def test_table3_synthesis(run_once):
    result = run_once(table3.run, table3.render)
    report = result.report
    assert report.total_area_mm2 < 320
    assert report.total_power_w < 95
    # Headline overheads: controllers <1%, encoding ~4% area/13% power.
    assert result.overheads["controller_area_overhead"] < 0.01
    assert result.overheads["controller_power_overhead"] < 0.01
    assert 0.02 < result.overheads["encoding_area_overhead"] < 0.07
    assert 0.08 < result.overheads["encoding_power_overhead"] < 0.18
