#!/usr/bin/env python3
"""Custom design-space exploration with the analytical models.

Shows the DSE API beyond the canned Table 1 picks: sweep a custom
technology (e.g., a smaller 150 mm² die at 40 W for an edge part),
extract the Pareto frontier, inspect what binds each design (area vs
power) and where the data-movement power share collapses — the §4
analysis, reproduced on the user's own constraints.

Run: python examples/design_space_exploration.py
"""

from dataclasses import replace

from repro.dse import (
    DesignSpaceExplorer,
    TSMC28,
    accelerator_power_w,
    pareto_frontier,
)


def main() -> None:
    # An edge-class envelope: half the die, half the power, 16 MB SRAM.
    edge_tech = replace(
        TSMC28, die_area_mm2=150.0, power_budget_w=40.0, sram_mb=16.0
    )
    explorer = DesignSpaceExplorer(
        encoding="hbfp8",
        tech=edge_tech,
        n_values=range(1, 129),
    )
    cloud = explorer.sweep()
    frontier = pareto_frontier(cloud)
    print(
        f"edge envelope ({edge_tech.die_area_mm2:.0f} mm2, "
        f"{edge_tech.power_budget_w:.0f} W): {len(cloud)} feasible points, "
        f"{len(frontier)} on the Pareto frontier\n"
    )

    print("   n    m   w   MHz   TOp/s   svc_us  bound  data-movement power")
    stride = max(1, len(frontier) // 12)
    for point in frontier[::stride]:
        power = accelerator_power_w(
            point.n, point.m, point.w, point.frequency_hz,
            point.encoding, edge_tech,
        )
        print(
            f"{point.n:4d} {point.m:4d} {point.w:3d} "
            f"{point.frequency_mhz:5.0f} {point.throughput_top_s:7.1f} "
            f"{point.service_time_us:8.1f}  {point.bound:5s}  "
            f"{power.data_movement_fraction:6.0%}"
        )

    knee = max(
        (p for p in frontier if p.service_time_us <= 100.0),
        key=lambda p: p.throughput_top_s,
        default=None,
    )
    best = max(frontier, key=lambda p: p.throughput_top_s)
    low = min(frontier, key=lambda p: p.service_time_us)
    print(
        f"\nlatency-optimal: {low.throughput_top_s:.1f} TOp/s at "
        f"{low.service_time_us:.1f} us"
    )
    if knee is not None:
        print(
            f"knee (<=100 us): {knee.throughput_top_s:.1f} TOp/s = "
            f"{knee.throughput_top_s / low.throughput_top_s:.1f}x the "
            f"latency-optimal design — the paper's §4 trade-off, on an "
            f"edge budget"
        )
    print(
        f"unconstrained:   {best.throughput_top_s:.1f} TOp/s at "
        f"{best.service_time_us:.1f} us"
    )


if __name__ == "__main__":
    main()
