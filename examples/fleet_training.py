#!/usr/bin/env python3
"""Fleet-scale free training: many Equinoxes, one model.

The paper's deployment story (§5) assumes synchronous data-parallel
training through a parameter server. This example scales it out: a
fleet of Equinox accelerators, each serving its own slice of a diurnal
inference load, jointly trains one LSTM — and the script answers the
operator's question: how many dedicated training accelerators is the
fleet's idle time worth?

Run: python examples/fleet_training.py
"""

from repro.cluster import EquinoxFleet, ParameterServer
from repro.workload import diurnal_load_profile


def main() -> None:
    size = 8
    fleet = EquinoxFleet(
        size=size,
        latency_class="500us",
        server=ParameterServer(network_bytes_per_s=50e9),  # 400 Gb/s fabric
    )
    loads = diurnal_load_profile(points=size, low=0.15, high=0.8)
    print(f"fleet of {size} x {fleet.config.name}, per-worker loads:")
    print("  " + ", ".join(f"{load:.0%}" for load in loads))

    for local_steps in (1, 8, 32):
        report = fleet.train(loads=loads, batches=6, local_steps=local_steps)
        print(
            f"\nsync every {local_steps:2d} local step(s): "
            f"{report.fleet_training_top_s:6.1f} TOp/s harvested = "
            f"{report.dedicated_equivalents:.2f} dedicated accelerators "
            f"(comm {report.round.communication_fraction:.0%}, "
            f"efficiency {report.scaling_efficiency:.0%})"
        )

    report = fleet.train(loads=loads, batches=6, local_steps=8)
    print("\nper-worker detail (sync every 8 steps):")
    print("  worker  load   inf TOp/s  train TOp/s   p99 ms")
    for w in report.workers:
        print(
            f"  {w.worker_id:6d} {w.load:5.0%} {w.inference_top_s:10.1f} "
            f"{w.training_top_s:12.1f} {w.p99_latency_us / 1e3:8.2f}"
        )
    print(
        f"\n=> the fleet trains {report.samples_per_s:,.0f} samples/s for "
        f"free while serving every inference request within its SLO"
    )


if __name__ == "__main__":
    main()
