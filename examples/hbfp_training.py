#!/usr/bin/env python3
"""HBFP training end to end: the arithmetic that makes Equinox possible.

Trains the same network under four GEMM datapaths — fp32, hbfp8 (the
Equinox encoding), bfloat16 (the reference custom-accelerator encoding)
and plain per-tensor fixed8 — and prints the validation curves side by
side, then does the same for a character language model's perplexity
(the Figure 2 experiments). Also reports the raw quantization noise of
a BFP round trip, to connect the convergence result back to the
encoding's numerics.

Run: python examples/hbfp_training.py
"""

import numpy as np

from repro.arith import BlockFloatTensor, BFPFormat, hbfp_gemm
from repro.arith.hbfp import hbfp_quantization_noise
from repro.train import convergence_experiment, perplexity_experiment


def main() -> None:
    # 1. The encoding itself: round-trip noise and a GEMM error probe.
    rng = np.random.default_rng(3)
    activations = rng.standard_normal((64, 256)).astype(np.float32)
    weights = (rng.standard_normal((256, 128)) * 0.1).astype(np.float32)
    noise = hbfp_quantization_noise(activations)
    exact = activations @ weights
    quantized = hbfp_gemm(activations, weights)
    gemm_err = np.abs(quantized - exact).max() / np.abs(exact).max()
    bfp = BlockFloatTensor.from_float(weights, BFPFormat())
    print(
        f"hbfp8 numerics: round-trip RMS noise {noise:.4f}, "
        f"GEMM max rel. error {gemm_err:.4f}, "
        f"storage {bfp.storage_bits() / weights.size:.2f} bits/value\n"
    )

    # 2. Figure 2a analog: classification under four datapaths.
    encodings = ("fp32", "hbfp8", "bfloat16", "fixed8")
    curves = convergence_experiment(encodings=encodings, epochs=10)
    print("validation error (%) by epoch:")
    header = "epoch " + "".join(f"{enc:>10s}" for enc in encodings)
    print(header)
    epochs = curves["fp32"].epochs
    for i, epoch in enumerate(epochs):
        row = f"{epoch:5d} " + "".join(
            f"{curves[enc].validation_error[i]:10.1f}" for enc in encodings
        )
        print(row)
    gap = abs(curves["hbfp8"].final_error - curves["fp32"].final_error)
    print(f"-> hbfp8 final error within {gap:.1f} points of fp32\n")

    # 3. Figure 2b analog: language-model perplexity.
    lm = perplexity_experiment(encodings=("fp32", "hbfp8"), epochs=8)
    print("validation perplexity by epoch:")
    print("epoch       fp32      hbfp8")
    for i, epoch in enumerate(lm["fp32"].epochs):
        print(
            f"{epoch:5d} {lm['fp32'].perplexities()[i]:10.2f} "
            f"{lm['hbfp8'].perplexities()[i]:10.2f}"
        )
    ratio = lm["hbfp8"].final_perplexity / lm["fp32"].final_perplexity
    print(f"-> hbfp8 final perplexity at {ratio:.3f}x fp32")


if __name__ == "__main__":
    main()
