#!/usr/bin/env python3
"""Inference serving study: latency/throughput across design points.

The scenario from the paper's introduction: an online service owner
must pick an accelerator shape under a tail-latency SLO. This example
sweeps offered load on the four Table 1 design points (inference only)
and prints each design's p99-vs-throughput curve plus the largest load
it can carry under the paper's service-level target — reproducing the
"relaxing the latency constraint buys ~6x throughput" trade-off of
Figures 6/7 from the user's side.

Run: python examples/inference_serving.py
"""

from repro.core import EquinoxAccelerator
from repro.dse import equinox_configuration, pareto_table
from repro.models import deepbench_lstm

LOADS = (0.2, 0.5, 0.8, 0.95)
SLO_MULTIPLE = 10.0


def main() -> None:
    print("Table 1 design points (hbfp8):")
    for name, point in pareto_table("hbfp8").items():
        print(
            f"  {name:6s} n={point.n:4d} {point.frequency_mhz:4.0f} MHz "
            f"{point.throughput_top_s:6.1f} TOp/s "
            f"service {point.service_time_us:6.1f} us"
        )

    # The SLO is set once, against the 500us design's mean service time.
    reference = EquinoxAccelerator(
        equinox_configuration("500us"), deepbench_lstm()
    )
    target_ms = SLO_MULTIPLE * reference.batch_service_us() / 1e3
    print(f"\nservice-level target: p99 <= {target_ms:.2f} ms\n")

    for name in ("min", "50us", "500us", "none"):
        config = equinox_configuration(name)
        best_under_target = 0.0
        rows = []
        for load in LOADS:
            equinox = EquinoxAccelerator(config, deepbench_lstm())
            report = equinox.run(load=load, requests=10 * equinox.batch_slots)
            p99_ms = report.p99_latency_us / 1e3
            rows.append(
                f"    load {load:4.0%}: {report.inference_top_s:6.1f} TOp/s, "
                f"p99 {p99_ms:7.2f} ms"
            )
            if p99_ms <= target_ms:
                best_under_target = max(best_under_target, report.inference_top_s)
        print(f"  equinox_{name}:")
        print("\n".join(rows))
        print(
            f"    -> sustains {best_under_target:.0f} TOp/s under the target\n"
        )


if __name__ == "__main__":
    main()
