#!/usr/bin/env python3
"""Piggybacked training over a datacenter day.

Inference accelerators average ~30 % load because demand varies through
the day (paper §1). This example replays a diurnal load profile with an
evening traffic spike through ONE persistent Equinox_500µs — queues,
in-flight batches and the training pipeline carry across hours — and
accounts, bucket by bucket, how much training the priority scheduler
harvests from the idle cycles, and how the spike guard sacrifices
training, not latency, when the spike hits.

Run: python examples/piggyback_training.py
"""

from repro.core import EquinoxAccelerator
from repro.dse import equinox_configuration
from repro.models import build_training_plan, deepbench_lstm
from repro.workload import diurnal_load_profile

SLO_MULTIPLE = 10.0
DWELL_S = 0.02  # simulated seconds per two-hour bucket


def main() -> None:
    config = equinox_configuration("500us")
    lstm = deepbench_lstm()
    dedicated = build_training_plan(lstm, config).dedicated_throughput_top_s()

    profile = diurnal_load_profile(points=12, low=0.1, high=0.7, peak_hour=14)
    profile[9] = 0.95  # an 18:00 traffic spike on top of the diurnal swing

    equinox = EquinoxAccelerator(
        config, lstm, training_model=deepbench_lstm()
    )
    target_ms = SLO_MULTIPLE * equinox.batch_service_us() / 1e3
    print(
        f"{config.name}: dedicated-training reference {dedicated:.0f} TOp/s, "
        f"p99 target {target_ms:.2f} ms\n"
    )

    reports = equinox.run_profile(profile, dwell_s=DWELL_S, seed=7)

    print("hour  load   inf TOp/s  train TOp/s  harvest   p99 ms   SLO")
    total_train = 0.0
    for bucket, (load, report) in enumerate(zip(profile, reports)):
        p99_ms = report.p99_latency_us / 1e3
        harvest = report.training_top_s / dedicated
        total_train += report.training_top_s
        print(
            f"{bucket * 2:4d}  {load:4.0%}  {report.inference_top_s:9.1f}  "
            f"{report.training_top_s:11.1f}  {harvest:7.0%}  {p99_ms:7.2f}"
            f"   {'ok' if p99_ms <= target_ms else 'VIOLATED'}"
        )

    mean_train = total_train / len(profile)
    print(
        f"\naverage harvested training: {mean_train:.0f} TOp/s "
        f"({mean_train / dedicated:.0%} of a dedicated accelerator) — "
        f"training obtained for free from inference idle cycles"
    )


if __name__ == "__main__":
    main()
