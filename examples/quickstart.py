#!/usr/bin/env python3
"""Quickstart: build Equinox_500µs, serve inference, piggyback training.

Walks the core API end to end:

1. pick a Pareto-optimal design point from the analytical DSE (Table 1);
2. install the DeepBench LSTM as the inference service and another LSTM
   as the piggybacked training service;
3. drive Poisson inference traffic at 50 % load;
4. read back the paper's headline metrics: p99 latency vs the
   service-level target, harvested training throughput, and the MMU
   cycle breakdown.

Run: python examples/quickstart.py
"""

from repro.core import EquinoxAccelerator
from repro.dse import equinox_configuration
from repro.models import build_training_plan, deepbench_lstm


def main() -> None:
    # 1. A design point off the Pareto frontier (paper Table 1).
    config = equinox_configuration("500us")
    print(
        f"design point: {config.name} — {config.m} arrays of "
        f"{config.n}x{config.n} PEs, {config.w} wide, "
        f"{config.frequency_hz / 1e6:.0f} MHz, "
        f"{config.peak_throughput_top_s:.0f} TOp/s peak"
    )

    # 2. Install services: LSTM inference + LSTM training (batch 128).
    lstm = deepbench_lstm()
    equinox = EquinoxAccelerator(config, lstm, training_model=deepbench_lstm())
    print(
        f"inference service: batch {equinox.batch_slots}, "
        f"service time {equinox.batch_service_us():.0f} us, "
        f"capacity {equinox.capacity_requests_per_s() / 1e3:.0f}k req/s"
    )

    # The reference a dedicated training accelerator would achieve.
    dedicated = build_training_plan(lstm, config).dedicated_throughput_top_s()

    # 3. Drive Poisson traffic at 50 % of capacity.
    report = equinox.run(load=0.5, requests=10 * equinox.batch_slots)

    # 4. Headline metrics.
    target_ms = 10.0 * equinox.batch_service_us() / 1e3
    print(f"\nat 50% load over {report.requests_completed} requests:")
    print(
        f"  inference: {report.inference_top_s:.0f} TOp/s, "
        f"p99 latency {report.p99_latency_us / 1e3:.2f} ms "
        f"(target {target_ms:.2f} ms — "
        f"{'met' if report.meets_target(target_ms * 1e3) else 'VIOLATED'})"
    )
    print(
        f"  training (for free): {report.training_top_s:.0f} TOp/s = "
        f"{report.training_top_s / dedicated * 100:.0f}% of a dedicated "
        f"training accelerator ({dedicated:.0f} TOp/s)"
    )
    print("  MMU cycles:", end=" ")
    print(
        ", ".join(
            f"{name} {frac * 100:.0f}%"
            for name, frac in report.cycle_breakdown.items()
        )
    )


if __name__ == "__main__":
    main()
