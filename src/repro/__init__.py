"""repro — reproduction of *Equinox: Training (for Free) on a Custom
Inference Accelerator* (MICRO 2021).

The top-level namespace re-exports the objects most users need; the
subpackages hold the full system (see README.md for the map):

>>> import repro
>>> config = repro.equinox_configuration("500us")
>>> accelerator = repro.EquinoxAccelerator(
...     config, repro.deepbench_lstm(),
...     training_model=repro.deepbench_lstm(),
... )
"""

from repro.core.equinox import EquinoxAccelerator, SimulationReport
from repro.dse.table1 import equinox_configuration, pareto_table
from repro.hw.config import AcceleratorConfig
from repro.models.gru import deepbench_gru
from repro.models.lstm import deepbench_lstm
from repro.models.resnet import resnet50
from repro.models.training import build_training_plan

__version__ = "1.0.0"

__all__ = [
    "EquinoxAccelerator",
    "SimulationReport",
    "AcceleratorConfig",
    "equinox_configuration",
    "pareto_table",
    "deepbench_lstm",
    "deepbench_gru",
    "resnet50",
    "build_training_plan",
    "__version__",
]
