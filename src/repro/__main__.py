"""Command-line experiment runner.

    python -m repro list
    python -m repro table1
    python -m repro fig9 --loads 0.2 0.6 0.95
    python -m repro all

Each experiment prints the same text tables the benchmark harness
produces; ``all`` regenerates the full evaluation in one go.
"""

import argparse
import sys
import time

from repro.eval import (
    fig2, fig6, fig7, fig8, fig9, fig10, fig11, spike,
    table1, table2, table3,
)

EXPERIMENTS = {
    "fig2": (fig2, "hbfp8 vs fp32 convergence"),
    "fig6": (fig6, "design-space clouds and Pareto frontiers"),
    "fig7": (fig7, "inference p99 latency vs throughput"),
    "fig8": (fig8, "MMU cycle breakdown"),
    "fig9": (fig9, "training throughput vs inference load"),
    "fig10": (fig10, "scheduling-policy comparison"),
    "fig11": (fig11, "adaptive batching"),
    "table1": (table1, "Pareto-optimal designs"),
    "table2": (table2, "workload sensitivity"),
    "table3": (table3, "area/power synthesis"),
    "spike": (spike, "spike response (extension)"),
}


def _run_one(name: str, loads) -> None:
    module, _ = EXPERIMENTS[name]
    kwargs = {}
    if loads and hasattr(module.run, "__code__") and (
        "loads" in module.run.__code__.co_varnames
    ):
        kwargs["loads"] = tuple(loads)
    started = time.time()
    result = module.run(**kwargs)
    print(module.render(result))
    print(f"\n[{name} completed in {time.time() - started:.1f}s]\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Equinox paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list"],
        help="which experiment to run ('list' shows descriptions)",
    )
    parser.add_argument(
        "--loads", type=float, nargs="+", default=None,
        help="override the offered-load grid for load-sweep experiments",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(f"{name:8s} {EXPERIMENTS[name][1]}")
        return 0
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        _run_one(name, args.loads)
    return 0


if __name__ == "__main__":
    sys.exit(main())
