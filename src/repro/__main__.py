"""Command-line entry point: experiments and static analysis.

    python -m repro list
    python -m repro table1
    python -m repro fig9 --loads 0.2 0.6 0.95 --report-dir artifacts
    python -m repro fig7 --jobs 4 --cache-dir .exec-cache
    python -m repro all
    python -m repro analyze --format json --fail-on error
    python -m repro chaos --seed 7 --jobs auto --report-dir artifacts
    python -m repro serve --fleet 16 --tenants 3 --report-dir artifacts
    python -m repro sweep --jobs 8 --report-dir artifacts
    python -m repro bench --out-dir artifacts
    python -m repro fig2 --kernel-backend reference
    python -m repro metrics smoke --out artifacts/smoke.json
    python -m repro metrics validate artifacts/smoke.json

Experiment subcommands print the same text tables the benchmark harness
produces; ``all`` regenerates the full evaluation in one go. With
``--report-dir``, each experiment additionally writes its structured
JSON :class:`repro.obs.RunReport` artifact (schema-validated) into that
directory; with ``--jobs N``/``--cache-dir DIR``, experiments that fan
out over independent work units run them through the
:mod:`repro.exec` engine (bit-identical results for any worker count).
The ``analyze`` subcommand runs the static program verifier and
codebase lint (see :mod:`repro.analysis`); ``chaos`` runs the seeded
fault-injection scenario matrix (see :mod:`repro.faults.chaos`) and
prints the degradation table with its determinism self-check; ``serve``
runs the multi-tenant fleet-serving matrix (see :mod:`repro.serve`) and
emits the ``repro.serve/fleet-report/v1`` artifact; ``sweep``
and ``bench`` are the execution engine's own entry points (design-space
sweep and the pinned perf-trajectory suite, see :mod:`repro.exec.cli`);
``metrics`` dumps, validates and diffs run artifacts (see
:mod:`repro.obs.cli`).
"""

import argparse
import json
import os
import sys
import time

from repro.eval import (
    fig2, fig6, fig7, fig8, fig9, fig10, fig11, spike,
    table1, table2, table3,
)

EXPERIMENTS = {
    "fig2": (fig2, "hbfp8 vs fp32 convergence"),
    "fig6": (fig6, "design-space clouds and Pareto frontiers"),
    "fig7": (fig7, "inference p99 latency vs throughput"),
    "fig8": (fig8, "MMU cycle breakdown"),
    "fig9": (fig9, "training throughput vs inference load"),
    "fig10": (fig10, "scheduling-policy comparison"),
    "fig11": (fig11, "adaptive batching"),
    "table1": (table1, "Pareto-optimal designs"),
    "table2": (table2, "workload sensitivity"),
    "table3": (table3, "area/power synthesis"),
    "spike": (spike, "spike response (extension)"),
}


def _write_artifact(report, directory: str) -> None:
    """Validate one RunReport and write it as ``<dir>/<name>.json``."""
    from repro.obs import validate_report

    text = report.to_json()
    problems = validate_report(json.loads(text))
    for problem in problems:
        print(f"invalid artifact {report.name}: {problem}", file=sys.stderr)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{report.name}.json")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print(f"[artifact] {path}")


def _run_one(name: str, loads, report_dir=None, executor=None, shards=1) -> None:
    module, _ = EXPERIMENTS[name]
    kwargs = {}
    if loads and hasattr(module.run, "__code__") and (
        "loads" in module.run.__code__.co_varnames
    ):
        kwargs["loads"] = tuple(loads)
    if executor is not None and hasattr(module.run, "__code__") and (
        "executor" in module.run.__code__.co_varnames
    ):
        kwargs["executor"] = executor
    if shards > 1 and hasattr(module.run, "__code__") and (
        "shards" in module.run.__code__.co_varnames
    ):
        kwargs["shards"] = shards
    started = time.time()
    if report_dir is not None:
        from repro.eval.runner import capture_run
        from repro.state.signals import ShutdownRequested

        with capture_run(name) as capture:
            _install_capture_checkpoint(executor, name, capture)
            try:
                result = module.run(**kwargs)
            except ShutdownRequested:
                # Final barrier on the way out: persist the capture and
                # flush what was measured so far as a *partial* artifact
                # — marked as such, never confused with a complete run.
                _save_capture_checkpoint(executor, name, capture)
                _write_artifact(
                    capture.build_report(config={"partial": True}),
                    report_dir,
                )
                raise
            finally:
                if executor is not None:
                    executor.set_checkpoint_cb(None)
        _write_artifact(capture.build_report(), report_dir)
    else:
        result = module.run(**kwargs)
    print(module.render(result))
    print(f"\n[{name} completed in {time.time() - started:.1f}s]\n")


def _install_capture_checkpoint(executor, name: str, capture) -> None:
    """Make the executor's periodic barrier snapshot this experiment's
    capture (lossless, mergeable state) under ``capture.<name>``."""
    if executor is None or executor.checkpoint_store is None:
        return
    executor.set_checkpoint_cb(
        lambda: _save_capture_checkpoint(executor, name, capture)
    )


def _save_capture_checkpoint(executor, name: str, capture) -> None:
    if executor is None or executor.checkpoint_store is None:
        return
    executor.checkpoint_store.save(
        f"capture.{name}", capture.state_dict(), step=capture.windows
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Equinox paper's tables and figures, "
        "or statically analyze programs and the codebase.",
    )
    from repro.exec import cli as exec_cli

    subparsers = parser.add_subparsers(dest="command", required=True)

    for name in sorted(EXPERIMENTS) + ["all"]:
        description = (
            "run every experiment" if name == "all" else EXPERIMENTS[name][1]
        )
        sub = subparsers.add_parser(name, help=description)
        sub.add_argument(
            "--loads", type=float, nargs="+", default=None,
            help="override the offered-load grid for load-sweep experiments",
        )
        sub.add_argument(
            "--report-dir", default=None,
            help="also write the structured RunReport artifact "
            "(<dir>/<experiment>.json)",
        )
        exec_cli.add_executor_arguments(sub)
    subparsers.add_parser("list", help="show experiment descriptions")

    analyze = subparsers.add_parser(
        "analyze",
        help="static program verifier + codebase lint",
        description="Run the static analysis passes (rule catalog in "
        "DESIGN.md): the program verifier over the builtin workload "
        "suite and the AST lint over the repro package.",
    )
    from repro.analysis import cli as analysis_cli

    analysis_cli.add_arguments(analyze)

    chaos = subparsers.add_parser(
        "chaos",
        help="seeded fault-injection scenario matrix",
        description="Run the chaos matrix: every fault scenario twice "
        "from its seed, printing degradation vs the fault-free baseline "
        "and a determinism self-check.",
    )
    chaos.add_argument(
        "--load", type=float, default=None,
        help="offered inference load for every scenario",
    )
    chaos.add_argument(
        "--requests", type=int, default=None,
        help="requests per single-accelerator scenario",
    )
    chaos.add_argument(
        "--seed", type=int, default=None,
        help="base seed for arrivals and fault plans",
    )
    chaos.add_argument(
        "--report-dir", default=None,
        help="write one RunReport artifact per scenario into this "
        "directory (<dir>/chaos.<scenario>.json)",
    )
    exec_cli.add_executor_arguments(chaos)

    serve = subparsers.add_parser(
        "serve",
        help="multi-tenant SLO-tiered fleet serving matrix",
        description="Run the tenant-mix serving matrix over a simulated "
        "chip fleet: sustained RPS and p50/p99/p999 per SLO class per "
        "fleet size, with chip-kill failover. Every scenario runs twice "
        "from its seed; the exit status is the determinism self-check.",
    )
    serve.add_argument(
        "--fleet", type=int, nargs="+", default=None, metavar="N",
        help="fleet sizes to sweep (strictly increasing)",
    )
    serve.add_argument(
        "--tenants", type=int, default=None,
        help="number of tenants (the default 3-class mix, cycled)",
    )
    serve.add_argument(
        "--requests-per-chip", type=int, default=None,
        help="measured requests per chip per scenario",
    )
    serve.add_argument(
        "--seed", type=int, default=None,
        help="base seed for arrivals, placement and kill times",
    )
    serve.add_argument(
        "--report-dir", default=None,
        help="write the fleet-report artifact as <dir>/serve.fleet.json",
    )
    serve.add_argument(
        "--validate-only", default=None, metavar="PATH",
        help="validate an existing fleet-report artifact and exit",
    )
    exec_cli.add_executor_arguments(serve)

    sweep = subparsers.add_parser(
        "sweep",
        help="design-space sweep through the execution engine",
        description="Run the Figure 6 design-space sweep, optionally "
        "fanned out over worker processes and replayed from the result "
        "cache; the sweep.json artifact is byte-identical for any "
        "--jobs value.",
    )
    exec_cli.add_sweep_arguments(sweep)

    bench = subparsers.add_parser(
        "bench",
        help="pinned perf-trajectory benchmark suite",
        description="Time the pinned kernel suite and write a "
        "schema-validated BENCH_<rev>.json artifact for "
        "revision-over-revision performance tracking.",
    )
    exec_cli.add_bench_arguments(bench)

    metrics = subparsers.add_parser(
        "metrics",
        help="dump, validate and diff structured run artifacts",
        description="Emit the smoke-run or an experiment's RunReport "
        "artifact, validate artifacts against the schema (failing on "
        "any NaN latency/throughput), or diff two artifacts.",
    )
    from repro.obs import cli as metrics_cli

    metrics_cli.add_arguments(metrics)
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)

    # --kernel-backend (on every subcommand that takes executor flags)
    # pins the repro.kernels backend process-wide before any experiment
    # code runs; backends are bit-identical, so artifacts cannot differ.
    from repro.exec import cli as exec_cli

    exec_cli.apply_kernel_backend(args)

    # SIGINT/SIGTERM unwind through ShutdownRequested at the next job
    # boundary (after its journal append): final checkpoint + partial
    # artifact flush happen on the way out, then the process exits with
    # the conventional 128+signum code and a named reason — never a
    # traceback.
    from repro.state.signals import GracefulShutdown, ShutdownRequested

    with GracefulShutdown() as shutdown:
        try:
            return _dispatch(args, shutdown)
        except ShutdownRequested as request:
            hint = (
                " — restart with --resume to continue"
                if getattr(args, "checkpoint_dir", None) is not None
                else ""
            )
            print(
                f"\n[shutdown] {request.signame} received: stopped at a "
                f"journal-consistent job boundary{hint}",
                file=sys.stderr,
            )
            return request.exit_code


def _dispatch(args, shutdown) -> int:
    from repro.exec import cli as exec_cli

    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            print(f"{name:8s} {EXPERIMENTS[name][1]}")
        return 0
    if args.command == "analyze":
        from repro.analysis import cli as analysis_cli

        return analysis_cli.run(args)
    if args.command == "sweep":
        return exec_cli.run_sweep(args, shutdown=shutdown)
    if args.command == "bench":
        return exec_cli.run_bench(args)
    if args.command == "chaos":
        # Imported lazily: chaos pulls in the cluster layer, which the
        # experiment subcommands never need.
        from repro.faults import chaos as chaos_mod

        kwargs = {}
        if args.load is not None:
            kwargs["load"] = args.load
        if args.requests is not None:
            kwargs["requests"] = args.requests
        if args.seed is not None:
            kwargs["seed"] = args.seed
        executor = exec_cli.runner_from_args(args, shutdown=shutdown)
        if executor is not None:
            kwargs["executor"] = executor
        started = time.time()
        result = chaos_mod.run(**kwargs)
        print(chaos_mod.render(result))
        print(f"\n[chaos completed in {time.time() - started:.1f}s]\n")
        if args.report_dir is not None:
            for artifact in result["artifacts"].values():
                _write_artifact(artifact, args.report_dir)
        rows = result["rows"]
        return 0 if all(r.reproducible for r in rows) else 1
    if args.command == "serve":
        # Imported lazily, like chaos: the serving fabric pulls in the
        # dispatcher/fleet layers the experiment subcommands never need.
        from repro import serve as serve_mod

        if args.validate_only is not None:
            with open(args.validate_only) as handle:
                data = json.load(handle)
            problems = serve_mod.validate_fleet_report(data)
            for problem in problems:
                print(f"invalid fleet report: {problem}", file=sys.stderr)
            if not problems:
                print(f"[serve] {args.validate_only}: valid")
            return 0 if not problems else 1
        kwargs = {}
        if args.fleet is not None:
            kwargs["fleet_sizes"] = args.fleet
        if args.tenants is not None:
            kwargs["tenants"] = serve_mod.default_tenants(args.tenants)
        if args.requests_per_chip is not None:
            kwargs["requests_per_chip"] = args.requests_per_chip
        if args.seed is not None:
            kwargs["seed"] = args.seed
        executor = exec_cli.runner_from_args(args, shutdown=shutdown)
        if executor is not None:
            kwargs["executor"] = executor
        if getattr(args, "shards", 1) > 1:
            kwargs["shards"] = args.shards
        started = time.time()
        report = serve_mod.run(**kwargs)
        print(serve_mod.render(report))
        print(f"\n[serve completed in {time.time() - started:.1f}s]\n")
        if args.report_dir is not None:
            os.makedirs(args.report_dir, exist_ok=True)
            path = os.path.join(args.report_dir, "serve.fleet.json")
            with open(path, "w") as handle:
                handle.write(report.to_json() + "\n")
            print(f"[artifact] {path}")
        return 0 if report.reproducible else 1
    if args.command == "metrics":
        from repro.obs import cli as metrics_cli

        return metrics_cli.run(args)
    names = (
        sorted(EXPERIMENTS) if args.command == "all" else [args.command]
    )
    executor = exec_cli.runner_from_args(args, shutdown=shutdown)
    for name in names:
        _run_one(
            name, args.loads, report_dir=args.report_dir, executor=executor,
            shards=getattr(args, "shards", 1),
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
