"""Static analysis for compiled Equinox programs and the codebase.

Two coordinated passes over one diagnostics core:

* the **program verifier** (:mod:`repro.analysis.program_verifier`)
  statically checks compiled job streams and instruction images against
  the hardware's static budgets and hazard rules — and gates the
  service-install path in :mod:`repro.core.dispatcher`;
* the **codebase linter** (:mod:`repro.analysis.codebase_linter`) runs
  AST rules (dtype leaks, determinism, exception hygiene) over
  ``src/repro``.

``python -m repro analyze`` drives both; see ``DESIGN.md`` for the rule
catalog.
"""

from repro.analysis.codebase_linter import (
    DEFAULT_RULES,
    LintRule,
    lint_file,
    lint_source,
    lint_tree,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    Location,
    Severity,
    count_by_severity,
    errors,
    exit_code,
    max_severity,
    render_json,
    render_text,
)
from repro.analysis.program_verifier import (
    DEFAULT_WASTE_THRESHOLD,
    ProgramVerificationError,
    raise_on_errors,
    verify,
    verify_image,
    verify_program,
)
from repro.analysis.rules import Rule, catalog, is_known_rule, rule

__all__ = [
    "Diagnostic",
    "Location",
    "Severity",
    "count_by_severity",
    "errors",
    "exit_code",
    "max_severity",
    "render_json",
    "render_text",
    "Rule",
    "catalog",
    "is_known_rule",
    "rule",
    "DEFAULT_WASTE_THRESHOLD",
    "ProgramVerificationError",
    "raise_on_errors",
    "verify",
    "verify_image",
    "verify_program",
    "DEFAULT_RULES",
    "LintRule",
    "lint_file",
    "lint_source",
    "lint_tree",
]
