"""Audit annotations for the whole-program analyzer.

The interprocedural effect analysis (:mod:`repro.analysis.effects`)
propagates nondeterminism and I/O effects through the call graph; some
effects are *deliberate* — the bench harness times kernels against the
wall clock, the scheduler probe crashes workers on purpose, the result
cache writes files atomically. Blanket suppression comments would hide
future regressions in the same function, so the escape hatch is
declarative and effect-scoped instead:

* ``@pure`` — the function has been audited end to end and exports **no
  effects**, whatever its body or callees look like. Use sparingly;
  this silences every effect, present and future.
* ``@audited("wall_clock", reason="...")`` — the named effects are
  audited and do not propagate to callers; any *other* effect the
  function acquires later still does. ``reason`` is mandatory
  documentation: an audit without a rationale is indistinguishable from
  a silenced bug.

Both decorators are runtime no-ops (they only tag the function with
``__eqx_audit__`` for introspection); the analyzer recognizes them
**statically**, by resolving the decorator's imported name to this
module — so annotated code pays nothing at call time and the analyzer
never has to import the code under analysis.

This module must stay import-free of the rest of ``repro``: audited
modules live in ``repro.exec``, ``repro.obs`` and ``repro.kernels``,
and the annotation import must never create a cycle.

Effect names are validated against :data:`KNOWN_EFFECTS` (mirrored by
``repro.analysis.effects.EFFECTS``) so a typo like ``"wallclock"``
fails at import time instead of silently auditing nothing.
"""

from typing import Callable, FrozenSet, Optional, Tuple, TypeVar

__all__ = ["KNOWN_EFFECTS", "PURE_MARKER", "audited", "audit_of", "pure"]

#: The effect vocabulary of the analyzer's lattice. Kept as plain
#: strings (not an enum) so this module needs no imports and the
#: analyzer can match decorator arguments syntactically.
KNOWN_EFFECTS: FrozenSet[str] = frozenset({
    "wall_clock",     # time.time/perf_counter/sleep, datetime.now, ...
    "unseeded_rng",   # global RNG state, default_rng(), uuid4, urandom
    "env_read",       # os.environ / os.getenv
    "id_value",       # id() — CPython address, differs across runs
    "thread",         # threading / multiprocessing / futures
    "set_order",      # iterating a set (str-hash randomized order)
    "fs_order",       # unsorted listdir/glob/rglob directory order
    "io",             # open(), Path read/write, tempfile
    "process",        # os._exit / kill / fork, subprocess
})

#: Sentinel stored for ``@pure`` (audits *every* effect).
PURE_MARKER = "*"

F = TypeVar("F", bound=Callable)


def pure(fn: F) -> F:
    """Mark ``fn`` audited effect-free (exports nothing to callers)."""
    fn.__eqx_audit__ = (PURE_MARKER,)  # type: ignore[attr-defined]
    return fn


def audited(*effects: str, reason: str) -> Callable[[F], F]:
    """Mark the named ``effects`` of the decorated function as audited.

    The function still *has* the effects — they simply stop propagating
    to callers in the whole-program analysis, because a human has
    vouched for them (``reason``). Unknown effect names and empty
    audits raise immediately.
    """
    if not effects:
        raise ValueError("audited() needs at least one effect name")
    unknown = sorted(set(effects) - KNOWN_EFFECTS)
    if unknown:
        raise ValueError(
            f"unknown effect(s) {unknown}; choose from "
            f"{sorted(KNOWN_EFFECTS)}"
        )
    if not reason or not reason.strip():
        raise ValueError("audited() requires a non-empty reason")

    def decorate(fn: F) -> F:
        fn.__eqx_audit__ = tuple(effects)  # type: ignore[attr-defined]
        return fn

    return decorate


def audit_of(fn: Callable) -> Optional[Tuple[str, ...]]:
    """The runtime audit tag, if any (introspection/tests)."""
    return getattr(fn, "__eqx_audit__", None)
