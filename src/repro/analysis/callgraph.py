"""Whole-program call-graph construction over a Python package tree.

This is the foundation the interprocedural passes stand on. Where the
EQX3xx lint sees one file at a time, this module parses *every* module
under a package root into a :class:`ProgramIndex`:

* **module-qualified symbols** — every function and method gets a
  stable qualified name (``repro.exec.tasks.dse_points``,
  ``repro.obs.sketch.QuantileSketch.merge_state``);
* **resolved call edges** — best-effort static resolution of calls
  through per-module import maps, ``self``/``cls`` receivers,
  class-valued locals (``v = ClassName(...)`` then ``v.m()``) and
  instance attributes assigned in ``__init__``. Calls that cannot be
  resolved statically (duck-typed receivers, callables passed as
  values) are recorded as unresolved rather than guessed at — the
  analysis is deliberately under-approximate on edges so its *effect*
  verdicts stay high-precision;
* **registry indirections** — the two dynamic dispatch mechanisms the
  repo relies on are decoded statically: job registries
  (``_REGISTRY = {"fn_id": "module:function"}`` dict literals and
  constant ``register_job(...)`` calls) and kernel pairs
  (``register_kernel(name, ref, fast)`` calls), so the engine's
  ``fn_id → callable`` hop and the dual-backend dispatch do not hide
  entry points from the analysis;
* **direct effect sources and rng traces** — recorded per function by
  :mod:`repro.analysis.effects` during extraction, ready for the
  fixed-point propagation.

The index serializes to a canonical-JSON artifact (schema
:data:`CALLGRAPH_SCHEMA`) keyed by a digest of the analyzed tree — for
the installed ``repro`` package that digest *is*
:func:`repro.exec.canonical.code_fingerprint`, so the cache invalidates
exactly when the exec engine's result cache does. Parsing ~110 modules
costs a few hundred milliseconds; CI runs hit the cached artifact.
"""

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis import effects as effects_mod

__all__ = [
    "CALLGRAPH_SCHEMA",
    "FunctionRecord",
    "ModuleRecord",
    "ProgramIndex",
    "build_index",
    "load_or_build_index",
    "tree_digest",
]

#: Schema id embedded in the cached artifact. v2 added per-class facts
#: (def line, resolved attribute/base classes, mutation sites, frozen
#: flag) and checkpoint-root tables for the EQX406 snapshot rule.
CALLGRAPH_SCHEMA = "repro.analysis/callgraph/v3"

#: Qualified decorator names the analyzer recognizes as audit marks.
PURE_DECORATORS = ("repro.analysis.annotations.pure",)
AUDITED_DECORATORS = ("repro.analysis.annotations.audited",)


@dataclass
class FunctionRecord:
    """One analyzed function or method."""

    qualname: str            #: module-qualified name
    module: str              #: owning module
    line: int                #: def line (1-based)
    params: List[str] = field(default_factory=list)
    calls: List[str] = field(default_factory=list)       #: resolved callees
    unresolved: List[str] = field(default_factory=list)  #: unrendered targets
    #: direct effect -> (line, source expression) of first occurrence
    effects: Dict[str, Tuple[int, str]] = field(default_factory=dict)
    #: ordered rng-parameter interactions (EQX402 contract)
    rng_trace: List[str] = field(default_factory=list)
    #: audited effect names; ("*",) for @pure; None = unannotated
    audit: Optional[Tuple[str, ...]] = None

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "module": self.module,
            "line": self.line,
            "params": list(self.params),
            "calls": list(self.calls),
            "unresolved": list(self.unresolved),
            "effects": {
                name: [line, expr]
                for name, (line, expr) in sorted(self.effects.items())
            },
            "rng_trace": list(self.rng_trace),
            "audit": list(self.audit) if self.audit is not None else None,
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "FunctionRecord":
        return cls(
            qualname=data["qualname"],
            module=data["module"],
            line=int(data["line"]),
            params=list(data["params"]),
            calls=list(data["calls"]),
            unresolved=list(data["unresolved"]),
            effects={
                name: (int(pair[0]), str(pair[1]))
                for name, pair in data["effects"].items()
            },
            rng_trace=list(data["rng_trace"]),
            audit=tuple(data["audit"]) if data["audit"] is not None else None,
        )


@dataclass
class ModuleRecord:
    """One parsed module's symbol-level facts."""

    name: str                #: dotted module name
    path: str                #: display path (repo-relative when possible)
    functions: List[str] = field(default_factory=list)
    #: class name -> sorted method names
    classes: Dict[str, List[str]] = field(default_factory=dict)
    #: class name -> structural facts for the snapshot-coverage rule:
    #: {"line": def line, "frozen": frozen-dataclass flag,
    #:  "bases": resolved base qualnames (rendered name as fallback),
    #:  "attrs": {attr -> class qualname assigned in __init__},
    #:  "mutations": [[method, attr, line], ...] self-attr writes
    #:  outside __init__ (the evidence the class is stateful)}
    class_info: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: suppressed lines: line -> rule ids (empty list = all rules)
    suppressions: Dict[int, List[str]] = field(default_factory=dict)
    #: job registries found here: fn_id -> "module:function"
    job_registry: Dict[str, str] = field(default_factory=dict)
    #: kernel pairs registered here:
    #: name -> {"reference": qualname, "fast": qualname, "line": int}
    kernel_pairs: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: checkpoint roots declared here: root_id -> "module:Class"
    checkpoint_roots: Dict[str, str] = field(default_factory=dict)
    #: window-merge metric roots declared here: root_id -> "module:Class"
    window_merge_roots: Dict[str, str] = field(default_factory=dict)

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "path": self.path,
            "functions": list(self.functions),
            "classes": {k: list(v) for k, v in sorted(self.classes.items())},
            "class_info": {
                k: dict(v) for k, v in sorted(self.class_info.items())
            },
            "suppressions": {
                str(line): list(ids)
                for line, ids in sorted(self.suppressions.items())
            },
            "job_registry": dict(sorted(self.job_registry.items())),
            "kernel_pairs": {
                k: dict(v) for k, v in sorted(self.kernel_pairs.items())
            },
            "checkpoint_roots": dict(sorted(self.checkpoint_roots.items())),
            "window_merge_roots": dict(
                sorted(self.window_merge_roots.items())
            ),
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "ModuleRecord":
        return cls(
            name=data["name"],
            path=data["path"],
            functions=list(data["functions"]),
            classes={k: list(v) for k, v in data["classes"].items()},
            class_info={
                k: dict(v) for k, v in data.get("class_info", {}).items()
            },
            suppressions={
                int(line): list(ids)
                for line, ids in data["suppressions"].items()
            },
            job_registry=dict(data["job_registry"]),
            kernel_pairs={k: dict(v) for k, v in data["kernel_pairs"].items()},
            checkpoint_roots=dict(data.get("checkpoint_roots", {})),
            window_merge_roots=dict(data.get("window_merge_roots", {})),
        )


@dataclass
class ProgramIndex:
    """The whole program, indexed: modules, functions, entry points."""

    root: str
    digest: str
    modules: Dict[str, ModuleRecord] = field(default_factory=dict)
    functions: Dict[str, FunctionRecord] = field(default_factory=dict)

    # -- aggregate views ------------------------------------------------

    def job_registry(self) -> Dict[str, str]:
        """All job registries merged: fn_id -> "module:function"."""
        merged: Dict[str, str] = {}
        for module in self.modules.values():
            merged.update(module.job_registry)
        return dict(sorted(merged.items()))

    def kernel_pairs(self) -> Dict[str, Dict[str, Any]]:
        """All kernel pairs merged: name -> {reference, fast, line}."""
        merged: Dict[str, Dict[str, Any]] = {}
        for module in self.modules.values():
            merged.update(module.kernel_pairs)
        return dict(sorted(merged.items()))

    def merge_state_methods(self) -> List[FunctionRecord]:
        """Every ``merge_state`` implementation in the tree."""
        return [
            record for qualname, record in sorted(self.functions.items())
            if qualname.rsplit(".", 1)[-1] == "merge_state"
        ]

    def checkpoint_roots(self) -> Dict[str, str]:
        """All checkpoint-root tables merged: root_id -> "module:Class"."""
        merged: Dict[str, str] = {}
        for module in self.modules.values():
            merged.update(module.checkpoint_roots)
        return dict(sorted(merged.items()))

    def window_merge_roots(self) -> Dict[str, str]:
        """All window-merge root tables merged: root_id -> "module:Class"."""
        merged: Dict[str, str] = {}
        for module in self.modules.values():
            merged.update(module.window_merge_roots)
        return dict(sorted(merged.items()))

    def class_info(self, qualname: str) -> Optional[Dict[str, Any]]:
        """Structural facts for a class qualname, if it is in the index."""
        module_name, _, cls_name = qualname.rpartition(".")
        module = self.modules.get(module_name)
        if module is None:
            return None
        return module.class_info.get(cls_name)

    def class_has_method(self, qualname: str, method: str) -> bool:
        """Whether ``qualname`` defines ``method``, walking base classes
        known to the index (MRO approximated breadth-first)."""
        seen: Set[str] = set()
        queue = [qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            module_name, _, cls_name = current.rpartition(".")
            module = self.modules.get(module_name)
            if module is None:
                continue
            if method in module.classes.get(cls_name, []):
                return True
            info = module.class_info.get(cls_name)
            if info is not None:
                queue.extend(info.get("bases", []))
        return False

    def suppressed(self, module: str, line: int, rule_id: str) -> bool:
        record = self.modules.get(module)
        if record is None or line not in record.suppressions:
            return False
        ids = record.suppressions[line]
        return not ids or rule_id in ids

    def resolve_target(self, target: str) -> Optional[FunctionRecord]:
        """Resolve a registry target ``"module:function"`` or a
        qualified name to its function record."""
        qualname = target.replace(":", ".")
        return self.functions.get(qualname)

    def callees(self, qualname: str) -> List[str]:
        record = self.functions.get(qualname)
        return list(record.calls) if record else []

    def edge_count(self) -> int:
        return sum(len(f.calls) for f in self.functions.values())

    # -- (de)serialization ---------------------------------------------

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "schema": CALLGRAPH_SCHEMA,
            "root": self.root,
            "digest": self.digest,
            "modules": {
                name: module.to_jsonable()
                for name, module in sorted(self.modules.items())
            },
            "functions": {
                name: record.to_jsonable()
                for name, record in sorted(self.functions.items())
            },
        }

    @classmethod
    def from_jsonable(cls, data: Dict[str, Any]) -> "ProgramIndex":
        if data.get("schema") != CALLGRAPH_SCHEMA:
            raise ValueError(
                f"unexpected call-graph schema {data.get('schema')!r}; "
                f"expected {CALLGRAPH_SCHEMA}"
            )
        return cls(
            root=data["root"],
            digest=data["digest"],
            modules={
                name: ModuleRecord.from_jsonable(module)
                for name, module in data["modules"].items()
            },
            functions={
                name: FunctionRecord.from_jsonable(record)
                for name, record in data["functions"].items()
            },
        )


# ----------------------------------------------------------------------
# Tree discovery and digesting
# ----------------------------------------------------------------------


def _module_files(root: Path) -> List[Tuple[str, Path]]:
    """``(dotted module name, path)`` for every module under ``root``.

    ``root`` must be a package directory (its name becomes the top
    package). Files walk in sorted posix-relpath order so the index —
    and the artifact digest — is byte-stable across filesystems.
    """
    package = root.name
    out: List[Tuple[str, Path]] = []
    for path in sorted(root.rglob("*.py"), key=lambda p: p.as_posix()):
        relative = path.relative_to(root)
        parts = list(relative.parts)
        parts[-1] = parts[-1][: -len(".py")]
        if parts[-1] == "__init__":
            parts = parts[:-1]
        out.append((".".join([package] + parts), path))
    return out


def tree_digest(root: Path) -> str:
    """sha256 over every module's relative path and bytes, sorted.

    For the installed ``repro`` package this matches the construction
    of :func:`repro.exec.canonical.code_fingerprint` (same file walk,
    same separators) — the exec engine's cache key and the call-graph
    artifact key invalidate together.
    """
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py"), key=lambda p: p.as_posix()):
        digest.update(path.relative_to(root).as_posix().encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


# ----------------------------------------------------------------------
# Phase 1: symbol tables
# ----------------------------------------------------------------------


@dataclass
class _ModuleSymbols:
    """Pre-resolution view of one module."""

    name: str
    path: Path
    display: str
    tree: ast.Module
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, ast.AST] = field(default_factory=dict)
    #: class name -> (method name -> def node)
    classes: Dict[str, Dict[str, ast.AST]] = field(default_factory=dict)
    #: class name -> its ClassDef node (line, decorators)
    class_defs: Dict[str, ast.ClassDef] = field(default_factory=dict)
    #: class name -> base-class display names (unresolved)
    bases: Dict[str, List[str]] = field(default_factory=dict)
    #: class name -> {attr assigned in __init__ -> class expr rendering}
    attr_types: Dict[str, Dict[str, str]] = field(default_factory=dict)
    source_lines: Sequence[str] = field(default_factory=list)


def _collect_imports(tree: ast.Module) -> Dict[str, str]:
    """local name -> qualified dotted target."""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                # `import a.b` binds `a`, but `import a.b as c` binds
                # the full dotted path to `c`.
                imports[local] = alias.name if alias.asname else (
                    alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports: rare here, skip
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def _collect_symbols(
    name: str, path: Path, display: str, source: str
) -> Optional[_ModuleSymbols]:
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError:
        return None
    symbols = _ModuleSymbols(
        name=name, path=path, display=display, tree=tree,
        imports=_collect_imports(tree),
        source_lines=source.splitlines(),
    )
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            symbols.functions[node.name] = node
        elif isinstance(node, ast.ClassDef):
            methods: Dict[str, ast.AST] = {}
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods[item.name] = item
            symbols.classes[node.name] = methods
            symbols.class_defs[node.name] = node
            symbols.bases[node.name] = [
                rendered for rendered in (
                    _render_dotted(base) for base in node.bases
                ) if rendered is not None
            ]
            symbols.attr_types[node.name] = _init_attr_types(methods)
    return symbols


def _render_dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _class_mutations(
    methods: Dict[str, ast.AST],
) -> List[List[Any]]:
    """``self.attr = ...`` / ``self.attr += ...`` writes outside
    ``__init__``: the static evidence a class carries mutable state.

    Returns ``[[method, attr, line], ...]`` — first write per
    ``(method, attr)`` pair, sorted — the witnesses EQX406 quotes.
    Writes inside ``from_state`` are excluded: restoring *is* mutation,
    and counting it would mark every correctly-snapshotable class
    stateful through its own restore path.
    """
    out: Dict[Tuple[str, str], int] = {}
    for method_name, node in methods.items():
        if method_name in ("__init__", "from_state"):
            continue
        for stmt in ast.walk(node):
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                targets = [stmt.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    key = (method_name, target.attr)
                    line = getattr(stmt, "lineno", 0)
                    if key not in out or line < out[key]:
                        out[key] = line
    return [
        [method, attr, line]
        for (method, attr), line in sorted(out.items())
    ]


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    """``@dataclass(frozen=True)`` (any import spelling of dataclass)."""
    for decorator in node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        rendered = _render_dotted(decorator.func)
        if rendered is None or rendered.rsplit(".", 1)[-1] != "dataclass":
            continue
        for keyword in decorator.keywords:
            if (
                keyword.arg == "frozen"
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            ):
                return True
    return False


def _init_attr_types(methods: Dict[str, ast.AST]) -> Dict[str, str]:
    """``self.attr = ClassExpr(...)`` assignments in ``__init__``."""
    init = methods.get("__init__")
    if init is None:
        return {}
    out: Dict[str, str] = {}
    for node in ast.walk(init):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            continue
        if isinstance(node.value, ast.Call):
            rendered = _render_dotted(node.value.func)
            if rendered is not None:
                out[target.attr] = rendered
    return out


# ----------------------------------------------------------------------
# Phase 2: resolution + extraction
# ----------------------------------------------------------------------


class _Resolver:
    """Resolves rendered dotted names to index qualnames."""

    def __init__(self, symbols_by_module: Dict[str, _ModuleSymbols]):
        self.modules = symbols_by_module
        #: every defined function/method qualname
        self.function_names: Set[str] = set()
        #: class qualname -> _ModuleSymbols owning it
        self.class_owners: Dict[str, str] = {}
        for symbols in symbols_by_module.values():
            for fn_name in symbols.functions:
                self.function_names.add(f"{symbols.name}.{fn_name}")
            for cls_name, methods in symbols.classes.items():
                self.class_owners[f"{symbols.name}.{cls_name}"] = symbols.name
                for method in methods:
                    self.function_names.add(
                        f"{symbols.name}.{cls_name}.{method}"
                    )

    def qualify(self, symbols: _ModuleSymbols, dotted: str) -> Optional[str]:
        """Map a rendered name through the module's import table."""
        head, _, rest = dotted.partition(".")
        if head in symbols.imports:
            base = symbols.imports[head]
            return f"{base}.{rest}" if rest else base
        if head in symbols.functions or head in symbols.classes:
            qualified = f"{symbols.name}.{head}"
            return f"{qualified}.{rest}" if rest else qualified
        return None

    def class_method(self, class_qual: str, method: str) -> Optional[str]:
        """Resolve ``method`` on ``class_qual``, walking base classes."""
        seen: Set[str] = set()
        queue = [class_qual]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            owner = self.class_owners.get(current)
            if owner is None:
                continue
            symbols = self.modules[owner]
            cls_name = current.rsplit(".", 1)[-1]
            if method in symbols.classes.get(cls_name, {}):
                return f"{current}.{method}"
            for base in symbols.bases.get(cls_name, []):
                base_qual = self.qualify(symbols, base)
                if base_qual is not None:
                    queue.append(base_qual)
        return None

    def callable_target(
        self, symbols: _ModuleSymbols, dotted: str
    ) -> Optional[str]:
        """A rendered call target -> function qualname, if resolvable.

        Classes resolve to their ``__init__`` (construction runs it);
        modules and unknown names resolve to None.
        """
        qualified = self.qualify(symbols, dotted)
        if qualified is None:
            return None
        if qualified in self.function_names:
            return qualified
        if qualified in self.class_owners:
            init = self.class_method(qualified, "__init__")
            return init
        # `mod.attr` where mod is a module in the index.
        if qualified.rsplit(".", 1)[0] in self.class_owners:
            # ClassName.method (classmethod/staticmethod call form)
            cls, _, method = qualified.rpartition(".")
            return self.class_method(cls, method)
        return None


def _function_params(node: ast.AST) -> List[str]:
    args = node.args  # type: ignore[attr-defined]
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return names


def _audit_of(
    node: ast.AST, symbols: _ModuleSymbols, resolver: _Resolver
) -> Optional[Tuple[str, ...]]:
    """Decode ``@pure`` / ``@audited(...)`` decorators statically."""
    for decorator in node.decorator_list:  # type: ignore[attr-defined]
        call_args: List[ast.expr] = []
        target = decorator
        if isinstance(decorator, ast.Call):
            target = decorator.func
            call_args = list(decorator.args)
        rendered = _render_dotted(target)
        if rendered is None:
            continue
        qualified = resolver.qualify(symbols, rendered) or rendered
        if qualified in PURE_DECORATORS:
            return ("*",)
        if qualified in AUDITED_DECORATORS:
            effects = tuple(
                arg.value for arg in call_args
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
            )
            return effects or ("*",)
    return None


class _BodyExtractor(ast.NodeVisitor):
    """Walks one function body: calls, local types, rng trace.

    Effect-source detection is delegated to
    :func:`repro.analysis.effects.detect_effects` over the same body so
    the vocabulary lives in one place.
    """

    def __init__(
        self,
        symbols: _ModuleSymbols,
        resolver: _Resolver,
        class_name: Optional[str],
    ):
        self.symbols = symbols
        self.resolver = resolver
        self.class_name = class_name
        self.calls: List[str] = []
        self.unresolved: List[str] = []
        self.rng_trace: List[Tuple[int, int, str]] = []
        #: local var -> rendered class expr (flow-insensitive, first win)
        self.local_types: Dict[str, str] = {}

    # -- local type inference ------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        if (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
        ):
            rendered = _render_dotted(node.value.func)
            if rendered is not None:
                qualified = self.resolver.qualify(self.symbols, rendered)
                if qualified in self.resolver.class_owners:
                    self.local_types.setdefault(
                        node.targets[0].id, rendered
                    )
        self.generic_visit(node)

    # -- call resolution -----------------------------------------------

    #: Builtins whose calls carry no effect edges worth recording; kept
    #: out of the unresolved list so it stays a useful debugging view.
    _BUILTINS = frozenset({
        "abs", "all", "any", "bool", "bytes", "dict", "divmod", "enumerate",
        "float", "format", "frozenset", "getattr", "hasattr", "hash", "int",
        "isinstance", "issubclass", "iter", "len", "list", "map", "max",
        "min", "next", "object", "pow", "print", "range", "repr", "reversed",
        "round", "set", "setattr", "sorted", "str", "sum", "super", "tuple",
        "type", "vars", "zip",
    })

    def _resolve_receiver_class(self, base: str) -> Optional[str]:
        """Class qualname for a call receiver name, if inferable."""
        if base in ("self", "cls") and self.class_name is not None:
            return f"{self.symbols.name}.{self.class_name}"
        if base in self.local_types:
            return self.resolver.qualify(
                self.symbols, self.local_types[base]
            )
        return None

    def visit_Call(self, node: ast.Call) -> None:
        rendered = _render_dotted(node.func)
        resolved: Optional[str] = None
        if rendered is not None:
            head, _, rest = rendered.partition(".")
            receiver = self._resolve_receiver_class(head)
            if receiver is not None and rest:
                # self.m(), cls.m(), typed_local.m(); one attribute hop
                # through instance attrs typed in __init__.
                parts = rest.split(".")
                current: Optional[str] = receiver
                for attr in parts[:-1]:
                    if current is None:
                        break
                    owner = self.resolver.class_owners.get(current)
                    if owner is None:
                        current = None
                        break
                    owner_symbols = self.resolver.modules[owner]
                    cls = current.rsplit(".", 1)[-1]
                    attr_expr = owner_symbols.attr_types.get(cls, {}).get(attr)
                    current = (
                        self.resolver.qualify(owner_symbols, attr_expr)
                        if attr_expr is not None else None
                    )
                if current is not None:
                    resolved = self.resolver.class_method(current, parts[-1])
            if resolved is None and receiver is None:
                resolved = self.resolver.callable_target(
                    self.symbols, rendered
                )
            if resolved is not None:
                self.calls.append(resolved)
            elif rendered not in self._BUILTINS:
                self.unresolved.append(rendered)
            # rng trace: calls on the rng parameter/locals named rng
            if (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "rng"
            ):
                args = ", ".join(
                    ast.unparse(arg) for arg in node.args
                )
                keywords = ", ".join(
                    f"{kw.arg}={ast.unparse(kw.value)}"
                    for kw in node.keywords
                )
                signature = ", ".join(p for p in (args, keywords) if p)
                self.rng_trace.append((
                    node.lineno, node.col_offset,
                    f"rng.{node.func.attr}({signature})",
                ))
        # rng forwarded whole to another callable is part of the stream
        # contract too: a backend that delegates draws must delegate the
        # same way.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Name) and arg.id == "rng":
                shown = rendered or "<dynamic>"
                self.rng_trace.append((
                    node.lineno, node.col_offset, f"{shown}(...rng...)",
                ))
        self.generic_visit(node)


def _extract_function(
    qualname: str,
    node: ast.AST,
    symbols: _ModuleSymbols,
    resolver: _Resolver,
    class_name: Optional[str],
) -> FunctionRecord:
    extractor = _BodyExtractor(symbols, resolver, class_name)
    for statement in node.body:  # type: ignore[attr-defined]
        extractor.visit(statement)
    import_table = {
        local: target for local, target in symbols.imports.items()
    }
    detected = effects_mod.detect_effects(node, import_table)
    # De-duplicate call edges preserving order; self-edges are fine
    # (recursion) and harmless to the fixed point.
    seen: Set[str] = set()
    calls = []
    for callee in extractor.calls:
        if callee not in seen:
            seen.add(callee)
            calls.append(callee)
    unresolved = sorted(set(extractor.unresolved))
    return FunctionRecord(
        qualname=qualname,
        module=symbols.name,
        line=node.lineno,  # type: ignore[attr-defined]
        params=_function_params(node),
        calls=calls,
        unresolved=unresolved,
        effects=detected,
        rng_trace=[
            text for _, _, text in sorted(extractor.rng_trace)
        ],
        audit=_audit_of(node, symbols, resolver),
    )


# ----------------------------------------------------------------------
# Registry decoding (the fn_id -> callable and kernel-pair indirections)
# ----------------------------------------------------------------------


def _decode_job_registries(symbols: _ModuleSymbols) -> Dict[str, str]:
    """Dict literals named ``*REGISTRY*`` plus constant
    ``register_job(fn_id, target)`` calls."""
    registry: Dict[str, str] = {}
    for node in ast.walk(symbols.tree):
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and "REGISTRY" in target.id:
                value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if (
                isinstance(node.target, ast.Name)
                and "REGISTRY" in node.target.id
            ):
                value = node.value
        if isinstance(value, ast.Dict):
            for key, val in zip(value.keys, value.values):
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(val, ast.Constant)
                    and isinstance(val.value, str)
                    and ":" in val.value
                ):
                    registry[key.value] = val.value
        if (
            isinstance(node, ast.Call)
            and _render_dotted(node.func) in (
                "register_job", "jobs.register_job",
            )
            and len(node.args) >= 2
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[1], ast.Constant)
            and isinstance(node.args[0].value, str)
            and isinstance(node.args[1].value, str)
        ):
            registry[node.args[0].value] = node.args[1].value
    return registry


def _decode_root_table(symbols: _ModuleSymbols, marker: str) -> Dict[str, str]:
    """Literal dicts whose name contains ``marker``. Same
    static-decoding contract as job registries — keep each table a
    literal of ``root_id: "module:Class"`` entries or the rule that
    walks it goes blind."""
    roots: Dict[str, str] = {}
    for node in ast.walk(symbols.tree):
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and marker in target.id:
                value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if (
                isinstance(node.target, ast.Name)
                and marker in node.target.id
            ):
                value = node.value
        if isinstance(value, ast.Dict):
            for key, val in zip(value.keys, value.values):
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(val, ast.Constant)
                    and isinstance(val.value, str)
                    and ":" in val.value
                ):
                    roots[key.value] = val.value
    return roots


def _decode_checkpoint_roots(symbols: _ModuleSymbols) -> Dict[str, str]:
    """``*CHECKPOINT_ROOTS*`` tables: what EQX406 walks."""
    return _decode_root_table(symbols, "CHECKPOINT_ROOTS")


def _decode_window_merge_roots(symbols: _ModuleSymbols) -> Dict[str, str]:
    """``*WINDOW_MERGE_ROOTS*`` tables: what EQX407 checks."""
    return _decode_root_table(symbols, "WINDOW_MERGE_ROOTS")


def _decode_kernel_pairs(
    symbols: _ModuleSymbols, resolver: _Resolver
) -> Dict[str, Dict[str, Any]]:
    """``register_kernel(name, reference, fast, ...)`` call sites."""
    pairs: Dict[str, Dict[str, Any]] = {}
    for node in ast.walk(symbols.tree):
        if not isinstance(node, ast.Call):
            continue
        rendered = _render_dotted(node.func)
        if rendered is None or rendered.rsplit(".", 1)[-1] != (
            "register_kernel"
        ):
            continue
        if len(node.args) < 3:
            continue
        name_arg = node.args[0]
        if not (
            isinstance(name_arg, ast.Constant)
            and isinstance(name_arg.value, str)
        ):
            continue

        def qualify_impl(expr: ast.expr) -> Optional[str]:
            shown = _render_dotted(expr)
            if shown is None:
                return None
            return resolver.qualify(symbols, shown) or shown

        pairs[name_arg.value] = {
            "reference": qualify_impl(node.args[1]),
            "fast": qualify_impl(node.args[2]),
            "line": node.lineno,
        }
    return pairs


# ----------------------------------------------------------------------
# Suppressions (shared comment grammar with the per-file lint)
# ----------------------------------------------------------------------


def _module_suppressions(
    source_lines: Sequence[str],
) -> Dict[int, List[str]]:
    from repro.analysis.codebase_linter import _parse_suppressions

    parsed = _parse_suppressions(source_lines)
    return {
        line: sorted(ids) if ids is not None else []
        for line, ids in parsed.items()
    }


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def build_index(root: Path) -> ProgramIndex:
    """Parse the package tree under ``root`` into a ProgramIndex."""
    root = Path(root).resolve()
    if not root.is_dir():
        raise ValueError(f"whole-program root must be a directory: {root}")
    symbol_tables: Dict[str, _ModuleSymbols] = {}
    for module_name, path in _module_files(root):
        try:
            display = str(path.relative_to(root.parent))
        except ValueError:
            display = str(path)
        symbols = _collect_symbols(
            module_name, path, display, path.read_text(encoding="utf-8")
        )
        if symbols is not None:
            symbol_tables[module_name] = symbols

    resolver = _Resolver(symbol_tables)
    index = ProgramIndex(root=str(root), digest=tree_digest(root))
    for module_name in sorted(symbol_tables):
        symbols = symbol_tables[module_name]
        record = ModuleRecord(
            name=module_name,
            path=symbols.display,
            suppressions=_module_suppressions(symbols.source_lines),
            job_registry=_decode_job_registries(symbols),
            kernel_pairs=_decode_kernel_pairs(symbols, resolver),
            checkpoint_roots=_decode_checkpoint_roots(symbols),
            window_merge_roots=_decode_window_merge_roots(symbols),
        )
        for fn_name, node in symbols.functions.items():
            qualname = f"{module_name}.{fn_name}"
            index.functions[qualname] = _extract_function(
                qualname, node, symbols, resolver, None
            )
            record.functions.append(qualname)
        for cls_name, methods in symbols.classes.items():
            record.classes[cls_name] = sorted(methods)
            class_def = symbols.class_defs[cls_name]
            attrs: Dict[str, str] = {}
            for attr, expr in sorted(symbols.attr_types[cls_name].items()):
                qualified = resolver.qualify(symbols, expr)
                if qualified in resolver.class_owners:
                    attrs[attr] = qualified
            record.class_info[cls_name] = {
                "line": class_def.lineno,
                "frozen": _is_frozen_dataclass(class_def),
                "bases": sorted(
                    qualified
                    for qualified in (
                        resolver.qualify(symbols, base)
                        for base in symbols.bases[cls_name]
                    )
                    if qualified in resolver.class_owners
                ),
                "attrs": attrs,
                "mutations": _class_mutations(methods),
            }
            for method_name, node in methods.items():
                qualname = f"{module_name}.{cls_name}.{method_name}"
                index.functions[qualname] = _extract_function(
                    qualname, node, symbols, resolver, cls_name
                )
                record.functions.append(qualname)
        record.functions.sort()
        index.modules[module_name] = record
    return index


def _artifact_path(cache_dir: Path, digest: str) -> Path:
    return Path(cache_dir) / f"callgraph_{digest[:16]}.json"


def load_or_build_index(
    root: Path, cache_dir: Optional[Path] = None
) -> Tuple[ProgramIndex, bool]:
    """Build the index, or load the cached artifact when its digest
    matches the tree. Returns ``(index, from_cache)``.

    The artifact is canonical JSON written atomically (temp file +
    rename), mirroring the exec result cache's discipline so a crashed
    writer can never leave a torn artifact behind.
    """
    root = Path(root).resolve()
    if cache_dir is None:
        return build_index(root), False
    cache_dir = Path(cache_dir)
    digest = tree_digest(root)
    path = _artifact_path(cache_dir, digest)
    if path.is_file():
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            if data.get("digest") == digest:
                return ProgramIndex.from_jsonable(data), True
        except (ValueError, KeyError):
            pass  # corrupt artifact: rebuild and overwrite below
    index = build_index(root)
    from repro.exec.canonical import canonical_json

    cache_dir.mkdir(parents=True, exist_ok=True)
    temp = path.with_suffix(".tmp")
    temp.write_text(canonical_json(index.to_jsonable()), encoding="utf-8")
    temp.replace(path)
    return index, False
