"""The ``python -m repro analyze`` subcommand.

    python -m repro analyze                       # full suite, text report
    python -m repro analyze --format json         # CI-consumable JSON
    python -m repro analyze --fail-on warning     # stricter gate
    python -m repro analyze --fixture tests/analysis/fixtures/missing_barrier.py
    python -m repro analyze whole-program src/repro   # EQX4xx pass

Default scope is both passes: the codebase lint over the installed
``repro`` package and the program verifier over every builtin workload
(the models the examples and the benchmark suite install). With
``--fixture``, only the named fixture modules are verified — the
regression corpus uses this to assert each checked-in broken program
still trips its rule.

``whole-program`` mode instead builds the interprocedural call graph
over a source tree (cacheable with ``--cache-dir``, keyed by the tree
digest), propagates the effect lattice, and judges the EQX4xx rules;
``--min-jobs`` / ``--min-kernels`` turn the coverage summary into a
hard gate so CI notices when the registries silently shrink.

Exit status: 0 when no finding reaches the ``--fail-on`` severity
(default ``error``), 1 otherwise.
"""

import argparse
from pathlib import Path
from typing import List, Optional, Tuple

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    exit_code,
    render_json,
    render_text,
)
from repro.analysis.program_verifier import DEFAULT_WASTE_THRESHOLD, verify
from repro.analysis.rules import UNREGISTERED_ENTRY_POINT, diagnostic
from repro.analysis.suite import (
    iter_fixture_artifacts,
    lint_repository,
    repo_source_root,
    verify_builtin_programs,
)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the analyze options (shared with ``repro.__main__``)."""
    parser.add_argument(
        "mode", nargs="?", choices=("suite", "whole-program"),
        default="suite",
        help="analysis to run: the default rule suite, or the "
        "interprocedural whole-program pass (EQX4xx)",
    )
    parser.add_argument(
        "root", nargs="?", type=Path, default=None,
        help="source tree for whole-program mode (default: the "
        "installed repro package)",
    )
    parser.add_argument(
        "--cache-dir", type=Path, default=None,
        help="whole-program mode: directory for the call-graph artifact "
        "(keyed by the tree digest; reused when the tree is unchanged)",
    )
    parser.add_argument(
        "--min-jobs", type=int, default=0,
        help="whole-program mode: fail unless at least this many "
        "registered job functions are covered by the call graph",
    )
    parser.add_argument(
        "--min-kernels", type=int, default=0,
        help="whole-program mode: fail unless at least this many "
        "kernel pairs are covered by the call graph",
    )
    parser.add_argument(
        "--min-checkpoint-roots", type=int, default=0,
        help="whole-program mode: fail unless at least this many "
        "checkpoint roots resolve to classes in the call graph "
        "(the EQX406 snapshot rule's coverage floor)",
    )
    parser.add_argument(
        "--min-window-roots", type=int, default=0,
        help="whole-program mode: fail unless at least this many "
        "window-merge roots resolve to classes carrying merge_state "
        "(the EQX407 shard-fold rule's coverage floor)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json for CI)",
    )
    parser.add_argument(
        "--fail-on", choices=("warning", "error"), default="error",
        help="lowest severity that fails the run (default: error)",
    )
    parser.add_argument(
        "--path", type=Path, default=None,
        help="root for the codebase lint pass (default: the installed "
        "repro package)",
    )
    parser.add_argument(
        "--fixture", type=Path, nargs="+", default=None,
        help="verify these fixture modules instead of the default suite",
    )
    parser.add_argument(
        "--skip-programs", action="store_true",
        help="skip the program-verifier pass",
    )
    parser.add_argument(
        "--skip-codebase", action="store_true",
        help="skip the codebase lint pass",
    )
    parser.add_argument(
        "--ignore", default="",
        help="comma-separated rule ids to drop from the report",
    )
    parser.add_argument(
        "--waste-threshold", type=float, default=DEFAULT_WASTE_THRESHOLD,
        help="utilization floor for the tiling-waste lint (EQX106)",
    )


def collect(args: argparse.Namespace) -> List[Diagnostic]:
    """Run the selected passes and return every diagnostic."""
    diags: List[Diagnostic] = []
    if args.fixture:
        for fixture in args.fixture:
            for config, artifact in iter_fixture_artifacts(fixture):
                diags.extend(verify(
                    artifact, config, waste_threshold=args.waste_threshold
                ))
        return diags
    if not args.skip_codebase:
        diags.extend(lint_repository(args.path))
    if not args.skip_programs:
        diags.extend(
            verify_builtin_programs(waste_threshold=args.waste_threshold)
        )
    return diags


def collect_whole_program(
    args: argparse.Namespace,
) -> Tuple[List[Diagnostic], dict]:
    """Run the interprocedural pass; returns (diagnostics, coverage).

    Imported lazily so the default suite never pays for the
    whole-program machinery.
    """
    from repro.analysis.whole_program import analyze_tree

    root = args.root or args.path or repo_source_root()
    report = analyze_tree(root, cache_dir=args.cache_dir)
    diags = list(report.diagnostics)
    coverage = report.coverage()
    for kind, covered, wanted in (
        ("job function", coverage["jobs_covered"], args.min_jobs),
        ("kernel pair", coverage["kernels_covered"], args.min_kernels),
        (
            "checkpoint root",
            coverage["checkpoint_roots_covered"],
            args.min_checkpoint_roots,
        ),
        (
            "window-merge root",
            coverage["window_merge_roots_covered"],
            args.min_window_roots,
        ),
    ):
        if covered < wanted:
            diags.append(diagnostic(
                UNREGISTERED_ENTRY_POINT,
                f"coverage gate: {covered} {kind}(s) covered by the "
                f"call graph, expected at least {wanted} — a registry "
                "shrank or its targets stopped resolving",
                file=str(root),
            ))
    return diags, coverage


def run(args: argparse.Namespace) -> int:
    """Execute the subcommand; returns the process exit code."""
    coverage = None
    if args.mode == "whole-program":
        diags, coverage = collect_whole_program(args)
    else:
        diags = collect(args)
    ignored = {part.strip() for part in args.ignore.split(",") if part.strip()}
    if ignored:
        diags = [d for d in diags if d.rule_id not in ignored]
    if args.format == "json":
        extra = {"coverage": coverage} if coverage is not None else None
        print(render_json(diags, extra=extra))
    else:
        print(render_text(diags))
        if coverage is not None:
            from repro.analysis.whole_program import coverage_lines

            for line in coverage_lines(coverage):
                print(line)
    return exit_code(diags, Severity.parse(args.fail_on))


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis.cli``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro analyze",
        description="Static analysis for compiled Equinox programs and "
        "the repro codebase.",
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    import sys

    sys.exit(main())
