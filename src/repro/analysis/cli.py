"""The ``python -m repro analyze`` subcommand.

    python -m repro analyze                       # full suite, text report
    python -m repro analyze --format json         # CI-consumable JSON
    python -m repro analyze --fail-on warning     # stricter gate
    python -m repro analyze --fixture tests/analysis/fixtures/missing_barrier.py

Default scope is both passes: the codebase lint over the installed
``repro`` package and the program verifier over every builtin workload
(the models the examples and the benchmark suite install). With
``--fixture``, only the named fixture modules are verified — the
regression corpus uses this to assert each checked-in broken program
still trips its rule.

Exit status: 0 when no finding reaches the ``--fail-on`` severity
(default ``error``), 1 otherwise.
"""

import argparse
from pathlib import Path
from typing import List, Optional

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    exit_code,
    render_json,
    render_text,
)
from repro.analysis.program_verifier import DEFAULT_WASTE_THRESHOLD, verify
from repro.analysis.suite import (
    iter_fixture_artifacts,
    lint_repository,
    verify_builtin_programs,
)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the analyze options (shared with ``repro.__main__``)."""
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json for CI)",
    )
    parser.add_argument(
        "--fail-on", choices=("warning", "error"), default="error",
        help="lowest severity that fails the run (default: error)",
    )
    parser.add_argument(
        "--path", type=Path, default=None,
        help="root for the codebase lint pass (default: the installed "
        "repro package)",
    )
    parser.add_argument(
        "--fixture", type=Path, nargs="+", default=None,
        help="verify these fixture modules instead of the default suite",
    )
    parser.add_argument(
        "--skip-programs", action="store_true",
        help="skip the program-verifier pass",
    )
    parser.add_argument(
        "--skip-codebase", action="store_true",
        help="skip the codebase lint pass",
    )
    parser.add_argument(
        "--ignore", default="",
        help="comma-separated rule ids to drop from the report",
    )
    parser.add_argument(
        "--waste-threshold", type=float, default=DEFAULT_WASTE_THRESHOLD,
        help="utilization floor for the tiling-waste lint (EQX106)",
    )


def collect(args: argparse.Namespace) -> List[Diagnostic]:
    """Run the selected passes and return every diagnostic."""
    diags: List[Diagnostic] = []
    if args.fixture:
        for fixture in args.fixture:
            for config, artifact in iter_fixture_artifacts(fixture):
                diags.extend(verify(
                    artifact, config, waste_threshold=args.waste_threshold
                ))
        return diags
    if not args.skip_codebase:
        diags.extend(lint_repository(args.path))
    if not args.skip_programs:
        diags.extend(
            verify_builtin_programs(waste_threshold=args.waste_threshold)
        )
    return diags


def run(args: argparse.Namespace) -> int:
    """Execute the subcommand; returns the process exit code."""
    diags = collect(args)
    ignored = {part.strip() for part in args.ignore.split(",") if part.strip()}
    if ignored:
        diags = [d for d in diags if d.rule_id not in ignored]
    if args.format == "json":
        print(render_json(diags))
    else:
        print(render_text(diags))
    return exit_code(diags, Severity.parse(args.fail_on))


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis.cli``)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro analyze",
        description="Static analysis for compiled Equinox programs and "
        "the repro codebase.",
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))


if __name__ == "__main__":
    import sys

    sys.exit(main())
