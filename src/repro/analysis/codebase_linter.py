"""Pass 2: AST-based lint rules over the ``src/repro`` tree.

Rules are pluggable: each is a :class:`LintRule` with a stable id from
the catalog in :mod:`repro.analysis.rules`, applied file by file to a
parsed module. Shipping rules:

* **EQX301 float64-leak** — ``np.float64`` usage outside
  ``repro.arith``. The HBFP datapath's fp32-equivalent convergence
  claim depends on every tensor passing through block quantization;
  full-precision numpy escaping the arithmetic package silently
  invalidates it.
* **EQX302 nondeterminism** — wall-clock reads (``time.time``,
  ``datetime.now``...) or unseeded RNG (``np.random.*`` without a seed,
  ``random.*`` module functions) inside ``repro.sim``, ``repro.hw`` and
  ``repro.core``, which must stay bit-reproducible (errors). Outside
  those packages, wall-clock and ``uuid4``/``uuid1`` calls are still
  reported as warnings unless the module is on the audited timing
  allowlist (``exec.bench``, ``obs.profile``, ``exec.tasks``,
  ``__main__``).
* **EQX303 swallowed-exception** — bare ``except:`` and
  ``except Exception: pass`` handlers.
* **EQX304 unused-import** — imports never referenced in the module.
* **EQX305 unbounded-retry** — ``while True`` retry loops whose except
  handler neither breaks, returns nor re-raises: the failure path spins
  forever. Retries must carry a budget, like the fault subsystem's
  bounded HBM retry and admission-control ``max_retries``.
* **EQX306 direct-percentile** — ``np.percentile`` calls outside
  ``repro.obs`` and ``repro.sim.stats``. Latency samples carry ``inf``
  sentinels for timed-out requests, which plain ``np.percentile``
  propagates as ``nan``; every percentile must go through
  ``inf_aware_percentile``, ``LatencyStats`` or the artifact sketch.
* **EQX307 adhoc-config-dump** — ``json.dumps``/``json.dump`` of a
  config object outside :mod:`repro.exec.canonical` (and the obs
  report serializer). Cache keys and artifact checksums are sha256
  over *canonical* JSON; an ad-hoc dump (unsorted keys, raw numpy
  scalars, default inf/nan handling) hashes differently and silently
  defeats result caching — use ``canonical_json``/``config_digest``.
* **EQX308 kernel-impl-import** — importing the
  ``repro.kernels.ref_*`` / ``fast_*`` implementation modules outside
  the kernels package (and its tests). The dispatch registry is the
  only sanctioned entry point: a direct import pins one backend
  forever, skipping ``set_backend``/``REPRO_KERNEL_BACKEND``, the
  per-call ``backend=`` opt-out and the dispatch counters that run
  artifacts embed.
* **EQX309 direct-heapq** — ``heapq`` imported outside ``repro.sim``
  (and tests). The simulator owns the event heap; a second heap
  elsewhere schedules work the engine cannot order, cancel, count in
  ``queue_depth`` or snapshot.
* **EQX310 unkeyed-serve-rng** — ambient randomness inside
  ``repro.serve``: any ``random`` import/use, and any
  ``np.random``/``numpy.random`` attribute use other than
  ``default_rng`` called *with a seed*. Fleet reports promise
  byte-identical output across ``--jobs`` values, which only seeded,
  crc32-keyed substreams can deliver.

Suppression: append ``# eqx: ignore[EQX301]`` (or ``# eqx: ignore`` for
all rules) to the offending line; ``# eqx: disable=EQX301,EQX304`` is
an accepted spelling of the same thing. Suppressions are deliberate
escape hatches — e.g. the functional systolic-array model computes its
exact-accumulation reference in float64 on purpose.
"""

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis import rules
from repro.analysis.diagnostics import Diagnostic, Severity

#: ``# eqx: ignore`` / ``# eqx: ignore[EQX301, EQX304]`` /
#: ``# eqx: disable=EQX301,EQX304`` / ``# eqx: disable``
_SUPPRESS_RE = re.compile(
    r"#\s*eqx:\s*(?:ignore(?:\[(?P<ids>[A-Z0-9,\s]+)\])?"
    r"|disable(?:\s*=\s*(?P<disable_ids>[A-Z0-9,\s]+))?)"
)

#: Modules whose determinism the simulator's reproducibility depends on.
DETERMINISTIC_PACKAGES = ("repro/sim", "repro/hw", "repro/core")

#: The quantization boundary: float64 is legal only inside this package
#: (block conversion needs a full-precision staging representation).
QUANTIZATION_PACKAGE = "repro/arith"


@dataclass
class LintContext:
    """Everything a rule needs about the file under analysis."""

    path: str  #: display path (repo-relative when possible)
    module_path: str  #: normalized posix path used for package scoping
    source_lines: Sequence[str]
    suppressions: Dict[int, Optional[Set[str]]] = field(default_factory=dict)

    def in_package(self, *prefixes: str) -> bool:
        return any(
            f"/{prefix}/" in self.module_path
            or self.module_path.endswith(f"/{prefix}.py")
            for prefix in prefixes
        )

    def suppressed(self, rule_id: str, line: int) -> bool:
        if line not in self.suppressions:
            return False
        ids = self.suppressions[line]
        return ids is None or rule_id in ids


def _parse_suppressions(
    source_lines: Sequence[str],
) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based line numbers to suppressed rule ids (None = all)."""
    suppressions: Dict[int, Optional[Set[str]]] = {}
    for number, text in enumerate(source_lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        ids = match.group("ids") or match.group("disable_ids")
        if ids is None:
            suppressions[number] = None
        else:
            suppressions[number] = {
                part.strip() for part in ids.split(",") if part.strip()
            }
    return suppressions


class LintRule:
    """Base class for pluggable AST rules."""

    rule: rules.Rule

    def applies_to(self, context: LintContext) -> bool:
        return True

    def check(self, tree: ast.Module, context: LintContext) -> List[Diagnostic]:
        raise NotImplementedError


def _dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class DtypeLeakRule(LintRule):
    """EQX301: float64 escaping the quantization boundary."""

    rule = rules.DTYPE_LEAK

    _TARGETS = ("np.float64", "numpy.float64")

    def applies_to(self, context: LintContext) -> bool:
        # repro.kernels hosts the registered reference/fast pairs for
        # the arith quantizers; their staging math is arith's, moved.
        return not context.in_package("arith", "kernels")

    def check(self, tree: ast.Module, context: LintContext) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        for node in ast.walk(tree):
            name = _dotted_name(node) if isinstance(node, ast.Attribute) else None
            if name in self._TARGETS:
                diags.append(rules.diagnostic(
                    self.rule,
                    f"{name} used outside repro.arith: full-precision "
                    "arithmetic bypasses HBFP block quantization",
                    file=context.path, line=node.lineno,
                ))
        return diags


class NondeterminismRule(LintRule):
    """EQX302: wall-clock or unseeded RNG in deterministic packages.

    Inside the deterministic packages (``repro.sim``/``hw``/``core``)
    every wall-clock read and unseeded-RNG draw is an **error**. Outside
    them, wall-clock and uuid calls still surface — as **warnings** —
    unless the module is on the audited allowlist (the bench timing
    harness, the profiler whose clock is injectable, the deliberately
    impure exec probe, and the CLI's progress timers).
    """

    rule = rules.NONDETERMINISM

    _CLOCK_CALLS = {
        "time.time", "time.time_ns", "time.monotonic", "time.perf_counter",
        "datetime.now", "datetime.utcnow", "datetime.today",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.date.today",
    }
    #: Identity sources: every call is fresh by construction.
    _UUID_CALLS = {"uuid.uuid4", "uuid4", "uuid.uuid1", "uuid1"}
    #: np.random constructors that are deterministic when given a seed.
    _SEEDABLE = {
        "np.random.default_rng", "numpy.random.default_rng",
        "np.random.RandomState", "numpy.random.RandomState",
        "random.Random",
    }
    #: Modules audited to read the wall clock: measurement is their job.
    _AUDITED_MODULES = (
        "repro/exec/bench.py",    # kernel timing harness
        "repro/obs/profile.py",   # profiler (clock is an injectable arg)
        "repro/exec/tasks.py",    # exec_probe sleeps on request
        "repro/__main__.py",      # CLI progress timers
    )

    def applies_to(self, context: LintContext) -> bool:
        return not any(
            context.module_path.endswith(suffix)
            for suffix in self._AUDITED_MODULES
        )

    def check(self, tree: ast.Module, context: LintContext) -> List[Diagnostic]:
        strict = context.in_package("sim", "hw", "core")
        diags: List[Diagnostic] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted_name(node.func)
            if name is None:
                continue
            if name in self._CLOCK_CALLS:
                if strict:
                    diags.append(rules.diagnostic(
                        self.rule,
                        f"{name}() reads the wall clock inside a "
                        "deterministic simulation package",
                        file=context.path, line=node.lineno,
                    ))
                else:
                    diags.append(rules.diagnostic(
                        self.rule,
                        f"{name}() reads the wall clock outside the "
                        "audited timing modules — route timing through "
                        "repro.obs.profile or repro.exec.bench, or add "
                        "the module to the audited allowlist",
                        file=context.path, line=node.lineno,
                        severity=Severity.WARNING,
                    ))
            elif name in self._UUID_CALLS:
                diags.append(rules.diagnostic(
                    self.rule,
                    f"{name}() mints a fresh identity every run — "
                    "derive ids from (config, seed) instead so "
                    "artifacts and cache keys stay reproducible",
                    file=context.path, line=node.lineno,
                    severity=Severity.ERROR if strict else Severity.WARNING,
                ))
            elif not strict:
                continue
            elif name in self._SEEDABLE:
                if not node.args and not node.keywords:
                    diags.append(rules.diagnostic(
                        self.rule,
                        f"{name}() without a seed is nondeterministic",
                        file=context.path, line=node.lineno,
                    ))
            elif name.startswith(("np.random.", "numpy.random.", "random.")):
                diags.append(rules.diagnostic(
                    self.rule,
                    f"{name}() draws from global (unseeded) RNG state",
                    file=context.path, line=node.lineno,
                ))
        return diags


class SwallowedExceptionRule(LintRule):
    """EQX303: bare excepts and pass-only broad handlers."""

    rule = rules.SWALLOWED_EXCEPTION

    _BROAD = {"Exception", "BaseException"}

    def check(self, tree: ast.Module, context: LintContext) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                diags.append(rules.diagnostic(
                    self.rule,
                    "bare `except:` catches SystemExit/KeyboardInterrupt "
                    "and hides real failures",
                    file=context.path, line=node.lineno,
                ))
                continue
            type_name = _dotted_name(node.type)
            body_is_noop = all(
                isinstance(stmt, ast.Pass)
                or (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                )
                for stmt in node.body
            )
            if type_name in self._BROAD and body_is_noop:
                diags.append(rules.diagnostic(
                    self.rule,
                    f"`except {type_name}: pass` silently swallows every "
                    "failure",
                    file=context.path, line=node.lineno,
                ))
        return diags


class UnusedImportRule(LintRule):
    """EQX304: imports never referenced in the module."""

    rule = rules.UNUSED_IMPORT

    def applies_to(self, context: LintContext) -> bool:
        # Package __init__ modules re-export names on purpose.
        return not context.module_path.endswith("__init__.py")

    def check(self, tree: ast.Module, context: LintContext) -> List[Diagnostic]:
        imported: List[Tuple[str, int, str]] = []  # (local name, line, shown)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    imported.append((local, node.lineno, alias.name))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    imported.append((local, node.lineno, alias.name))
        if not imported:
            return []
        used: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Name):
                used.add(node.id)
            elif isinstance(node, ast.Attribute):
                root = node
                while isinstance(root, ast.Attribute):
                    root = root.value
                if isinstance(root, ast.Name):
                    used.add(root.id)
        # Names referenced from string annotations / docstring doctests.
        source_text = "\n".join(context.source_lines)
        diags: List[Diagnostic] = []
        for local, line, shown in imported:
            if local in used:
                continue
            # Fall back to a textual scan: quoted annotations, doctests
            # and __all__ re-exports keep a name "used".
            occurrences = len(re.findall(rf"\b{re.escape(local)}\b", source_text))
            if occurrences > 1:
                continue
            diags.append(rules.diagnostic(
                self.rule,
                f"import {shown!r} (as {local!r}) is never used",
                file=context.path, line=line,
            ))
        return diags


class UnboundedRetryRule(LintRule):
    """EQX305: while-True retry loops with no bounded failure path."""

    rule = rules.UNBOUNDED_RETRY

    @staticmethod
    def _is_constant_true(test: ast.expr) -> bool:
        return isinstance(test, ast.Constant) and bool(test.value)

    #: Subtrees whose control flow is not the enclosing loop's: an inner
    #: loop's try retries within *that* loop (which gets its own visit),
    #: and nested scopes break/return somewhere else entirely.
    _SCOPE_BARRIERS = (
        ast.While, ast.For, ast.FunctionDef, ast.AsyncFunctionDef,
        ast.ClassDef, ast.Lambda,
    )

    @classmethod
    def _tries_of_loop(cls, loop: ast.While) -> List[ast.Try]:
        """Try statements whose except handlers feed this loop's
        backedge (skipping inner loops and nested scopes)."""
        tries: List[ast.Try] = []
        stack: List[ast.AST] = list(loop.body)
        while stack:
            node = stack.pop()
            if isinstance(node, cls._SCOPE_BARRIERS):
                continue
            if isinstance(node, ast.Try):
                tries.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return tries

    @classmethod
    def _handler_bounded(cls, handler: ast.ExceptHandler) -> bool:
        """Whether the failure path can leave the retry loop."""
        stack: List[ast.AST] = list(handler.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.Break, ast.Return, ast.Raise)):
                return True
            if isinstance(node, cls._SCOPE_BARRIERS):
                continue
            stack.extend(ast.iter_child_nodes(node))
        return False

    def check(self, tree: ast.Module, context: LintContext) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.While):
                continue
            if not self._is_constant_true(node.test):
                continue
            for try_node in self._tries_of_loop(node):
                for handler in try_node.handlers:
                    if not self._handler_bounded(handler):
                        diags.append(rules.diagnostic(
                            self.rule,
                            "while-True retry: this except handler never "
                            "breaks, returns or re-raises, so a persistent "
                            "fault spins the loop forever — bound the "
                            "retries (attempt counter, deadline) like the "
                            "fault subsystem's max_retries budgets",
                            file=context.path, line=handler.lineno,
                        ))
        return diags


class DirectPercentileRule(LintRule):
    """EQX306: np.percentile bypassing the inf-aware stats layer."""

    rule = rules.DIRECT_PERCENTILE

    _TARGETS = ("np.percentile", "numpy.percentile")

    def applies_to(self, context: LintContext) -> bool:
        # The observability package and the stats module *implement* the
        # sanctioned percentile paths (and test their equivalence to
        # numpy on finite data).
        if context.in_package("obs"):
            return False
        return not context.module_path.endswith("sim/stats.py")

    def check(self, tree: ast.Module, context: LintContext) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted_name(node.func)
            if name in self._TARGETS:
                diags.append(rules.diagnostic(
                    self.rule,
                    f"{name}() bypasses the inf-aware stats layer: "
                    "latency samples use inf sentinels, which this turns "
                    "into nan — use repro.sim.stats.inf_aware_percentile "
                    "or LatencyStats/QuantileSketch",
                    file=context.path, line=node.lineno,
                ))
        return diags


class AdhocConfigDumpRule(LintRule):
    """EQX307: json.dumps of a config outside the canonicalizer."""

    rule = rules.ADHOC_CONFIG_DUMP

    _TARGETS = ("json.dumps", "json.dump")
    #: Identifier fragments marking the dumped value as a config. A
    #: heuristic on purpose: serializing *reports* or arbitrary
    #: payloads ad hoc is fine — only configs feed cache keys.
    _CONFIG_HINTS = ("config", "cfg")

    def applies_to(self, context: LintContext) -> bool:
        # The canonicalizer is the sanctioned path, and the obs report
        # serializer defines the shared inf/nan policy it builds on.
        return not (
            context.module_path.endswith("exec/canonical.py")
            or context.module_path.endswith("obs/report.py")
        )

    @classmethod
    def _mentions_config(cls, node: ast.AST) -> bool:
        for sub in ast.walk(node):
            name: Optional[str] = None
            if isinstance(sub, ast.Name):
                name = sub.id
            elif isinstance(sub, ast.Attribute):
                name = sub.attr
            if name is not None and any(
                hint in name.lower() for hint in cls._CONFIG_HINTS
            ):
                return True
        return False

    def check(self, tree: ast.Module, context: LintContext) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = _dotted_name(node.func)
            if name not in self._TARGETS or not node.args:
                continue
            if self._mentions_config(node.args[0]):
                diags.append(rules.diagnostic(
                    self.rule,
                    f"{name}() of a config bypasses the canonical "
                    "serializer: key order, numpy scalars and non-finite "
                    "floats will hash differently than the exec cache "
                    "keys — use repro.exec.canonical_json / config_digest",
                    file=context.path, line=node.lineno,
                ))
        return diags


class KernelImplImportRule(LintRule):
    """EQX308: ref_*/fast_* kernel modules imported around the registry."""

    rule = rules.KERNEL_IMPL_IMPORT

    _PACKAGE = "repro.kernels"
    _IMPL_PREFIXES = ("ref_", "fast_")

    def applies_to(self, context: LintContext) -> bool:
        # The kernels package itself registers the pairs, and tests may
        # reach implementations directly (e.g. to fuzz one backend).
        if context.in_package("kernels", "tests"):
            return False
        return not context.module_path.startswith("tests/")

    @classmethod
    def _is_impl_module(cls, dotted: str) -> bool:
        prefix = f"{cls._PACKAGE}."
        if not dotted.startswith(prefix):
            return False
        leaf = dotted[len(prefix):].split(".", 1)[0]
        return leaf.startswith(cls._IMPL_PREFIXES)

    def check(self, tree: ast.Module, context: LintContext) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        for node in ast.walk(tree):
            offenders: List[str] = []
            if isinstance(node, ast.Import):
                offenders = [
                    alias.name for alias in node.names
                    if self._is_impl_module(alias.name)
                ]
            elif isinstance(node, ast.ImportFrom) and node.module:
                if self._is_impl_module(node.module):
                    offenders = [node.module]
                elif node.module == self._PACKAGE:
                    offenders = [
                        f"{self._PACKAGE}.{alias.name}"
                        for alias in node.names
                        if alias.name.startswith(self._IMPL_PREFIXES)
                    ]
            for dotted in offenders:
                diags.append(rules.diagnostic(
                    self.rule,
                    f"direct import of {dotted} bypasses the kernel "
                    "dispatch registry (backend pin, per-call opt-out "
                    "and dispatch counters stop applying) — use the "
                    "public wrappers or repro.kernels.dispatch()",
                    file=context.path, line=node.lineno,
                ))
        return diags


class DirectHeapqRule(LintRule):
    """EQX309: heapq imported outside the simulator package."""

    rule = rules.DIRECT_HEAPQ

    def applies_to(self, context: LintContext) -> bool:
        # repro.sim owns the event heap; tests may build reference
        # heaps to check the simulator against.
        if context.in_package("sim", "tests"):
            return False
        return not context.module_path.startswith("tests/")

    def check(self, tree: ast.Module, context: LintContext) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        for node in ast.walk(tree):
            hit = False
            if isinstance(node, ast.Import):
                hit = any(
                    alias.name == "heapq" or alias.name.startswith("heapq.")
                    for alias in node.names
                )
            elif isinstance(node, ast.ImportFrom):
                hit = node.module == "heapq"
            if hit:
                diags.append(rules.diagnostic(
                    self.rule,
                    "direct heapq use outside repro.sim builds a second "
                    "event queue the simulator cannot see (ordering, "
                    "cancellation, queue_depth and snapshots all stop "
                    "applying) — schedule through Simulator.at/after or "
                    "at_call/after_call",
                    file=context.path, line=node.lineno,
                ))
        return diags


class UnkeyedServeRngRule(LintRule):
    """EQX310: ambient randomness inside the serving package.

    ``repro.serve`` promises byte-identical fleet reports across
    ``--jobs`` settings, which only holds if every draw comes from a
    seeded, crc32-keyed substream. This rule bans the two ambient
    routes in that package: the stdlib ``random`` module (any import
    or module-attribute use) and ``np.random``/``numpy.random``
    attribute use — except ``default_rng`` called *with a seed
    argument*, the keyed-substream constructor itself.
    """

    rule = rules.UNKEYED_SERVE_RNG

    _DEFAULT_RNG = {"np.random.default_rng", "numpy.random.default_rng"}

    def applies_to(self, context: LintContext) -> bool:
        return context.in_package("serve")

    def check(self, tree: ast.Module, context: LintContext) -> List[Diagnostic]:
        diags: List[Diagnostic] = []
        #: Attribute nodes consumed by a seeded default_rng call — the
        #: one sanctioned np.random access, skipped in the walk below.
        allowed: Set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                name = _dotted_name(node.func)
                if name in self._DEFAULT_RNG:
                    if not (node.args or node.keywords):
                        diags.append(rules.diagnostic(
                            self.rule,
                            f"{name}() without a seed draws from OS "
                            "entropy — pass the keyed substream seed "
                            "([seed, zlib.crc32(label), instance])",
                            file=context.path, line=node.lineno,
                        ))
                    # Whether seeded (sanctioned) or already reported
                    # above, don't re-flag the attribute chain itself.
                    chain: ast.AST = node.func
                    while isinstance(chain, ast.Attribute):
                        allowed.add(id(chain))
                        chain = chain.value
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top == "random" or alias.name in (
                        "numpy.random", "np.random"
                    ):
                        diags.append(rules.diagnostic(
                            self.rule,
                            f"import {alias.name} inside repro.serve: "
                            "draw through seeded crc32-keyed substreams "
                            "instead",
                            file=context.path, line=node.lineno,
                        ))
            elif isinstance(node, ast.ImportFrom):
                if node.module is not None and (
                    node.module == "random"
                    or node.module.startswith("random.")
                    or node.module in ("numpy.random", "np.random")
                ):
                    diags.append(rules.diagnostic(
                        self.rule,
                        f"from {node.module} import inside repro.serve: "
                        "draw through seeded crc32-keyed substreams "
                        "instead",
                        file=context.path, line=node.lineno,
                    ))
                elif node.module in ("numpy", "np") and any(
                    alias.name == "random" for alias in node.names
                ):
                    diags.append(rules.diagnostic(
                        self.rule,
                        "from numpy import random inside repro.serve: "
                        "draw through seeded crc32-keyed substreams "
                        "instead",
                        file=context.path, line=node.lineno,
                    ))
            elif isinstance(node, ast.Attribute) and id(node) not in allowed:
                name = _dotted_name(node)
                if name is None:
                    continue
                if (
                    name.startswith("random.")
                    or name.startswith("np.random.")
                    or name.startswith("numpy.random.")
                    or name in ("np.random", "numpy.random")
                ):
                    diags.append(rules.diagnostic(
                        self.rule,
                        f"{name} inside repro.serve bypasses the keyed-"
                        "substream discipline — use np.random."
                        "default_rng([seed, zlib.crc32(label), "
                        "instance]) or FaultPlan.rng",
                        file=context.path, line=node.lineno,
                    ))
                    # One report per chain (walk is parents-first).
                    chain = node.value
                    while isinstance(chain, ast.Attribute):
                        allowed.add(id(chain))
                        chain = chain.value
        return diags


#: The shipped rule set, in catalog order.
DEFAULT_RULES: Tuple[LintRule, ...] = (
    DtypeLeakRule(),
    NondeterminismRule(),
    SwallowedExceptionRule(),
    UnusedImportRule(),
    UnboundedRetryRule(),
    DirectPercentileRule(),
    AdhocConfigDumpRule(),
    KernelImplImportRule(),
    DirectHeapqRule(),
    UnkeyedServeRngRule(),
)


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------


def lint_source(
    source: str,
    path: str = "<string>",
    lint_rules: Optional[Sequence[LintRule]] = None,
) -> List[Diagnostic]:
    """Lint one module's source text (unit-test entry point)."""
    lint_rules = DEFAULT_RULES if lint_rules is None else tuple(lint_rules)
    source_lines = source.splitlines()
    context = LintContext(
        path=path,
        module_path=Path(path).as_posix(),
        source_lines=source_lines,
        suppressions=_parse_suppressions(source_lines),
    )
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [rules.diagnostic(
            rules.SYNTAX_ERROR,
            f"module does not parse: {exc.msg}",
            file=path, line=exc.lineno or 0,
        )]
    diags: List[Diagnostic] = []
    for lint_rule in lint_rules:
        if not lint_rule.applies_to(context):
            continue
        for diagnostic in lint_rule.check(tree, context):
            line = diagnostic.location.line or 0
            if context.suppressed(diagnostic.rule_id, line):
                continue
            diags.append(diagnostic)
    diags.sort(key=lambda d: (d.location.line or 0, d.rule_id))
    return diags


def lint_file(
    path: Path,
    root: Optional[Path] = None,
    lint_rules: Optional[Sequence[LintRule]] = None,
) -> List[Diagnostic]:
    """Lint one file on disk, reporting paths relative to ``root``."""
    display = str(path)
    if root is not None:
        try:
            display = str(path.relative_to(root))
        except ValueError:
            pass
    return lint_source(
        path.read_text(encoding="utf-8"), path=display, lint_rules=lint_rules
    )


def lint_tree(
    root: Path,
    lint_rules: Optional[Sequence[LintRule]] = None,
) -> List[Diagnostic]:
    """Lint every ``*.py`` file under ``root`` (a package directory)."""
    root = Path(root)
    if root.is_file():
        return lint_file(root, root.parent, lint_rules)
    diags: List[Diagnostic] = []
    # Sort by posix-rendered path: byte-stable across filesystems whose
    # native separators or readdir order differ.
    for path in sorted(root.rglob("*.py"), key=lambda p: p.as_posix()):
        diags.extend(lint_file(path, root.parent, lint_rules))
    return diags
