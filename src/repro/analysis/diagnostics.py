"""Shared diagnostics core for the static-analysis passes.

Every verifier and lint rule reports :class:`Diagnostic` records — a
severity, a stable rule id (``EQX...``), a human-readable message and a
location (a source file/line for codebase lints, a program/step/job
path for the program verifier). The renderers turn a batch of
diagnostics into the text report the CLI prints or the JSON document CI
consumes; severity gating maps a batch onto a process exit code.
"""

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

#: Schema tag stamped into every JSON report so CI consumers can detect
#: incompatible format changes.
DIAGNOSTICS_SCHEMA = "repro.analysis/diagnostics/v1"


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so gating can compare."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {name!r}; "
                f"expected one of {[s.name.lower() for s in cls]}"
            ) from None

    def __str__(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class Location:
    """Where a diagnostic anchors.

    Codebase lints fill ``file``/``line``; the program verifier fills
    ``obj`` with a path like ``lstm_train/step[3]/job[0]`` or
    ``image:training``.
    """

    file: Optional[str] = None
    line: Optional[int] = None
    obj: Optional[str] = None

    def render(self) -> str:
        if self.file is not None:
            if self.line is not None:
                return f"{self.file}:{self.line}"
            return self.file
        if self.obj is not None:
            return self.obj
        return "<unknown>"


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis rule."""

    rule_id: str
    severity: Severity
    message: str
    location: Location = field(default_factory=Location)

    def render(self) -> str:
        return (
            f"{self.severity}: {self.rule_id} at {self.location.render()}: "
            f"{self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule_id": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
            "file": self.location.file,
            "line": self.location.line,
            "object": self.location.obj,
        }


# ----------------------------------------------------------------------
# Batch helpers
# ----------------------------------------------------------------------


def count_by_severity(diagnostics: Iterable[Diagnostic]) -> Dict[str, int]:
    counts = {str(severity): 0 for severity in Severity}
    for diagnostic in diagnostics:
        counts[str(diagnostic.severity)] += 1
    return counts


def max_severity(diagnostics: Iterable[Diagnostic]) -> Optional[Severity]:
    """The highest severity present, or None for a clean batch."""
    severities = [d.severity for d in diagnostics]
    return max(severities) if severities else None


def errors(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    return [d for d in diagnostics if d.severity >= Severity.ERROR]


def exit_code(
    diagnostics: Iterable[Diagnostic], fail_on: Severity = Severity.ERROR
) -> int:
    """Severity gate: non-zero when any finding reaches ``fail_on``."""
    worst = max_severity(diagnostics)
    return 1 if worst is not None and worst >= fail_on else 0


# ----------------------------------------------------------------------
# Renderers
# ----------------------------------------------------------------------


def render_text(diagnostics: Sequence[Diagnostic]) -> str:
    """The human-readable report: one line per finding plus a summary."""
    lines = [d.render() for d in diagnostics]
    counts = count_by_severity(diagnostics)
    summary = ", ".join(
        f"{counts[str(s)]} {s}{'s' if counts[str(s)] != 1 else ''}"
        for s in sorted(Severity, reverse=True)
    )
    lines.append(f"analysis: {summary}")
    return "\n".join(lines)


def render_json(
    diagnostics: Sequence[Diagnostic],
    *,
    extra: Optional[Dict[str, object]] = None,
) -> str:
    """The machine-readable report CI consumes.

    Canonical JSON — sorted keys, compact separators, no NaN/Infinity —
    so identical findings render byte-identically everywhere and the
    artifact can be checksummed. (Implemented locally rather than via
    :mod:`repro.exec.canonical` to keep the diagnostics core free of
    exec-layer imports.) ``extra`` merges additional top-level keys,
    e.g. the whole-program pass's coverage block.
    """
    document: Dict[str, object] = {
        "schema": DIAGNOSTICS_SCHEMA,
        "diagnostics": [d.to_dict() for d in diagnostics],
        "counts": count_by_severity(diagnostics),
    }
    if extra:
        document.update(extra)
    return json.dumps(
        document, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
