"""The effect lattice: sources, detection, interprocedural propagation.

An *effect* is anything that can make a function's observable behavior
depend on state outside its arguments — the exact things that break the
exec engine's caching contract (a cached result must be a pure function
of ``(config, seed, code_fingerprint)``) and the simulator's
bit-determinism claim. The vocabulary is
:data:`repro.analysis.annotations.KNOWN_EFFECTS`:

=================  =====================================================
``wall_clock``     ``time.time``/``perf_counter``/``sleep``,
                   ``datetime.now`` family
``unseeded_rng``   global numpy/random state, unseeded ``default_rng``,
                   ``uuid.uuid4``/``uuid1``, ``os.urandom``, ``secrets``
``env_read``       ``os.environ`` access, ``os.getenv``
``id_value``       ``id()`` — a CPython heap address, differs per run
``thread``         ``threading``/``multiprocessing``/futures use
``set_order``      iterating a set (str hashing is salted per process)
``fs_order``       unsorted ``listdir``/``scandir``/``glob``/``rglob``
``io``             ``open()``, ``Path`` read/write, ``tempfile``
``process``        ``os._exit``/``kill``/``fork``, ``subprocess``
=================  =====================================================

The lattice is the powerset of that vocabulary ordered by inclusion:
join is set union, bottom is the empty set (pure), top is every effect.
Propagation is a monotone fixed point over the call graph — a
function's *exported* effects are its direct sources joined with every
resolved callee's exports, minus whatever an ``@audited`` annotation
vouches for — so convergence is guaranteed in
O(functions x effects) rounds even through call cycles.

Detection is syntactic and *resolved through each module's import
table* (so ``from numpy.random import default_rng`` and
``np.random.default_rng`` both match), mirroring how EQX302 recognizes
its targets per file — this module generalizes that list
interprocedurally.
"""

import ast
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.analysis.annotations import KNOWN_EFFECTS, PURE_MARKER

__all__ = [
    "EFFECTS",
    "NONDETERMINISM_EFFECTS",
    "STATE_EFFECTS",
    "EffectSummary",
    "detect_effects",
    "propagate",
]

#: Stable tuple of the whole vocabulary, sorted.
EFFECTS: Tuple[str, ...] = tuple(sorted(KNOWN_EFFECTS))

#: Effects that break bit-determinism (EQX401's gate).
NONDETERMINISM_EFFECTS = frozenset({
    "wall_clock", "unseeded_rng", "id_value", "thread", "set_order",
    "fs_order", "process",
})

#: Effects that read or write state outside ``(config, seed)`` —
#: exactly what escapes the exec cache key (EQX403's gate).
STATE_EFFECTS = frozenset({"env_read", "io"})


# ----------------------------------------------------------------------
# Source tables (qualified names after import resolution)
# ----------------------------------------------------------------------

_WALL_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.sleep",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})

#: Constructors that are deterministic *with* a seed argument.
_SEEDABLE_CALLS = frozenset({
    "numpy.random.default_rng", "numpy.random.RandomState", "random.Random",
})

_RNG_CALLS = frozenset({
    "uuid.uuid4", "uuid.uuid1", "os.urandom", "secrets.token_bytes",
    "secrets.token_hex", "secrets.token_urlsafe", "secrets.randbelow",
    "secrets.choice",
})

_RNG_PREFIXES = ("numpy.random.", "random.", "secrets.")

_ENV_CALLS = frozenset({"os.getenv"})

_THREAD_PREFIXES = (
    "threading.", "multiprocessing.", "concurrent.futures.",
)

_FS_ORDER_CALLS = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})
_FS_ORDER_METHODS = frozenset({"iterdir", "glob", "rglob"})

_IO_CALLS = frozenset({
    "open", "os.makedirs", "os.replace", "os.remove", "os.rename",
    "os.mkdir", "shutil.copy", "shutil.copyfile", "shutil.rmtree",
    "tempfile.mkstemp", "tempfile.mkdtemp", "tempfile.NamedTemporaryFile",
    "tempfile.TemporaryDirectory",
})
_IO_METHODS = frozenset({
    "read_text", "read_bytes", "write_text", "write_bytes",
})

_PROCESS_CALLS = frozenset({
    "os._exit", "os.kill", "os.fork", "os.abort", "os.execv", "os.system",
})
_PROCESS_PREFIXES = ("subprocess.",)


def _render_dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _qualify(dotted: str, imports: Mapping[str, str]) -> str:
    """Resolve the head of a dotted name through the import table."""
    head, _, rest = dotted.partition(".")
    base = imports.get(head)
    if base is None:
        return dotted
    return f"{base}.{rest}" if rest else base


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


def detect_effects(
    fn_node: ast.AST, imports: Mapping[str, str]
) -> Dict[str, Tuple[int, str]]:
    """Direct effect sources in one function body.

    Returns ``{effect: (line, source expression)}`` for the *first*
    occurrence of each effect — enough for a precise diagnostic without
    storing every site. ``imports`` is the module's local-name →
    qualified-name table.
    """
    found: Dict[str, Tuple[int, str]] = {}

    def record(effect: str, node: ast.AST, shown: str) -> None:
        line = getattr(node, "lineno", 0)
        if effect not in found or line < found[effect][0]:
            found[effect] = (line, shown)

    # Parent map so "directly inside sorted()" can neutralize fs_order.
    parents: Dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(fn_node):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent

    def inside_sorted(node: ast.AST) -> bool:
        parent = parents.get(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id == "sorted"
            and node in parent.args
        )

    for node in ast.walk(fn_node):
        # Attribute access effects (no call needed): os.environ[...]
        if isinstance(node, ast.Attribute):
            dotted = _render_dotted(node)
            if dotted is not None and _qualify(dotted, imports) == (
                "os.environ"
            ):
                record("env_read", node, "os.environ")

        # Set-iteration order feeding downstream values.
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if _is_set_expr(node.iter):
                record("set_order", node, ast.unparse(node.iter))
        elif isinstance(node, (
            ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
        )):
            for generator in node.generators:
                if _is_set_expr(generator.iter):
                    record("set_order", node, ast.unparse(generator.iter))

        if not isinstance(node, ast.Call):
            continue
        rendered = _render_dotted(node.func)
        if rendered is None:
            # method call on a non-name expression; still check the
            # attribute for path-iteration / io method names below.
            if isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                if attr in _FS_ORDER_METHODS and not inside_sorted(node):
                    record("fs_order", node, f".{attr}()")
                elif attr in _IO_METHODS:
                    record("io", node, f".{attr}()")
            continue
        qualified = _qualify(rendered, imports)
        leaf = qualified.rsplit(".", 1)[-1]

        if qualified in _WALL_CLOCK_CALLS:
            record("wall_clock", node, f"{qualified}()")
        elif qualified in _SEEDABLE_CALLS:
            if not node.args and not node.keywords:
                record("unseeded_rng", node, f"{qualified}()")
        elif qualified in _RNG_CALLS or qualified.startswith(_RNG_PREFIXES):
            record("unseeded_rng", node, f"{qualified}()")
        elif qualified in _ENV_CALLS:
            record("env_read", node, f"{qualified}()")
        elif qualified == "id":
            record("id_value", node, "id()")
        elif qualified.startswith(_THREAD_PREFIXES):
            record("thread", node, f"{qualified}()")
        elif qualified in _FS_ORDER_CALLS or (
            leaf in _FS_ORDER_METHODS and "." in rendered
        ):
            if not inside_sorted(node):
                record("fs_order", node, f"{qualified}()")
        elif qualified in _IO_CALLS or leaf in _IO_METHODS:
            record("io", node, f"{qualified}()")
        elif qualified in _PROCESS_CALLS or qualified.startswith(
            _PROCESS_PREFIXES
        ):
            record("process", node, f"{qualified}()")
    return found


# ----------------------------------------------------------------------
# Interprocedural propagation
# ----------------------------------------------------------------------


class EffectSummary:
    """Fixed-point result: exported effects + witness chains.

    ``effects[fn]`` is the set of effect names ``fn`` exports to its
    callers. ``witness(fn, effect)`` renders the call chain from ``fn``
    down to the function whose body contains the source — the part of
    an interprocedural diagnostic that makes it actionable.
    """

    def __init__(
        self,
        exported: Dict[str, Set[str]],
        origins: Dict[str, Dict[str, Tuple[str, int, str]]],
    ):
        self._exported = exported
        #: fn -> effect -> (via_qualname, line, expr); via == fn for a
        #: direct source.
        self._origins = origins

    def effects_of(self, qualname: str) -> Set[str]:
        return set(self._exported.get(qualname, set()))

    def witness(self, qualname: str, effect: str, limit: int = 12) -> str:
        """``a -> b -> c: expr (file-local line)`` provenance chain."""
        chain: List[str] = [qualname]
        current = qualname
        for _ in range(limit):
            origin = self._origins.get(current, {}).get(effect)
            if origin is None:
                break
            via, line, expr = origin
            if via == current:
                return (
                    " -> ".join(chain)
                    + f": {expr} at line {line}"
                )
            chain.append(via)
            current = via
        return " -> ".join(chain)

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            qualname: sorted(effects)
            for qualname, effects in sorted(self._exported.items())
            if effects
        }


def propagate(functions: Mapping[str, Any]) -> EffectSummary:
    """Run the effect fixed point over extracted function records.

    ``functions`` maps qualname -> :class:`FunctionRecord`-shaped
    objects (``calls``, ``effects``, ``audit`` attributes). Unresolved
    calls contribute nothing — the analysis under-approximates edges,
    and the EQX404 coverage rule exists precisely to keep the entry
    points it *must* see inside the resolved region.
    """
    exported: Dict[str, Set[str]] = {}
    origins: Dict[str, Dict[str, Tuple[str, int, str]]] = {}

    def audit_set(record: Any) -> Set[str]:
        if record.audit is None:
            return set()
        if PURE_MARKER in record.audit:
            return set(KNOWN_EFFECTS)
        return set(record.audit)

    # Seed with direct sources.
    for qualname, record in functions.items():
        audited = audit_set(record)
        effects: Set[str] = set()
        origin: Dict[str, Tuple[str, int, str]] = {}
        for effect, (line, expr) in record.effects.items():
            if effect in audited:
                continue
            effects.add(effect)
            origin[effect] = (qualname, line, expr)
        exported[qualname] = effects
        origins[qualname] = origin

    # Reverse edges for the worklist.
    callers: Dict[str, List[str]] = {}
    for qualname, record in functions.items():
        for callee in record.calls:
            if callee in functions:
                callers.setdefault(callee, []).append(qualname)

    worklist = [q for q, effects in exported.items() if effects]
    while worklist:
        changed = worklist.pop()
        for caller in callers.get(changed, ()):  # propagate upward
            record = functions[caller]
            audited = audit_set(record)
            grew = False
            for effect in exported[changed]:
                if effect in audited or effect in exported[caller]:
                    continue
                exported[caller].add(effect)
                origin = origins[changed].get(effect)
                line = record.line if hasattr(record, "line") else 0
                origins[caller][effect] = (
                    changed, origin[1] if origin else line,
                    origin[2] if origin else effect,
                )
                grew = True
            if grew:
                worklist.append(caller)
    return EffectSummary(exported, origins)
