"""Static verifier for compiled programs and instruction images.

Pass 1 of the analysis subsystem: walks :class:`repro.hw.isa.Program`
job streams and :class:`repro.hw.instructions.InstructionImage` static
images and checks every hazard that is decidable before a simulation
runs — the hardware's static budgets (32 KB instruction buffer, the
< 2 % training staging cap), read-before-write hazards across steps,
loop-counter sanity, dead instructions, and job-field consistency.

:func:`verify_program` is also the install-time gate: the engines in
:mod:`repro.core.dispatcher` run it on every program they are handed
and refuse installation (``ProgramVerificationError``) on any
error-severity finding, so a violating service fails at install with a
diagnostic instead of deep inside a simulation.
"""

from typing import Iterable, List, Optional, Sequence, Union

from repro.analysis import rules
from repro.analysis.diagnostics import Diagnostic, errors, render_text
from repro.hw.config import AcceleratorConfig
from repro.hw.instructions import InstructionImage, Opcode
from repro.hw.isa import Program, StepProgram

#: Default utilization floor below which a job draws a tiling-waste
#: warning (Figure 8's "other" stalls).
DEFAULT_WASTE_THRESHOLD = 0.3

#: Hardware repeat-counter range: counts of 0/1 need no loop, and the
#: counter register is 16 bits wide.
MIN_LOOP_REPEAT = 2
MAX_LOOP_REPEAT = 1 << 16

#: Deepest loop nest the controller tracks (recurrence x row passes x
#: column groups, plus one level of slack).
MAX_LOOP_DEPTH = 4

#: DRAM traffic classes the dispatchers understand.
KNOWN_DRAM_KINDS = frozenset({
    "train_weights", "train_stream", "grad_accum", "grad_out",
    "stash", "stash_in", "stash_out", "param_sync",
})

#: Numeric slack for float aggregate comparisons.
_EPS = 1e-6


class ProgramVerificationError(RuntimeError):
    """A program failed install-time static verification.

    Attributes:
        diagnostics: Every finding of the verification run (the
            error-severity ones caused the raise).
    """

    def __init__(self, diagnostics: Sequence[Diagnostic]):
        self.diagnostics = list(diagnostics)
        super().__init__(
            "program failed static verification:\n"
            + render_text(self.diagnostics)
        )


def raise_on_errors(diagnostics: Iterable[Diagnostic]) -> None:
    """Raise :class:`ProgramVerificationError` on error findings."""
    batch = list(diagnostics)
    if errors(batch):
        raise ProgramVerificationError(batch)


# ----------------------------------------------------------------------
# Job-level verification (the install-time gate)
# ----------------------------------------------------------------------


def _step_stream_bytes(step: StepProgram) -> float:
    """Bytes the dispatcher stages ahead of this step's jobs: the
    weight stream plus stashed-operand reloads (mirrors
    ``TrainingEngine._step_stream_bytes``)."""
    stash_in = sum(r.bytes for r in step.dram if r.kind == "stash_in")
    return step.weight_bytes + stash_in


def _verify_job(
    diags: List[Diagnostic],
    job,
    where: str,
    program: Program,
    config: AcceleratorConfig,
) -> None:
    if job.cycles < 0 or job.macs < 0 or job.weight_bytes < 0:
        diags.append(rules.diagnostic(
            rules.INVALID_JOB_FIELD,
            f"negative field (cycles={job.cycles}, macs={job.macs}, "
            f"weight_bytes={job.weight_bytes})",
            obj=where,
        ))
    if not 0.0 <= job.utilization <= 1.0:
        diags.append(rules.diagnostic(
            rules.INVALID_JOB_FIELD,
            f"utilization {job.utilization} outside [0, 1]",
            obj=where,
        ))
    if job.instruction_count < 1:
        diags.append(rules.diagnostic(
            rules.INVALID_JOB_FIELD,
            f"instruction_count {job.instruction_count} < 1",
            obj=where,
        ))
    if job.rows < 1:
        diags.append(rules.diagnostic(
            rules.INVALID_JOB_FIELD, f"rows {job.rows} < 1", obj=where,
        ))
    elif job.rows > program.rows:
        diags.append(rules.diagnostic(
            rules.ROW_OVERFLOW,
            f"job streams {job.rows} rows but the program batches "
            f"{program.rows}",
            obj=where,
        ))
    capacity = job.cycles * config.total_alus
    if job.macs > capacity * (1.0 + _EPS):
        diags.append(rules.diagnostic(
            rules.DATAPATH_OVERCOMMIT,
            f"job claims {job.macs:.0f} MACs but {job.cycles:.0f} cycles "
            f"stream at most {capacity:.0f} on {config.total_alus} ALUs",
            obj=where,
        ))
def verify_program(
    program: Program,
    config: AcceleratorConfig,
    context: str = "service",
    waste_threshold: float = DEFAULT_WASTE_THRESHOLD,
) -> List[Diagnostic]:
    """Statically check one compiled job stream against ``config``.

    Covers rules EQX101-EQX107: empty programs/steps, invalid or
    overcommitted job fields, the < 2 % staging cap on per-job operand
    streams, the double-buffering condition, and tiling-waste warnings.
    """
    diags: List[Diagnostic] = []
    name = f"{context}:{program.name}"
    if not program.steps:
        diags.append(rules.diagnostic(
            rules.EMPTY_PROGRAM, "program has no steps", obj=name,
        ))
    if program.rows < 1:
        diags.append(rules.diagnostic(
            rules.INVALID_JOB_FIELD,
            f"program batches {program.rows} rows", obj=name,
        ))
    staging = config.staging_bytes
    for step_idx, step in enumerate(program.steps):
        where = f"{name}/step[{step_idx}]({step.label})"
        has_work = (
            bool(step.mmu_jobs) or step.simd.cycles > 0
            or step.simd.overlap_cycles > 0 or bool(step.dram)
        )
        if not has_work:
            diags.append(rules.diagnostic(
                rules.EMPTY_PROGRAM,
                "step carries no MMU, SIMD or DRAM work", obj=where,
            ))
        if step.simd.cycles < 0 or step.simd.overlap_cycles < 0 or step.simd.ops < 0:
            diags.append(rules.diagnostic(
                rules.INVALID_JOB_FIELD, "negative SIMD job field", obj=where,
            ))
        for request in step.dram:
            if request.bytes < 0:
                diags.append(rules.diagnostic(
                    rules.INVALID_JOB_FIELD,
                    f"negative DRAM request ({request.kind})", obj=where,
                ))
            if request.kind not in KNOWN_DRAM_KINDS:
                diags.append(rules.diagnostic(
                    rules.INVALID_JOB_FIELD,
                    f"unknown DRAM traffic kind {request.kind!r}", obj=where,
                ))
        for job_idx, job in enumerate(step.mmu_jobs):
            _verify_job(diags, job, f"{where}/job[{job_idx}]", program, config)
        # Tiling waste is a per-step property (every job of a step
        # shares one tiling), so report it once per step.
        step_macs = step.macs
        if step_macs > 0:
            mean_util = step.useful_macs / step_macs
            if 0 < mean_util < waste_threshold:
                diags.append(rules.diagnostic(
                    rules.TILING_WASTE,
                    f"utilization {mean_util:.2f} below the "
                    f"{waste_threshold:.2f} floor across "
                    f"{len(step.mmu_jobs)} jobs: "
                    f"{(1 - mean_util) * step_macs:.3g} padded MACs",
                    obj=where,
                ))
        # Staging budget: the dispatcher stages one job's stream share
        # at a time, so the per-job share is what the < 2 % cap bounds.
        stream = _step_stream_bytes(step)
        if stream > 0 and step.mmu_jobs:
            per_job = stream / len(step.mmu_jobs)
            if per_job > staging:
                diags.append(rules.diagnostic(
                    rules.STAGING_OVERFLOW,
                    f"per-job operand stream {per_job:.0f} B exceeds the "
                    f"staging slice ({staging:.0f} B, "
                    f"{config.staging_fraction:.0%} of SRAM)",
                    obj=where,
                ))
            elif per_job > staging / 2.0:
                diags.append(rules.diagnostic(
                    rules.STAGING_DOUBLE_BUFFER,
                    f"per-job operand stream {per_job:.0f} B exceeds half "
                    f"the staging slice ({staging / 2:.0f} B); prefetch "
                    "cannot overlap compute",
                    obj=where,
                ))
    return diags


# ----------------------------------------------------------------------
# Instruction-image verification
# ----------------------------------------------------------------------


def verify_image(
    image: InstructionImage,
    config: AcceleratorConfig,
    share: float = 1.0,
) -> List[Diagnostic]:
    """Statically check one instruction image against ``config``.

    Covers rules EQX201-EQX205: instruction-buffer residency (the
    32 KB budget, scaled by the service's ``share`` when two services
    space-share the buffer), loop-counter sanity and nesting depth,
    dead instructions, LOAD-before-MATMUL in training images, and
    missing-BARRIER read-before-write hazards.
    """
    diags: List[Diagnostic] = []
    name = f"image:{image.service}"
    budget = share * config.sram.instruction_bytes
    if image.bytes > budget:
        diags.append(rules.diagnostic(
            rules.INSTRUCTION_OVERFLOW,
            f"{image.bytes} B image exceeds its {budget:.0f} B share of "
            f"the {config.sram.instruction_bytes} B instruction buffer "
            f"({image.count} instructions)",
            obj=name,
        ))

    is_training = image.service == "training"
    loop_depth = 0
    seen_store = False
    loaded_since_barrier = not is_training  # inference weights resident
    previous: Optional[Opcode] = None
    for index, instruction in enumerate(image.instructions):
        where = f"{name}/instr[{index}]"
        opcode = instruction.opcode

        if opcode is Opcode.LOOP:
            repeat = instruction.operands[0] if instruction.operands else None
            if repeat is None:
                diags.append(rules.diagnostic(
                    rules.LOOP_MALFORMED, "LOOP without a repeat count",
                    obj=where,
                ))
            elif not MIN_LOOP_REPEAT <= repeat <= MAX_LOOP_REPEAT:
                diags.append(rules.diagnostic(
                    rules.LOOP_MALFORMED,
                    f"repeat count {repeat} outside "
                    f"[{MIN_LOOP_REPEAT}, {MAX_LOOP_REPEAT}]",
                    obj=where,
                ))
            loop_depth += 1
            if loop_depth > MAX_LOOP_DEPTH:
                diags.append(rules.diagnostic(
                    rules.LOOP_MALFORMED,
                    f"loop nesting depth {loop_depth} exceeds the "
                    f"controller's {MAX_LOOP_DEPTH} counters",
                    obj=where,
                ))
        else:
            if opcode is not Opcode.BARRIER:
                loop_depth = 0

        if opcode is Opcode.BARRIER:
            if previous is Opcode.LOOP:
                diags.append(rules.diagnostic(
                    rules.DEAD_INSTRUCTION,
                    "LOOP with an empty body (followed by BARRIER)",
                    obj=where,
                ))
            if previous is Opcode.BARRIER or previous is None:
                diags.append(rules.diagnostic(
                    rules.DEAD_INSTRUCTION,
                    "BARRIER fences nothing (leading or repeated)",
                    obj=where,
                ))
            loop_depth = 0
            seen_store = False
            loaded_since_barrier = not is_training

        if opcode in (Opcode.LOAD_WEIGHTS, Opcode.LOAD_ACTIVATIONS):
            loaded_since_barrier = True
            if seen_store:
                diags.append(rules.diagnostic(
                    rules.MISSING_BARRIER,
                    f"{opcode.value} after STORE_OUTPUT without a BARRIER "
                    "(read-before-write hazard)",
                    obj=where,
                ))
        if opcode is Opcode.MATMUL_TILE:
            if seen_store:
                diags.append(rules.diagnostic(
                    rules.MISSING_BARRIER,
                    "MATMUL_TILE after STORE_OUTPUT without a BARRIER "
                    "(read-before-write hazard)",
                    obj=where,
                ))
            if not loaded_since_barrier:
                diags.append(rules.diagnostic(
                    rules.MISSING_LOAD,
                    "training MATMUL_TILE with no LOAD since the last "
                    "BARRIER (operands were never staged)",
                    obj=where,
                ))
        if opcode is Opcode.STORE_OUTPUT:
            seen_store = True

        previous = opcode

    if previous is Opcode.LOOP:
        diags.append(rules.diagnostic(
            rules.DEAD_INSTRUCTION,
            "trailing LOOP with an empty body",
            obj=f"{name}/instr[{image.count - 1}]",
        ))
    return diags


Artifact = Union[Program, InstructionImage]


def verify(
    artifact: Artifact,
    config: AcceleratorConfig,
    context: str = "service",
    share: float = 1.0,
    waste_threshold: float = DEFAULT_WASTE_THRESHOLD,
) -> List[Diagnostic]:
    """Dispatch on the artifact type (fixture loader convenience)."""
    if isinstance(artifact, InstructionImage):
        return verify_image(artifact, config, share=share)
    if isinstance(artifact, Program):
        return verify_program(
            artifact, config, context=context, waste_threshold=waste_threshold
        )
    raise TypeError(f"cannot verify {type(artifact).__name__}")
