"""The rule catalog shared by both analysis passes.

Rule ids are stable API: CI configurations, suppression comments and
the regression corpus reference them. The bands are

* ``EQX1xx`` — program verifier, job-level (checked at service install),
* ``EQX2xx`` — program verifier, instruction-image level,
* ``EQX3xx`` — codebase lint (AST rules over ``src/repro``).

Each rule carries its default severity and a one-line rationale; the
full rationale catalog lives in ``DESIGN.md``.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.diagnostics import Diagnostic, Location, Severity


@dataclass(frozen=True)
class Rule:
    """One static-analysis rule's identity and defaults."""

    rule_id: str
    name: str
    severity: Severity
    rationale: str


_CATALOG: Dict[str, Rule] = {}


def _register(rule: Rule) -> Rule:
    if rule.rule_id in _CATALOG:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    _CATALOG[rule.rule_id] = rule
    return rule


# ---------------------------------------------------------------- EQX1xx
EMPTY_PROGRAM = _register(Rule(
    "EQX101", "empty-program", Severity.ERROR,
    "A program (or step) with no MMU, SIMD or DRAM work wedges the "
    "engine's dependency chain.",
))
INVALID_JOB_FIELD = _register(Rule(
    "EQX102", "invalid-job-field", Severity.ERROR,
    "Negative cycles/MACs/bytes, out-of-range utilization or zero "
    "instruction counts corrupt throughput accounting.",
))
DATAPATH_OVERCOMMIT = _register(Rule(
    "EQX103", "datapath-overcommit", Severity.ERROR,
    "A job claiming more MACs than cycles x total ALUs cannot be "
    "streamed by the datapath (paper Eq. 3 peak bound).",
))
STAGING_OVERFLOW = _register(Rule(
    "EQX104", "staging-overflow", Severity.ERROR,
    "A training job's operand stream must fit the < 2 % staging slice "
    "of on-chip SRAM (paper section 2.2).",
))
STAGING_DOUBLE_BUFFER = _register(Rule(
    "EQX105", "staging-no-double-buffer", Severity.WARNING,
    "A stream above half the staging slice serializes prefetch behind "
    "compute instead of overlapping it.",
))
TILING_WASTE = _register(Rule(
    "EQX106", "tiling-waste", Severity.WARNING,
    "Low job utilization pads tiles with dummy MACs — Figure 8's "
    "'other' stall class.",
))
ROW_OVERFLOW = _register(Rule(
    "EQX107", "row-overflow", Severity.WARNING,
    "A job streaming more rows than the program's batch silently pads "
    "every pass.",
))

# ---------------------------------------------------------------- EQX2xx
INSTRUCTION_OVERFLOW = _register(Rule(
    "EQX201", "instruction-buffer-overflow", Severity.ERROR,
    "An installed image must fit its share of the 32 KB instruction "
    "buffer (paper section 5).",
))
LOOP_MALFORMED = _register(Rule(
    "EQX202", "loop-malformed", Severity.ERROR,
    "Hardware repeat counters need a repeat count in [2, 65536] and "
    "bounded nesting.",
))
DEAD_INSTRUCTION = _register(Rule(
    "EQX203", "dead-instruction", Severity.WARNING,
    "Loops with empty bodies and redundant barriers occupy buffer "
    "bytes without effect.",
))
MISSING_LOAD = _register(Rule(
    "EQX204", "missing-load", Severity.ERROR,
    "A training-image MATMUL with no LOAD since the last BARRIER "
    "reads stale staging data (weights are DRAM-resident in training).",
))
MISSING_BARRIER = _register(Rule(
    "EQX205", "missing-barrier", Severity.ERROR,
    "A LOAD or MATMUL after a STORE without an intervening BARRIER is "
    "a read-before-write hazard across steps.",
))

# ---------------------------------------------------------------- EQX3xx
SYNTAX_ERROR = _register(Rule(
    "EQX300", "syntax-error", Severity.ERROR,
    "A module that does not parse cannot be analyzed (or imported).",
))
DTYPE_LEAK = _register(Rule(
    "EQX301", "float64-leak", Severity.ERROR,
    "float64 arithmetic outside repro.arith bypasses HBFP block "
    "quantization and silently invalidates Figure 2's convergence "
    "claim.",
))
NONDETERMINISM = _register(Rule(
    "EQX302", "nondeterminism", Severity.ERROR,
    "Wall-clock reads or unseeded RNG inside repro.sim/hw/core make "
    "simulations irreproducible.",
))
SWALLOWED_EXCEPTION = _register(Rule(
    "EQX303", "swallowed-exception", Severity.ERROR,
    "Bare or pass-only exception handlers hide datapath model bugs.",
))
UNUSED_IMPORT = _register(Rule(
    "EQX304", "unused-import", Severity.WARNING,
    "Unused imports hide real dependencies and slow module import.",
))
UNBOUNDED_RETRY = _register(Rule(
    "EQX305", "unbounded-retry", Severity.WARNING,
    "A while-True retry loop whose failure path neither breaks, "
    "returns nor re-raises can spin forever; recovery must be bounded "
    "(the fault subsystem's retry budgets exist for a reason).",
))
DIRECT_PERCENTILE = _register(Rule(
    "EQX306", "direct-percentile", Severity.ERROR,
    "np.percentile called outside repro.obs / repro.sim.stats: ad-hoc "
    "percentiles diverge from the inf-aware convention (timed-out "
    "requests carry an inf sentinel) and from the artifact sketch — "
    "use inf_aware_percentile / LatencyStats / QuantileSketch.",
))
ADHOC_CONFIG_DUMP = _register(Rule(
    "EQX307", "adhoc-config-dump", Severity.ERROR,
    "json.dumps of a config outside repro.exec.canonical: cache keys "
    "and artifact checksums are sha256 over *canonical* JSON (sorted "
    "keys, numpy coercion, the obs inf/nan policy); an ad-hoc dump "
    "hashes differently and silently defeats result caching — use "
    "repro.exec.canonical_json / config_digest.",
))
KERNEL_IMPL_IMPORT = _register(Rule(
    "EQX308", "kernel-impl-import", Severity.ERROR,
    "Importing repro.kernels.ref_* / fast_* implementation modules "
    "outside the kernels package bypasses the dispatch registry: the "
    "backend pin, the per-call opt-out and the dispatch counters all "
    "stop applying — call the public wrappers (bfp_matmul, im2col, "
    "SystolicArray.run...) or kernels.dispatch() instead.",
))
DIRECT_HEAPQ = _register(Rule(
    "EQX309", "direct-heapq", Severity.ERROR,
    "heapq outside repro.sim builds a second event queue: entries "
    "scheduled there are invisible to the simulator's ordering, "
    "cancellation bookkeeping, queue_depth invariant and snapshot "
    "machinery, silently breaking determinism and resume — schedule "
    "through Simulator.at/after (or at_call/after_call for "
    "fire-and-forget work) instead.",
))
UNKEYED_SERVE_RNG = _register(Rule(
    "EQX310", "unkeyed-serve-rng", Severity.ERROR,
    "Module-level random / numpy.random use inside repro.serve: fleet "
    "scenarios promise byte-identical reports for any --jobs value, "
    "so every draw must come from a seeded, crc32-keyed substream "
    "(np.random.default_rng([seed, zlib.crc32(label), instance]) or a "
    "FaultPlan.rng stream) — ambient generators shared across workers "
    "break that silently.",
))

# ---------------------------------------------------------------- EQX4xx
# Whole-program rules: judged against the interprocedural call graph
# and effect lattice (repro.analysis.whole_program), not one file.
NONDET_JOB_FN = _register(Rule(
    "EQX401", "nondeterministic-job-fn", Severity.ERROR,
    "A registered exec job function transitively reaches a "
    "nondeterminism source (wall clock, unseeded RNG, set iteration "
    "order, id(), threading) — the content-addressed result cache "
    "would silently serve results that a re-run cannot reproduce.",
))
RNG_STREAM_DIVERGENCE = _register(Rule(
    "EQX402", "rng-stream-divergence", Severity.ERROR,
    "A KernelPair's reference and fast implementations consume their "
    "rng parameter differently (methods, argument shapes, order, or "
    "forwarding) — backends would desynchronize the RNG stream and "
    "every later stochastic call diverges, violating the bit-exact "
    "parity contract.",
))
CACHE_KEY_ESCAPE = _register(Rule(
    "EQX403", "cache-key-escape", Severity.ERROR,
    "A registered job function reads state outside (config, seed, "
    "code_fingerprint) — environment variables or files — so the "
    "cache key does not describe the computation and cached results "
    "are unsound.",
))
UNREGISTERED_ENTRY_POINT = _register(Rule(
    "EQX404", "unregistered-entry-point", Severity.ERROR,
    "A registry target or kernel implementation the call graph cannot "
    "resolve (or a job-shaped function missing its registration) is "
    "an entry point the whole-program rules silently skip — the "
    "analyzer's coverage guarantee is void until it is registered or "
    "removed.",
))
IMPURE_MERGE_STATE = _register(Rule(
    "EQX405", "impure-merge_state", Severity.ERROR,
    "A merge_state implementation has effects — the worker-to-parent "
    "aggregation hand-off must be a pure fold, or parallel execution "
    "(--jobs N) diverges from serial and the byte-identical artifact "
    "guarantee breaks.",
))
ASYMMETRIC_SNAPSHOT = _register(Rule(
    "EQX406", "asymmetric-snapshot", Severity.ERROR,
    "A stateful class reachable from a checkpoint root "
    "(repro.state.CHECKPOINT_ROOTS) is missing its to_state/from_state "
    "pair, or carries only one side of it — a checkpoint taken through "
    "that root silently drops (or cannot restore) the class's mutable "
    "state, breaking the bit-exact resume contract. Config-only frozen "
    "dataclasses are exempt; genuinely unsnapshotable classes must "
    "raise SnapshotError from to_state instead of omitting it.",
))
UNMERGEABLE_WINDOW_METRIC = _register(Rule(
    "EQX407", "unmergeable-window-metric", Severity.ERROR,
    "A metric root the sharded executor folds across window boundaries "
    "(repro.state.WINDOW_MERGE_ROOTS) lacks merge_state alongside its "
    "to_state/from_state pair — the ordered window merge cannot fold "
    "that type, so a sharded run either crashes or silently drops its "
    "contribution and the byte-identical-to-serial guarantee breaks.",
))


def catalog() -> List[Rule]:
    """All registered rules in id order."""
    return [_CATALOG[rule_id] for rule_id in sorted(_CATALOG)]


def rule(rule_id: str) -> Rule:
    try:
        return _CATALOG[rule_id]
    except KeyError:
        raise KeyError(f"unknown rule id {rule_id!r}") from None


def is_known_rule(rule_id: str) -> bool:
    return rule_id in _CATALOG


def diagnostic(
    rule_obj: Rule,
    message: str,
    *,
    file: Optional[str] = None,
    line: Optional[int] = None,
    obj: Optional[str] = None,
    severity: Optional[Severity] = None,
) -> Diagnostic:
    """Build a diagnostic for ``rule_obj`` at the given location."""
    return Diagnostic(
        rule_id=rule_obj.rule_id,
        severity=severity if severity is not None else rule_obj.severity,
        message=message,
        location=Location(file=file, line=line, obj=obj),
    )
