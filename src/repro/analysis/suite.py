"""The default analysis suite: what ``python -m repro analyze`` checks.

Programs: every model the examples and the evaluation harness install
(the DeepBench LSTM and GRU, ResNet50 and the example MLP), compiled
for the paper's Equinox configuration, verified at both the job level
(what the engines install) and the instruction-image level (what the
host writes into the 32 KB instruction buffer).

ResNet50's *training* image is excluded from the image checks by
design: a CNN backward pass materializes ~350 KB of instructions, an
order of magnitude past the buffer — Equinox trains recurrent services
(paper section 5), and the verifier exists precisely to reject such an
install. The regression corpus pins that failure.

Codebase: the lint pass over the installed ``repro`` package tree.
"""

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional

import repro
from repro.analysis.codebase_linter import LintRule, lint_tree
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.program_verifier import (
    DEFAULT_WASTE_THRESHOLD,
    verify_image,
    verify_program,
)
from repro.hw.config import AcceleratorConfig
from repro.hw.instructions import assemble_inference, assemble_training
from repro.models import deepbench_gru, deepbench_lstm, mlp, resnet50
from repro.models.compiler import TileCompiler
from repro.models.graph import ModelSpec

#: Two installed services space-share the instruction buffer.
IMAGE_SHARE = 0.5


@dataclass(frozen=True)
class Workload:
    """One model the suite verifies.

    Attributes:
        model: The model spec.
        chunk_us: Compiler job granularity (matches the eval harness).
        train_image: Whether the training instruction image is expected
            to fit the buffer (False only for CNN training, see module
            docstring).
    """

    model: ModelSpec
    chunk_us: float = 2.0
    train_image: bool = True


def builtin_workloads() -> List[Workload]:
    """The models installed by ``examples/`` and the benchmark suite."""
    return [
        Workload(deepbench_lstm(), chunk_us=2.0),
        Workload(deepbench_gru(), chunk_us=20.0),
        Workload(resnet50(), chunk_us=4.0, train_image=False),
        Workload(mlp((1024, 1024, 1024, 10), name="mlp_1k"), chunk_us=2.0),
    ]


def default_config() -> AcceleratorConfig:
    """The paper's published design point (Table 1, 500 us class)."""
    from repro.dse.table1 import equinox_configuration

    return equinox_configuration("500us")


def verify_workload(
    workload: Workload,
    config: AcceleratorConfig,
    waste_threshold: float = DEFAULT_WASTE_THRESHOLD,
    train_batch: int = 128,
) -> List[Diagnostic]:
    """Verify one model's compiled programs and instruction images."""
    compiler = TileCompiler(config, workload.chunk_us)
    model = workload.model
    diags: List[Diagnostic] = []

    inference = compiler.compile_inference(model)
    diags.extend(verify_program(
        inference, config, context="inference", waste_threshold=waste_threshold
    ))
    training = compiler.compile_training(
        model, batch=train_batch, max_stream_bytes=config.staging_bytes / 2.0
    )
    diags.extend(verify_program(
        training, config, context="training", waste_threshold=waste_threshold
    ))

    diags.extend(verify_image(
        assemble_inference(model, config), config, share=IMAGE_SHARE
    ))
    if workload.train_image:
        diags.extend(verify_image(
            assemble_training(model, config, batch=train_batch),
            config, share=IMAGE_SHARE,
        ))
    return diags


def verify_builtin_programs(
    config: Optional[AcceleratorConfig] = None,
    waste_threshold: float = DEFAULT_WASTE_THRESHOLD,
) -> List[Diagnostic]:
    """Run the program verifier over the whole builtin suite."""
    config = config or default_config()
    diags: List[Diagnostic] = []
    for workload in builtin_workloads():
        diags.extend(verify_workload(workload, config, waste_threshold))
    return diags


def repo_source_root() -> Path:
    """The installed ``repro`` package directory."""
    return Path(repro.__file__).resolve().parent


def lint_repository(
    root: Optional[Path] = None,
    lint_rules: Optional[List[LintRule]] = None,
) -> List[Diagnostic]:
    """Run the codebase lint pass (default: the repro package tree)."""
    return lint_tree(root or repo_source_root(), lint_rules)


def iter_fixture_artifacts(fixture_path: Path) -> Iterator[tuple]:
    """Load a regression-corpus fixture module.

    A fixture is a Python file defining ``build()`` returning
    ``(config, artifacts)`` where ``artifacts`` is one Program /
    InstructionImage or a list of them.
    """
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        f"repro_analysis_fixture_{fixture_path.stem}", fixture_path
    )
    if spec is None or spec.loader is None:
        raise ValueError(f"cannot load fixture {fixture_path}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    if not hasattr(module, "build"):
        raise ValueError(f"fixture {fixture_path} defines no build()")
    config, artifacts = module.build()
    if not isinstance(artifacts, (list, tuple)):
        artifacts = [artifacts]
    for artifact in artifacts:
        yield config, artifact
