"""The EQX4xx rules: whole-program determinism & cache soundness.

Where EQX3xx lints one file's AST, this pass judges *entry points*
against the interprocedural effect summary of
:mod:`repro.analysis.effects` over the call graph of
:mod:`repro.analysis.callgraph`:

* **EQX401 nondeterministic-job-fn** — every function registered in a
  job registry (the exec engine's ``fn_id → callable`` table) must
  export no nondeterminism effect: a wall-clock read or unseeded RNG
  draw three calls down makes the content-addressed result cache serve
  stale data silently.
* **EQX402 rng-stream-divergence** — a KernelPair's reference and fast
  implementations must interact with their ``rng`` parameter
  identically (same methods, same argument shapes, same order, same
  forwarding); any divergence desynchronizes the RNG stream and breaks
  the bit-exact parity contract on every later stochastic call.
* **EQX403 cache-key-escape** — a job function reading state outside
  ``(config, seed, code_fingerprint)`` (environment variables, files)
  computes results the cache key does not describe.
* **EQX404 unregistered-entry-point** — a registry target or kernel
  implementation the call graph cannot resolve is an entry point the
  other rules silently skip, and a job-shaped function living in a
  registry-target module without a registration can never be analyzed
  (or cached) at all. This rule is the analyzer's own soundness check.
* **EQX405 impure-merge_state** — ``merge_state`` implementations are
  the worker→parent aggregation hand-off; any effect there lets a
  parallel run diverge from the serial one, breaking the ``--jobs N``
  byte-identical guarantee.
* **EQX406 asymmetric-snapshot** — every stateful class reachable from
  a checkpoint root (``repro.state.CHECKPOINT_ROOTS``, decoded
  statically like the job registries) through ``__init__`` attribute
  assignments and base classes must carry a *symmetric*
  ``to_state``/``from_state`` pair: one side without the other, or
  neither on a class that mutates ``self`` outside ``__init__``, means
  a checkpoint through that root silently drops state and the
  bit-exact resume contract is void. Frozen dataclasses (config-only
  values) are exempt; classes that genuinely cannot snapshot must
  still define ``to_state`` and raise ``SnapshotError`` from it.
* **EQX407 unmergeable-window-metric** — every metric root the sharded
  executor folds across window boundaries
  (``repro.state.WINDOW_MERGE_ROOTS``, decoded statically like the
  checkpoint-root table) must implement ``merge_state`` alongside its
  snapshot pair; a missing fold means a sharded run cannot reproduce
  the serial artifacts byte for byte.

Escape hatch: audited sinks carry ``@pure``/``@audited`` annotations
(:mod:`repro.analysis.annotations`), recognized statically; line-level
``# eqx: ignore[...]`` / ``# eqx: disable=...`` comments on the ``def``
line work too, for parity with the per-file lint.
"""

from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis import rules
from repro.analysis.callgraph import (
    FunctionRecord,
    ProgramIndex,
    load_or_build_index,
)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.effects import (
    NONDETERMINISM_EFFECTS,
    STATE_EFFECTS,
    EffectSummary,
    propagate,
)

__all__ = [
    "WholeProgramReport",
    "analyze_tree",
    "coverage_lines",
]

#: Parameter spellings that mark a top-level function as job-shaped
#: (the registry contract is ``fn(config, seed)``).
_JOB_PARAMS = ("config", "seed")


class WholeProgramReport:
    """Analyzer output: diagnostics plus the coverage evidence."""

    def __init__(
        self,
        index: ProgramIndex,
        summary: EffectSummary,
        diagnostics: List[Diagnostic],
        from_cache: bool,
    ):
        self.index = index
        self.summary = summary
        self.diagnostics = diagnostics
        self.from_cache = from_cache

    def coverage(self) -> Dict[str, Any]:
        """What the call graph proved it can see (the EQX404 evidence).

        ``jobs`` / ``kernels`` map each registered entry point to the
        resolved qualified name (``None`` = unresolved, which EQX404
        reports); the counts let CI assert a floor without parsing
        names.
        """
        jobs: Dict[str, Optional[str]] = {}
        for fn_id, target in self.index.job_registry().items():
            record = self.index.resolve_target(target)
            jobs[fn_id] = record.qualname if record else None
        kernels: Dict[str, Dict[str, Optional[str]]] = {}
        for name, pair in self.index.kernel_pairs().items():
            resolved: Dict[str, Optional[str]] = {}
            for side in ("reference", "fast"):
                target = pair.get(side)
                record = (
                    self.index.functions.get(target) if target else None
                )
                resolved[side] = record.qualname if record else None
            kernels[name] = resolved
        merge_state = [r.qualname for r in self.index.merge_state_methods()]
        roots: Dict[str, Optional[str]] = {}
        for root_id, target in self.index.checkpoint_roots().items():
            qualname = target.replace(":", ".")
            roots[root_id] = (
                qualname if self.index.class_info(qualname) is not None
                else None
            )
        window_roots: Dict[str, Optional[str]] = {}
        for root_id, target in self.index.window_merge_roots().items():
            qualname = target.replace(":", ".")
            window_roots[root_id] = (
                qualname
                if self.index.class_info(qualname) is not None
                and self.index.class_has_method(qualname, "merge_state")
                else None
            )
        return {
            "modules": len(self.index.modules),
            "functions": len(self.index.functions),
            "call_edges": self.index.edge_count(),
            "jobs": jobs,
            "jobs_covered": sum(1 for q in jobs.values() if q),
            "kernels": kernels,
            "kernels_covered": sum(
                1 for pair in kernels.values()
                if pair["reference"] and pair["fast"]
            ),
            "merge_state": merge_state,
            "checkpoint_roots": roots,
            "checkpoint_roots_covered": sum(1 for q in roots.values() if q),
            "window_merge_roots": window_roots,
            "window_merge_roots_covered": sum(
                1 for q in window_roots.values() if q
            ),
            "digest": self.index.digest,
            "from_cache": self.from_cache,
        }


def _location(
    index: ProgramIndex, record: FunctionRecord
) -> Tuple[Optional[str], int]:
    module = index.modules.get(record.module)
    return (module.path if module else None), record.line


def _suppressed(
    index: ProgramIndex, record: FunctionRecord, rule_id: str
) -> bool:
    return index.suppressed(record.module, record.line, rule_id)


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------


def _check_job_functions(
    index: ProgramIndex, summary: EffectSummary
) -> List[Diagnostic]:
    """EQX401 + EQX403 over every registered job function."""
    diags: List[Diagnostic] = []
    for fn_id, target in index.job_registry().items():
        record = index.resolve_target(target)
        if record is None:
            continue  # EQX404's finding, not ours
        effects = summary.effects_of(record.qualname)
        file, line = _location(index, record)

        nondet = sorted(effects & NONDETERMINISM_EFFECTS)
        if nondet and not _suppressed(index, record, "EQX401"):
            witnesses = "; ".join(
                f"{effect}: {summary.witness(record.qualname, effect)}"
                for effect in nondet
            )
            diags.append(rules.diagnostic(
                rules.NONDET_JOB_FN,
                f"job {fn_id!r} ({record.qualname}) is transitively "
                f"nondeterministic — the result cache would serve stale "
                f"data for it [{witnesses}]",
                file=file, line=line,
            ))

        escapes = sorted(effects & STATE_EFFECTS)
        if escapes and not _suppressed(index, record, "EQX403"):
            witnesses = "; ".join(
                f"{effect}: {summary.witness(record.qualname, effect)}"
                for effect in escapes
            )
            diags.append(rules.diagnostic(
                rules.CACHE_KEY_ESCAPE,
                f"job {fn_id!r} ({record.qualname}) reads state outside "
                f"(config, seed, code_fingerprint) — results keyed only "
                f"on those inputs cannot be trusted [{witnesses}]",
                file=file, line=line,
            ))
    return diags


def _check_kernel_pairs(index: ProgramIndex) -> List[Diagnostic]:
    """EQX402: reference/fast rng-stream contract."""
    diags: List[Diagnostic] = []
    for name, pair in index.kernel_pairs().items():
        sides: Dict[str, Optional[FunctionRecord]] = {
            side: index.functions.get(pair.get(side) or "")
            for side in ("reference", "fast")
        }
        reference, fast = sides["reference"], sides["fast"]
        if reference is None or fast is None:
            continue  # EQX404's finding
        if reference.rng_trace == fast.rng_trace:
            continue
        if _suppressed(index, fast, "EQX402"):
            continue
        file, line = _location(index, fast)
        diags.append(rules.diagnostic(
            rules.RNG_STREAM_DIVERGENCE,
            f"kernel pair {name!r}: reference and fast backends consume "
            f"the rng stream differently — reference draws "
            f"{reference.rng_trace or ['nothing']}, fast draws "
            f"{fast.rng_trace or ['nothing']}; a switched backend "
            f"desynchronizes every later stochastic call",
            file=file, line=line,
        ))
    return diags


def _check_entry_point_coverage(index: ProgramIndex) -> List[Diagnostic]:
    """EQX404: everything registered must resolve; everything
    job-shaped in a registry-target module must be registered."""
    diags: List[Diagnostic] = []
    registry = index.job_registry()
    target_modules: Dict[str, str] = {}
    registered_qualnames = set()
    for fn_id, target in registry.items():
        qualname = target.replace(":", ".")
        registered_qualnames.add(qualname)
        target_modules[qualname.rsplit(".", 1)[0]] = fn_id
        if index.resolve_target(target) is None:
            module_name = target.partition(":")[0]
            module = index.modules.get(module_name)
            diags.append(rules.diagnostic(
                rules.UNREGISTERED_ENTRY_POINT,
                f"job {fn_id!r} targets {target!r}, which the call graph "
                f"cannot resolve — the entry point would run (or fail) "
                f"unanalyzed",
                file=module.path if module else None,
                obj=None if module else f"job:{fn_id}",
            ))
    for name, pair in index.kernel_pairs().items():
        for side in ("reference", "fast"):
            target = pair.get(side)
            if target is None or target not in index.functions:
                diags.append(rules.diagnostic(
                    rules.UNREGISTERED_ENTRY_POINT,
                    f"kernel pair {name!r}: the {side} implementation "
                    f"({target or 'unrenderable expression'}) is outside "
                    f"the call graph — its rng/effect contract is "
                    f"unverifiable",
                    obj=f"kernel:{name}.{side}",
                ))
    # Job-shaped functions in modules the registry points into that are
    # not themselves registered: they look like jobs, execute like
    # jobs, but bypass fn_id addressing, caching and this analysis.
    for module_name in sorted(target_modules):
        module = index.modules.get(module_name)
        if module is None:
            continue
        for qualname in module.functions:
            record = index.functions[qualname]
            fn_name = qualname.rsplit(".", 1)[-1]
            if qualname.count(".") != module_name.count(".") + 1:
                continue  # method, not a top-level function
            if fn_name.startswith("_"):
                continue
            if tuple(record.params[:2]) != _JOB_PARAMS:
                continue
            if qualname in registered_qualnames:
                continue
            if _suppressed(index, record, "EQX404"):
                continue
            file, line = _location(index, record)
            diags.append(rules.diagnostic(
                rules.UNREGISTERED_ENTRY_POINT,
                f"{qualname} is job-shaped (config, seed) and lives in a "
                f"registry-target module but is not registered — it can "
                f"never be cached, fanned out, or analyzed as an entry "
                f"point",
                file=file, line=line,
            ))
    return diags


def _reachable_snapshot_classes(index: ProgramIndex) -> Dict[str, List[str]]:
    """Class qualname -> sorted root ids it is reachable from.

    Breadth-first over the static attribute graph: a class reaches the
    classes its ``__init__`` assigns to ``self`` attributes, plus its
    base classes (their state is the object's state too).
    """
    reached: Dict[str, set] = {}
    for root_id, target in index.checkpoint_roots().items():
        start = target.replace(":", ".")
        queue = [start]
        while queue:
            current = queue.pop(0)
            if root_id in reached.setdefault(current, set()):
                continue
            reached[current].add(root_id)
            info = index.class_info(current)
            if info is None:
                continue
            queue.extend(info.get("attrs", {}).values())
            queue.extend(info.get("bases", []))
    return {
        qualname: sorted(roots) for qualname, roots in sorted(reached.items())
    }


def _check_snapshot_symmetry(index: ProgramIndex) -> List[Diagnostic]:
    """EQX406: snapshot coverage over the checkpoint-root closure."""
    diags: List[Diagnostic] = []
    for qualname, roots in _reachable_snapshot_classes(index).items():
        info = index.class_info(qualname)
        module_name, _, cls_name = qualname.rpartition(".")
        module = index.modules.get(module_name)
        via = f"checkpoint root(s) {', '.join(repr(r) for r in roots)}"
        if info is None or module is None:
            # A root table entry pointing outside the call graph is the
            # same soundness hole EQX404 guards registries against.
            diags.append(rules.diagnostic(
                rules.ASYMMETRIC_SNAPSHOT,
                f"{qualname} is named by {via} but is outside the call "
                f"graph — its snapshot contract is unverifiable",
                file=module.path if module else None,
                obj=qualname,
            ))
            continue
        if info.get("frozen"):
            continue  # immutable config value: nothing to snapshot
        if index.suppressed(module_name, int(info["line"]), "EQX406"):
            continue
        has_to = index.class_has_method(qualname, "to_state")
        has_from = index.class_has_method(qualname, "from_state")
        if has_to and has_from:
            continue
        file, line = module.path, int(info["line"])
        if has_to != has_from:
            present, absent = (
                ("to_state", "from_state") if has_to
                else ("from_state", "to_state")
            )
            diags.append(rules.diagnostic(
                rules.ASYMMETRIC_SNAPSHOT,
                f"{qualname} (reachable from {via}) defines {present} "
                f"but not {absent} — a one-sided snapshot contract can "
                f"checkpoint state it cannot restore (or vice versa)",
                file=file, line=line,
            ))
            continue
        mutations = info.get("mutations", [])
        if not mutations:
            continue  # set up in __init__, never mutated: config-like
        method, attr, mline = mutations[0]
        diags.append(rules.diagnostic(
            rules.ASYMMETRIC_SNAPSHOT,
            f"{qualname} (reachable from {via}) mutates self.{attr} in "
            f"{method}() (line {mline}) but defines neither to_state "
            f"nor from_state — checkpoints through its root silently "
            f"drop that state",
            file=file, line=line,
        ))
    return diags


def _check_window_merge_roots(index: ProgramIndex) -> List[Diagnostic]:
    """EQX407: window-merged metric roots must carry merge_state."""
    diags: List[Diagnostic] = []
    for root_id, target in index.window_merge_roots().items():
        qualname = target.replace(":", ".")
        info = index.class_info(qualname)
        module_name, _, _ = qualname.rpartition(".")
        module = index.modules.get(module_name)
        if info is None or module is None:
            diags.append(rules.diagnostic(
                rules.UNMERGEABLE_WINDOW_METRIC,
                f"window-merge root {root_id!r} targets {target!r}, which "
                f"is outside the call graph — its merge contract is "
                f"unverifiable",
                file=module.path if module else None,
                obj=qualname,
            ))
            continue
        if index.suppressed(module_name, int(info["line"]), "EQX407"):
            continue
        missing = [
            method
            for method in ("merge_state", "to_state", "from_state")
            if not index.class_has_method(qualname, method)
        ]
        if not missing:
            continue
        diags.append(rules.diagnostic(
            rules.UNMERGEABLE_WINDOW_METRIC,
            f"{qualname} (window-merge root {root_id!r}) is missing "
            f"{', '.join(missing)} — the sharded executor's ordered "
            f"window merge cannot fold it, so sharded artifacts cannot "
            f"be byte-identical to the serial run",
            file=module.path, line=int(info["line"]),
        ))
    return diags


def _check_merge_state(
    index: ProgramIndex, summary: EffectSummary
) -> List[Diagnostic]:
    """EQX405: aggregation hand-offs must be effect-free."""
    diags: List[Diagnostic] = []
    for record in index.merge_state_methods():
        effects = sorted(summary.effects_of(record.qualname))
        if not effects or _suppressed(index, record, "EQX405"):
            continue
        witnesses = "; ".join(
            f"{effect}: {summary.witness(record.qualname, effect)}"
            for effect in effects
        )
        file, line = _location(index, record)
        diags.append(rules.diagnostic(
            rules.IMPURE_MERGE_STATE,
            f"{record.qualname} has effects — worker→parent aggregation "
            f"must be pure or --jobs N diverges from --jobs 1 "
            f"[{witnesses}]",
            file=file, line=line,
        ))
    return diags


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def analyze_tree(
    root: Path, cache_dir: Optional[Path] = None
) -> WholeProgramReport:
    """Run the whole-program pass over the package tree at ``root``.

    With ``cache_dir``, the call-graph artifact is loaded when its
    digest matches the tree (and written otherwise); the effect fixed
    point always re-runs — it is linear and cheap next to parsing.
    """
    index, from_cache = load_or_build_index(Path(root), cache_dir)
    summary = propagate(index.functions)
    diagnostics: List[Diagnostic] = []
    diagnostics.extend(_check_job_functions(index, summary))
    diagnostics.extend(_check_kernel_pairs(index))
    diagnostics.extend(_check_entry_point_coverage(index))
    diagnostics.extend(_check_merge_state(index, summary))
    diagnostics.extend(_check_snapshot_symmetry(index))
    diagnostics.extend(_check_window_merge_roots(index))
    diagnostics.sort(key=lambda d: (
        d.location.file or "", d.location.line or 0, d.rule_id,
    ))
    return WholeProgramReport(index, summary, diagnostics, from_cache)


def coverage_lines(coverage: Dict[str, Any]) -> List[str]:
    """Human-readable coverage summary (the CLI's text footer)."""
    lines = [
        f"whole-program: {coverage['modules']} modules, "
        f"{coverage['functions']} functions, "
        f"{coverage['call_edges']} call edges"
        + (" (cached call graph)" if coverage["from_cache"] else ""),
        f"jobs covered: {coverage['jobs_covered']}/"
        f"{len(coverage['jobs'])} "
        f"({', '.join(sorted(coverage['jobs']))})",
        f"kernel pairs covered: {coverage['kernels_covered']}/"
        f"{len(coverage['kernels'])} "
        f"({', '.join(sorted(coverage['kernels']))})",
        f"merge_state implementations: {len(coverage['merge_state'])}",
        f"checkpoint roots covered: {coverage['checkpoint_roots_covered']}/"
        f"{len(coverage['checkpoint_roots'])} "
        f"({', '.join(sorted(coverage['checkpoint_roots']))})",
        f"window-merge roots covered: "
        f"{coverage['window_merge_roots_covered']}/"
        f"{len(coverage['window_merge_roots'])} "
        f"({', '.join(sorted(coverage['window_merge_roots']))})",
    ]
    return lines
