"""Arithmetic encodings used by Equinox datapaths.

The paper evaluates two datapath encodings:

* ``hbfp8`` — hybrid block floating point [Drumond et al., NeurIPS'18]:
  all matrix operands are blocks of 8-bit fixed-point mantissas sharing a
  single 12-bit exponent, multiplied with 8-bit multipliers and
  accumulated in 25-bit fixed point; non-GEMM (SIMD) work runs in
  bfloat16.
* ``bfloat16`` — the state-of-the-art reference for custom training
  accelerators, with fp32 accumulation.

This package provides functional implementations of both (plus plain
fixed point used by the inference-only baseline), a block-floating-point
tensor type, and quantized GEMM routines that the training substrate
(:mod:`repro.train`) and the functional systolic model
(:mod:`repro.hw.systolic`) consume.
"""

from repro.arith.types import Encoding, ENCODINGS, encoding_by_name
from repro.arith.bfloat16 import to_bfloat16, bfloat16_quantization_step
from repro.arith.fixed_point import quantize_fixed_point, FixedPointFormat
from repro.arith.bfp import BlockFloatTensor, quantize_bfp, BFPFormat
from repro.arith.hbfp import hbfp_gemm, HBFP8, HBFPConfig
from repro.arith.gemm import gemm, reference_gemm

__all__ = [
    "Encoding",
    "ENCODINGS",
    "encoding_by_name",
    "to_bfloat16",
    "bfloat16_quantization_step",
    "quantize_fixed_point",
    "FixedPointFormat",
    "BlockFloatTensor",
    "quantize_bfp",
    "BFPFormat",
    "hbfp_gemm",
    "HBFP8",
    "HBFPConfig",
    "gemm",
    "reference_gemm",
]
