"""bfloat16 quantization.

bfloat16 is the upper 16 bits of an IEEE-754 float32: 1 sign bit, 8
exponent bits, 7 mantissa bits. Quantization is implemented with
round-to-nearest-even on the dropped 16 bits, matching hardware
converters used in TPU-class accelerators.
"""

import numpy as np


def to_bfloat16(values: np.ndarray) -> np.ndarray:
    """Round ``values`` to bfloat16 precision, returned as float32.

    Uses round-to-nearest-even on the 16 truncated mantissa bits, the
    rounding mode hardware bfloat16 converters implement. NaN and inf
    are preserved.
    """
    x = np.asarray(values, dtype=np.float32)
    bits = x.view(np.uint32)
    # Round to nearest even: add 0x7FFF plus the LSB of the surviving
    # mantissa, then truncate.
    rounding_bias = 0x7FFF + ((bits >> 16) & 1)
    rounded = np.where(np.isnan(x), bits, bits + rounding_bias)
    return (rounded & np.uint32(0xFFFF0000)).view(np.float32)


def bfloat16_quantization_step(value: float) -> float:
    """Return the spacing between adjacent bfloat16 values near ``value``.

    Useful for error-bound assertions in tests: the round-off error of
    :func:`to_bfloat16` never exceeds half this step.
    """
    if value == 0.0 or not np.isfinite(value):
        return 2.0 ** -133  # smallest subnormal step
    exponent = np.floor(np.log2(abs(value)))
    return float(2.0 ** (exponent - 7))
