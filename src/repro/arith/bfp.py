"""Block floating point (BFP) tensors.

A BFP tensor partitions a 2-D array into tiles; all values in a tile are
stored as signed fixed-point mantissas sharing a single exponent (the
tile maximum's exponent). This is the storage format of Equinox's hbfp8
datapath: 8-bit mantissas, a 12-bit exponent per tile, and tile-tile
matrix multiplication performed as an integer GEMM plus an exponent add
(paper §3.2).

The numerical work lives in :mod:`repro.kernels` as reference/fast
implementation pairs; the entry points here validate arguments and
dispatch. Pass ``backend="reference"`` / ``backend="fast"`` to pin one
call, or use :func:`repro.kernels.set_backend` for the ambient default
(the two are bit-identical by contract, so this only changes speed).
"""

from dataclasses import dataclass
from functools import cached_property, lru_cache
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class BFPFormat:
    """Shape of a block-floating-point encoding.

    Attributes:
        mantissa_bits: Signed mantissa width (8 for hbfp8).
        exponent_bits: Shared exponent width (12 in the paper, enough to
            never saturate in practice; exponents are clamped to this
            range on encode).
        block_rows: Tile height.
        block_cols: Tile width.
    """

    mantissa_bits: int = 8
    exponent_bits: int = 12
    block_rows: int = 16
    block_cols: int = 16

    def __post_init__(self) -> None:
        if self.mantissa_bits < 2:
            raise ValueError("mantissa needs at least 2 bits")
        if self.block_rows < 1 or self.block_cols < 1:
            raise ValueError("block dimensions must be positive")

    # Derived range constants, computed once per format instance
    # (kernels read these per call; cached_property writes through the
    # frozen dataclass's __dict__ on first access).

    @cached_property
    def exponent_min(self) -> int:
        return -(2 ** (self.exponent_bits - 1))

    @cached_property
    def exponent_max(self) -> int:
        return 2 ** (self.exponent_bits - 1) - 1

    @cached_property
    def mantissa_min(self) -> int:
        return -(2 ** (self.mantissa_bits - 1))

    @cached_property
    def mantissa_max(self) -> int:
        return 2 ** (self.mantissa_bits - 1) - 1


BFP8 = BFPFormat(mantissa_bits=8, exponent_bits=12)


@lru_cache(maxsize=None)
def saturation_bounds(accumulator_bits: int) -> Tuple[int, int]:
    """(lo, hi) clamp range of a signed saturating accumulator."""
    return -(2 ** (accumulator_bits - 1)), 2 ** (accumulator_bits - 1) - 1


@lru_cache(maxsize=512)
def pow2_table(lo: int, hi: int) -> np.ndarray:
    """Read-only float64 table of ``2.0**k`` for ``k`` in [lo, hi].

    ``np.ldexp(1.0, k)`` equals Python's ``2.0**k`` bit for bit across
    the representable range (exact powers of two, subnormals included;
    underflow gives 0.0 either way), so kernels can replace per-tile
    scalar powers with one memoized table lookup.
    """
    table = np.ldexp(1.0, np.arange(lo, hi + 1, dtype=np.int32))
    table.setflags(write=False)
    return table


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class BlockFloatTensor:
    """A 2-D tensor stored in block floating point.

    The tensor is padded up to whole tiles internally; ``shape`` reports
    the logical (unpadded) shape and :meth:`to_float` returns the
    unpadded decode.

    Attributes:
        fmt: The :class:`BFPFormat` in force.
        mantissas: Integer mantissas with padded shape, dtype int32.
        exponents: Per-tile exponents, shape
            ``(rows/block_rows, cols/block_cols)``, dtype int32.
    """

    def __init__(
        self,
        fmt: BFPFormat,
        mantissas: np.ndarray,
        exponents: np.ndarray,
        logical_shape: tuple,
    ):
        self.fmt = fmt
        self.mantissas = mantissas
        self.exponents = exponents
        self._logical_shape = tuple(logical_shape)

    @property
    def shape(self) -> tuple:
        return self._logical_shape

    @property
    def tile_grid(self) -> tuple:
        """Number of tiles along each axis."""
        return self.exponents.shape

    @classmethod
    def from_float(
        cls,
        values: np.ndarray,
        fmt: BFPFormat = BFP8,
        rounding: str = "nearest",
        rng: "np.random.Generator | None" = None,
        backend: "str | None" = None,
    ) -> "BlockFloatTensor":
        """Quantize a float array into BFP.

        For each tile the shared exponent is chosen so the tile maximum
        maps into (0.5, 1] before mantissa scaling; mantissas are
        rounded and clipped to the signed range. All-zero tiles use the
        minimum exponent.

        Args:
            values: 2-D float array.
            fmt: Block format.
            rounding: ``"nearest"`` (datapath converters) or
                ``"stochastic"`` — the unbiased rounding HBFP training
                uses on the weight-update path so that sub-LSB updates
                survive in expectation.
            rng: Randomness source for stochastic rounding (a default
                generator is created when omitted). Both kernel
                backends consume the stream identically.
            backend: Kernel backend override for this call
                (``"reference"`` / ``"fast"``; ``None`` = ambient).
        """
        x = np.asarray(values, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"BFP tensors are 2-D, got shape {x.shape}")
        if rounding not in ("nearest", "stochastic"):
            raise ValueError(f"unknown rounding mode {rounding!r}")
        from repro import kernels

        quantize = kernels.dispatch("bfp.quantize", backend)
        mantissas, exponents, logical_shape = quantize(
            x, fmt, rounding=rounding, rng=rng
        )
        return cls(fmt, mantissas, exponents, logical_shape)

    def to_float(self, backend: "str | None" = None) -> np.ndarray:
        """Decode back to float32 (logical shape, padding stripped)."""
        from repro import kernels

        dequantize = kernels.dispatch("bfp.dequantize", backend)
        return dequantize(
            self.mantissas, self.exponents, self.fmt, self._logical_shape
        )

    def storage_bits(self) -> int:
        """Total storage footprint in bits (mantissas + shared exponents)."""
        n_tiles = self.exponents.size
        return (
            self.mantissas.size * self.fmt.mantissa_bits
            + n_tiles * self.fmt.exponent_bits
        )

    def quantization_error(self, reference: np.ndarray) -> float:
        """Max absolute decode error against ``reference``."""
        return float(np.abs(self.to_float() - np.asarray(reference, np.float32)).max())


def quantize_bfp(
    values: np.ndarray, fmt: BFPFormat = BFP8, backend: "str | None" = None
) -> np.ndarray:
    """Round-trip a float array through BFP (quantize-dequantize)."""
    return BlockFloatTensor.from_float(values, fmt, backend=backend).to_float(
        backend=backend
    )


def bfp_matmul(
    a: BlockFloatTensor,
    b: BlockFloatTensor,
    accumulator_bits: int = 25,
    backend: "str | None" = None,
) -> np.ndarray:
    """Multiply two BFP tensors the way Equinox's systolic arrays do.

    Each tile-pair product is an integer GEMM (8-bit multipliers feeding
    ``accumulator_bits``-wide accumulators, saturating) whose scale is
    the sum of the two tile exponents; partial tiles are accumulated
    across the K dimension in float, modeling the fp32/bfloat16
    accumulation after the exponent-synchronizing FIFO (paper §3.2).

    Requires ``a.fmt.block_cols == b.fmt.block_rows`` so tiles align
    along the reduction dimension.

    Returns the float32 product with logical shape (a.rows, b.cols).
    """
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch {a.shape} @ {b.shape}")
    if a.fmt.block_cols != b.fmt.block_rows:
        raise ValueError("tile reduction dimensions must align")
    from repro import kernels

    matmul = kernels.dispatch("bfp.matmul", backend)
    return matmul(
        a.mantissas,
        a.exponents,
        b.mantissas,
        b.exponents,
        a.fmt,
        b.fmt,
        a.shape[0],
        b.shape[1],
        accumulator_bits=accumulator_bits,
    )
