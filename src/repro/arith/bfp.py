"""Block floating point (BFP) tensors.

A BFP tensor partitions a 2-D array into tiles; all values in a tile are
stored as signed fixed-point mantissas sharing a single exponent (the
tile maximum's exponent). This is the storage format of Equinox's hbfp8
datapath: 8-bit mantissas, a 12-bit exponent per tile, and tile-tile
matrix multiplication performed as an integer GEMM plus an exponent add
(paper §3.2).
"""

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BFPFormat:
    """Shape of a block-floating-point encoding.

    Attributes:
        mantissa_bits: Signed mantissa width (8 for hbfp8).
        exponent_bits: Shared exponent width (12 in the paper, enough to
            never saturate in practice; exponents are clamped to this
            range on encode).
        block_rows: Tile height.
        block_cols: Tile width.
    """

    mantissa_bits: int = 8
    exponent_bits: int = 12
    block_rows: int = 16
    block_cols: int = 16

    def __post_init__(self) -> None:
        if self.mantissa_bits < 2:
            raise ValueError("mantissa needs at least 2 bits")
        if self.block_rows < 1 or self.block_cols < 1:
            raise ValueError("block dimensions must be positive")

    @property
    def exponent_min(self) -> int:
        return -(2 ** (self.exponent_bits - 1))

    @property
    def exponent_max(self) -> int:
        return 2 ** (self.exponent_bits - 1) - 1

    @property
    def mantissa_min(self) -> int:
        return -(2 ** (self.mantissa_bits - 1))

    @property
    def mantissa_max(self) -> int:
        return 2 ** (self.mantissa_bits - 1) - 1


BFP8 = BFPFormat(mantissa_bits=8, exponent_bits=12)


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


class BlockFloatTensor:
    """A 2-D tensor stored in block floating point.

    The tensor is padded up to whole tiles internally; ``shape`` reports
    the logical (unpadded) shape and :meth:`to_float` returns the
    unpadded decode.

    Attributes:
        fmt: The :class:`BFPFormat` in force.
        mantissas: Integer mantissas with padded shape, dtype int32.
        exponents: Per-tile exponents, shape
            ``(rows/block_rows, cols/block_cols)``, dtype int32.
    """

    def __init__(
        self,
        fmt: BFPFormat,
        mantissas: np.ndarray,
        exponents: np.ndarray,
        logical_shape: tuple,
    ):
        self.fmt = fmt
        self.mantissas = mantissas
        self.exponents = exponents
        self._logical_shape = tuple(logical_shape)

    @property
    def shape(self) -> tuple:
        return self._logical_shape

    @property
    def tile_grid(self) -> tuple:
        """Number of tiles along each axis."""
        return self.exponents.shape

    @classmethod
    def from_float(
        cls,
        values: np.ndarray,
        fmt: BFPFormat = BFP8,
        rounding: str = "nearest",
        rng: "np.random.Generator | None" = None,
    ) -> "BlockFloatTensor":
        """Quantize a float array into BFP.

        For each tile the shared exponent is chosen so the tile maximum
        maps into (0.5, 1] before mantissa scaling; mantissas are
        rounded and clipped to the signed range. All-zero tiles use the
        minimum exponent.

        Args:
            values: 2-D float array.
            fmt: Block format.
            rounding: ``"nearest"`` (datapath converters) or
                ``"stochastic"`` — the unbiased rounding HBFP training
                uses on the weight-update path so that sub-LSB updates
                survive in expectation.
            rng: Randomness source for stochastic rounding (a default
                generator is created when omitted).
        """
        x = np.asarray(values, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"BFP tensors are 2-D, got shape {x.shape}")
        if rounding not in ("nearest", "stochastic"):
            raise ValueError(f"unknown rounding mode {rounding!r}")
        rows, cols = x.shape
        br, bc = fmt.block_rows, fmt.block_cols
        pad_rows = _ceil_div(rows, br) * br
        pad_cols = _ceil_div(cols, bc) * bc
        padded = np.zeros((pad_rows, pad_cols), dtype=np.float64)
        padded[:rows, :cols] = x

        # Shape into (tile_r, br, tile_c, bc) to reduce per tile.
        tiles = padded.reshape(pad_rows // br, br, pad_cols // bc, bc)
        max_abs = np.abs(tiles).max(axis=(1, 3))
        with np.errstate(divide="ignore"):
            exponents = np.where(
                max_abs > 0, np.ceil(np.log2(max_abs)), fmt.exponent_min
            ).astype(np.int64)
        # A tile max that is an exact power of two maps to mantissa 1.0,
        # which overflows the signed range; the clip below absorbs it as
        # a one-LSB saturation.
        exponents = np.clip(exponents, fmt.exponent_min, fmt.exponent_max)

        scale = np.exp2(exponents - (fmt.mantissa_bits - 1)).astype(np.float64)
        # All-zero tiles carry the minimum exponent, whose scale can
        # underflow to 0.0; their mantissas are zero regardless, so use
        # a unit scale to keep the division well-defined.
        safe_scale = np.where(max_abs > 0, scale, 1.0)
        scaled = tiles / safe_scale[:, None, :, None]
        if rounding == "stochastic":
            rng = rng or np.random.default_rng()
            floor = np.floor(scaled)
            frac = scaled - floor
            mant = floor + (rng.random(scaled.shape) < frac)
        else:
            mant = np.round(scaled)
        mant = np.clip(mant, fmt.mantissa_min, fmt.mantissa_max)
        mantissas = mant.reshape(pad_rows, pad_cols).astype(np.int32)
        return cls(fmt, mantissas, exponents.astype(np.int32), (rows, cols))

    def to_float(self) -> np.ndarray:
        """Decode back to float32 (logical shape, padding stripped)."""
        br, bc = self.fmt.block_rows, self.fmt.block_cols
        pad_rows, pad_cols = self.mantissas.shape
        tiles = self.mantissas.reshape(pad_rows // br, br, pad_cols // bc, bc)
        scale = np.exp2(
            self.exponents.astype(np.float64) - (self.fmt.mantissa_bits - 1)
        )
        decoded = tiles * scale[:, None, :, None]
        rows, cols = self._logical_shape
        return decoded.reshape(pad_rows, pad_cols)[:rows, :cols].astype(np.float32)

    def storage_bits(self) -> int:
        """Total storage footprint in bits (mantissas + shared exponents)."""
        n_tiles = self.exponents.size
        return (
            self.mantissas.size * self.fmt.mantissa_bits
            + n_tiles * self.fmt.exponent_bits
        )

    def quantization_error(self, reference: np.ndarray) -> float:
        """Max absolute decode error against ``reference``."""
        return float(np.abs(self.to_float() - np.asarray(reference, np.float32)).max())


def quantize_bfp(values: np.ndarray, fmt: BFPFormat = BFP8) -> np.ndarray:
    """Round-trip a float array through BFP (quantize-dequantize)."""
    return BlockFloatTensor.from_float(values, fmt).to_float()


def bfp_matmul(
    a: BlockFloatTensor, b: BlockFloatTensor, accumulator_bits: int = 25
) -> np.ndarray:
    """Multiply two BFP tensors the way Equinox's systolic arrays do.

    Each tile-pair product is an integer GEMM (8-bit multipliers feeding
    ``accumulator_bits``-wide accumulators, saturating) whose scale is
    the sum of the two tile exponents; partial tiles are accumulated
    across the K dimension in float, modeling the fp32/bfloat16
    accumulation after the exponent-synchronizing FIFO (paper §3.2).

    Requires ``a.fmt.block_cols == b.fmt.block_rows`` so tiles align
    along the reduction dimension.

    Returns the float32 product with logical shape (a.rows, b.cols).
    """
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch {a.shape} @ {b.shape}")
    if a.fmt.block_cols != b.fmt.block_rows:
        raise ValueError("tile reduction dimensions must align")
    mant_bits = a.fmt.mantissa_bits
    frac = 2 * (mant_bits - 1)
    sat_hi = 2 ** (accumulator_bits - 1) - 1
    sat_lo = -(2 ** (accumulator_bits - 1))

    br_a, k_blk = a.fmt.block_rows, a.fmt.block_cols
    bc_b = b.fmt.block_cols
    grid_m, grid_k = a.tile_grid
    grid_k2, grid_n = b.tile_grid
    if grid_k != grid_k2:
        raise ValueError("tile grids do not align along K")

    out = np.zeros((grid_m * br_a, grid_n * bc_b), dtype=np.float64)
    a_m = a.mantissas.astype(np.int64)
    b_m = b.mantissas.astype(np.int64)
    for km in range(grid_k):
        a_strip = a_m[:, km * k_blk : (km + 1) * k_blk]
        b_strip = b_m[km * k_blk : (km + 1) * k_blk, :]
        for im in range(grid_m):
            a_tile = a_strip[im * br_a : (im + 1) * br_a]
            prods = a_tile @ b_strip  # integer GEMM across all N tiles
            for jn in range(grid_n):
                tile = prods[:, jn * bc_b : (jn + 1) * bc_b]
                tile = np.clip(tile, sat_lo, sat_hi)
                exp = int(a.exponents[im, km]) + int(b.exponents[km, jn])
                out[
                    im * br_a : (im + 1) * br_a, jn * bc_b : (jn + 1) * bc_b
                ] += tile * (2.0 ** (exp - frac))

    rows, cols = a.shape[0], b.shape[1]
    return out[:rows, :cols].astype(np.float32)
