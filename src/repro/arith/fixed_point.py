"""Plain fixed-point quantization.

The inference-only baseline accelerator (the one Equinox's overheads are
measured against in the synthesis results) uses a static fixed-point
format per tensor. This module provides a simple Q-format quantizer with
saturation, plus helpers to pick a format for a given tensor.
"""

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class FixedPointFormat:
    """A signed fixed-point Q-format.

    Attributes:
        total_bits: Total width including the sign bit.
        frac_bits: Number of fractional bits; may be negative (scaling
            up) or exceed ``total_bits`` (scaling down).
    """

    total_bits: int
    frac_bits: int

    def __post_init__(self) -> None:
        if self.total_bits < 2:
            raise ValueError("fixed-point format needs at least 2 bits")

    @property
    def scale(self) -> float:
        """Value of one LSB."""
        return 2.0 ** -self.frac_bits

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return (2 ** (self.total_bits - 1) - 1) * self.scale

    @property
    def min_value(self) -> float:
        """Most negative representable value."""
        return -(2 ** (self.total_bits - 1)) * self.scale

    @classmethod
    def for_range(cls, max_abs: float, total_bits: int = 8) -> "FixedPointFormat":
        """Choose the format with the most fractional bits covering ``max_abs``.

        Picks the largest f with (2^(total-1) - 1)·2^-f >= max_abs, so
        the positive full-scale code exactly covers the range.
        """
        if max_abs <= 0:
            return cls(total_bits=total_bits, frac_bits=total_bits - 1)
        max_code = 2 ** (total_bits - 1) - 1
        frac_bits = int(np.floor(np.log2(max_code / max_abs)))
        return cls(total_bits=total_bits, frac_bits=frac_bits)


def quantize_fixed_point(
    values: np.ndarray, fmt: FixedPointFormat
) -> np.ndarray:
    """Round ``values`` to ``fmt`` with saturation, returned as float32.

    Rounds to nearest (ties away from zero, matching a hardware
    round-half-up adder) and clamps to the representable range.
    """
    x = np.asarray(values, dtype=np.float64)
    q = np.round(x / fmt.scale) * fmt.scale
    return np.clip(q, fmt.min_value, fmt.max_value).astype(np.float32)


def quantize_to_integers(
    values: np.ndarray, fmt: FixedPointFormat
) -> np.ndarray:
    """Quantize and return the raw integer codes (int32)."""
    x = np.asarray(values, dtype=np.float64)
    codes = np.round(x / fmt.scale)
    lo = -(2 ** (fmt.total_bits - 1))
    hi = 2 ** (fmt.total_bits - 1) - 1
    return np.clip(codes, lo, hi).astype(np.int32)
