"""Encoding-dispatched GEMM.

A single entry point that routes a matrix multiplication through the
functional model of the requested datapath encoding. The training
substrate and the examples use this so that switching an experiment from
fp32 to hbfp8 to bfloat16 is a one-argument change — exactly the
comparison Figure 2 of the paper makes.
"""

import numpy as np

from repro.arith.bfloat16 import to_bfloat16
from repro.arith.fixed_point import FixedPointFormat, quantize_fixed_point
from repro.arith.hbfp import HBFP8, HBFPConfig, hbfp_gemm


def reference_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """fp32 GEMM, the accuracy reference for every encoding."""
    return (
        np.asarray(a, dtype=np.float32) @ np.asarray(b, dtype=np.float32)
    ).astype(np.float32)


def bfloat16_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """GEMM with bfloat16 operands and fp32 accumulation.

    This is the TPU-style reference datapath the paper compares hbfp8
    against: operands are rounded to bfloat16 before the multiply, and
    products accumulate in fp32.
    """
    return reference_gemm(to_bfloat16(a), to_bfloat16(b))


def fixed8_gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """GEMM with per-tensor 8-bit fixed-point operands.

    The inference-only baseline. Per-tensor (not per-tile) scaling makes
    this encoding lose accuracy under the shifting value distributions of
    training — the property that motivates HBFP.
    """
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    fmt_a = FixedPointFormat.for_range(float(np.abs(a).max()), total_bits=8)
    fmt_b = FixedPointFormat.for_range(float(np.abs(b).max()), total_bits=8)
    return reference_gemm(
        quantize_fixed_point(a, fmt_a), quantize_fixed_point(b, fmt_b)
    )


_GEMMS = {
    "fp32": reference_gemm,
    "bfloat16": bfloat16_gemm,
    "fixed8": fixed8_gemm,
}


def gemm(
    a: np.ndarray,
    b: np.ndarray,
    encoding: str = "fp32",
    hbfp_config: HBFPConfig = HBFP8,
    backend: "str | None" = None,
) -> np.ndarray:
    """Compute ``a @ b`` under the named datapath encoding.

    Args:
        a: Left operand, shape (M, K).
        b: Right operand, shape (K, N).
        encoding: One of ``fp32``, ``bfloat16``, ``fixed8``, ``hbfp8``.
        hbfp_config: Block format used when ``encoding == "hbfp8"``.
        backend: Kernel backend override, honored by the ``hbfp8``
            datapath (the other encodings have no kernel pairs).

    Returns:
        The float32 product as computed by that datapath.
    """
    if encoding == "hbfp8":
        return hbfp_gemm(a, b, hbfp_config, backend=backend)
    try:
        fn = _GEMMS[encoding]
    except KeyError:
        raise KeyError(
            f"unknown GEMM encoding {encoding!r}; choose from "
            f"{sorted(_GEMMS) + ['hbfp8']}"
        ) from None
    return fn(a, b)
