"""Hybrid block floating point (HBFP) arithmetic.

HBFP [Drumond et al., NeurIPS'18] performs all GEMMs in block floating
point (dense, fixed-point-like hardware) while keeping everything else —
activations between layers, loss, optimizer state, master weights — in
wider floating point. Equinox's hbfp8 datapath converts GEMM outputs to
bfloat16 for the SIMD unit and back to BFP for the next GEMM (paper
§3.2); this module reproduces exactly that numerical pipeline so the
training substrate exercises the datapath's real arithmetic.
"""

from dataclasses import dataclass, field

import numpy as np

from repro.arith.bfp import BFPFormat, BlockFloatTensor, bfp_matmul
from repro.arith.bfloat16 import to_bfloat16


@dataclass(frozen=True)
class HBFPConfig:
    """Configuration for an HBFP GEMM pipeline.

    Attributes:
        bfp: Block format used for GEMM operands.
        accumulator_bits: Systolic-array accumulator width.
        simd_in_bfloat16: Whether GEMM outputs are rounded to bfloat16
            (as they are on their way to Equinox's SIMD unit).
    """

    bfp: BFPFormat = field(default_factory=BFPFormat)
    accumulator_bits: int = 25
    simd_in_bfloat16: bool = True


#: The paper's hbfp8 operating point: 8-bit mantissas, 12-bit shared
#: exponents, 25-bit accumulators, bfloat16 SIMD.
HBFP8 = HBFPConfig()


def hbfp_gemm(
    a: np.ndarray,
    b: np.ndarray,
    config: HBFPConfig = HBFP8,
    backend: "str | None" = None,
) -> np.ndarray:
    """Compute ``a @ b`` through the HBFP datapath.

    Both operands are quantized to block floating point, multiplied with
    integer tile GEMMs, and the result is rounded to bfloat16 (the SIMD
    hand-off) when the config asks for it. ``backend`` pins the kernel
    backend for all three steps (``None`` = ambient).
    """
    a_fmt = config.bfp
    # The reduction dimension of ``b`` must match ``a``'s tile width.
    b_fmt = BFPFormat(
        mantissa_bits=a_fmt.mantissa_bits,
        exponent_bits=a_fmt.exponent_bits,
        block_rows=a_fmt.block_cols,
        block_cols=a_fmt.block_cols,
    )
    a_bfp = BlockFloatTensor.from_float(a, a_fmt, backend=backend)
    b_bfp = BlockFloatTensor.from_float(b, b_fmt, backend=backend)
    out = bfp_matmul(
        a_bfp, b_bfp, accumulator_bits=config.accumulator_bits, backend=backend
    )
    if config.simd_in_bfloat16:
        out = to_bfloat16(out)
    return out


def hbfp_quantization_noise(
    values: np.ndarray, config: HBFPConfig = HBFP8
) -> float:
    """RMS relative quantization noise of a round trip through BFP.

    Useful to sanity-check that hbfp8 keeps roughly 2 decimal digits of
    per-tile dynamic range, the property that lets SGD converge.
    """
    x = np.asarray(values, dtype=np.float64)
    decoded = BlockFloatTensor.from_float(x, config.bfp).to_float()
    scale = np.abs(x).max()
    if scale == 0:
        return 0.0
    return float(np.sqrt(np.mean((decoded - x) ** 2)) / scale)
