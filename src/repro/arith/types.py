"""Encoding descriptors shared by the functional and analytical models.

An :class:`Encoding` captures everything the rest of the system needs to
know about a datapath numeric format: how wide operands are in the
buffers (which drives SRAM bandwidth and energy), how wide the multiplier
and accumulator are (which drives ALU area and energy in
:mod:`repro.dse.tech`), and whether the format can support training.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class Encoding:
    """A datapath numeric encoding.

    Attributes:
        name: Short identifier, e.g. ``"hbfp8"``.
        operand_bytes: Bytes one scalar operand occupies in on-chip
            buffers. HBFP mantissas are 1 byte; the amortized share of
            the 12-bit block exponent is folded into
            ``exponent_overhead_bytes`` instead so that bandwidth math
            can distinguish the two.
        multiplier_bits: Width of the PE multiplier.
        accumulator_bits: Width of the PE accumulator.
        supports_training: Whether SGD converges at fp32 quality under
            this encoding (per the paper: hbfp8 and bfloat16 do, plain
            fixed point does not).
        block_size: Number of mantissas sharing one exponent, or 1 for
            non-block formats.
        exponent_bits: Width of the (shared) exponent, 0 for pure fixed
            point.
    """

    name: str
    operand_bytes: float
    multiplier_bits: int
    accumulator_bits: int
    supports_training: bool
    block_size: int = 1
    exponent_bits: int = 0

    @property
    def exponent_overhead_bytes(self) -> float:
        """Amortized per-operand exponent storage in bytes."""
        if self.block_size <= 1 or self.exponent_bits == 0:
            return self.exponent_bits / 8.0
        return self.exponent_bits / 8.0 / self.block_size

    @property
    def bytes_per_operand(self) -> float:
        """Total per-operand buffer footprint including exponent share."""
        return self.operand_bytes + self.exponent_overhead_bytes


#: HBFP with 8-bit mantissas sharing a 12-bit exponent per tile and
#: 25-bit fixed-point accumulators (paper §3.2).
HBFP8_ENCODING = Encoding(
    name="hbfp8",
    operand_bytes=1.0,
    multiplier_bits=8,
    accumulator_bits=25,
    supports_training=True,
    block_size=256,
    exponent_bits=12,
)

#: bfloat16 operands with fp32 accumulation (paper §3.2), the reference
#: encoding for custom training accelerators (TPUv2/v3).
BFLOAT16_ENCODING = Encoding(
    name="bfloat16",
    operand_bytes=2.0,
    multiplier_bits=8,  # 8-bit mantissa (incl. implicit bit) datapath
    accumulator_bits=32,
    supports_training=True,
    block_size=1,
    exponent_bits=8,
)

#: Plain 8-bit fixed point, the inference-only baseline Equinox's
#: overheads are measured against (paper §6, synthesis results).
FIXED8_ENCODING = Encoding(
    name="fixed8",
    operand_bytes=1.0,
    multiplier_bits=8,
    accumulator_bits=25,
    supports_training=False,
    block_size=1,
    exponent_bits=0,
)

ENCODINGS = {
    enc.name: enc for enc in (HBFP8_ENCODING, BFLOAT16_ENCODING, FIXED8_ENCODING)
}


def encoding_by_name(name: str) -> Encoding:
    """Look up an encoding by name, raising ``KeyError`` with choices."""
    try:
        return ENCODINGS[name]
    except KeyError:
        raise KeyError(
            f"unknown encoding {name!r}; choose from {sorted(ENCODINGS)}"
        ) from None
