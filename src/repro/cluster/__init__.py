"""Datacenter-scale composition: a fleet of Equinox accelerators.

The paper's methodology assumes distributed synchronous training with a
parameter server that "receives gradients, aggregates them, generates
an updated model, and transfers it to Equinox for the next iteration"
(§5). This package scales that deployment story out: a fleet of
Equinox accelerators, each serving its own inference load, jointly
trains one model data-parallel. Each worker's harvest comes from its
own event-level simulation; the synchronous barrier and the parameter
server's aggregation/broadcast compose them into fleet-level rounds —
valid because workers share no simulated resource other than the
parameter server itself.
"""

from repro.cluster.parameter_server import ParameterServer, SyncRound
from repro.cluster.fleet import EquinoxFleet, FleetReport, WorkerReport

__all__ = [
    "ParameterServer",
    "SyncRound",
    "EquinoxFleet",
    "FleetReport",
    "WorkerReport",
]
