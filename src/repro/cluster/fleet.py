"""A fleet of Equinox accelerators training one model together.

Each worker serves its own inference load (simulated event-level) while
harvesting training; the fleet's synchronous rounds are composed by the
parameter server. The headline question this answers is the paper's
premise at datacenter scale: how many dedicated training accelerators'
worth of throughput does a fleet of busy inference accelerators give
away for free?

Fault tolerance (``repro.faults``): a :class:`FaultPlan` can crash
workers mid-round, slow others down (stragglers), and inject
HBM/MMU/request faults into each worker's own simulation. The fleet
survives by partial aggregation — the round completes over whoever is
left — and by round checkpoints: every finished worker measurement is
recorded in a :class:`RoundCheckpoint`, so a re-run after a crash
resumes without re-simulating the survivors.
"""

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.cluster.parameter_server import ParameterServer, SyncRound
from repro.core.equinox import EquinoxAccelerator
from repro.dse.table1 import equinox_configuration
from repro.faults import (
    FaultCounters,
    FaultInjector,
    FaultPlan,
    WorkerCrashError,
    WorkerFaultSpec,
)
from repro.models.graph import ModelSpec
from repro.models.lstm import deepbench_lstm
from repro.models.training import build_training_plan
from repro.obs.report import RunReport
from repro.serve.router import FleetRouter
from repro.state.checkpoint import CheckpointStore


@dataclass(frozen=True)
class WorkerReport:
    """One worker's steady-state measurement at its load."""

    worker_id: int
    load: float
    training_top_s: float
    inference_top_s: float
    p99_latency_us: float
    iteration_s: float
    #: Median latency (defaulted for checkpoints from older rounds).
    p50_latency_us: float = float("nan")


@dataclass(frozen=True)
class RoundCheckpoint:
    """Completed worker measurements, keyed for safe resumption.

    The checkpoint is the fleet's unit of crash recovery: every worker
    that finishes its measurement is recorded here, so a round that
    loses a worker (or the whole driver) can be re-run reusing the
    survivors' results bit-for-bit instead of re-simulating them.
    ``seed`` and ``loads`` key the checkpoint to one measurement
    campaign — resuming under different inputs would silently mix runs,
    so :meth:`EquinoxFleet.train` refuses it.
    """

    seed: int
    loads: Tuple[float, ...]
    reports: Tuple[WorkerReport, ...] = ()

    def report_for(self, worker_id: int) -> Optional[WorkerReport]:
        for report in self.reports:
            if report.worker_id == worker_id:
                return report
        return None

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract): the whole checkpoint is
        plain measured data, so its state is its dict form."""
        return {
            "seed": self.seed,
            "loads": list(self.loads),
            "reports": [asdict(report) for report in self.reports],
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "RoundCheckpoint":
        return cls(
            seed=int(state["seed"]),
            loads=tuple(float(load) for load in state["loads"]),
            reports=tuple(
                WorkerReport(**report) for report in state["reports"]
            ),
        )


@dataclass(frozen=True)
class FleetReport:
    """Fleet-level synchronous-training summary."""

    workers: List[WorkerReport]
    round: SyncRound
    samples_per_s: float
    fleet_training_top_s: float
    dedicated_top_s: float
    faults: FaultCounters = field(default_factory=FaultCounters)

    @property
    def dedicated_equivalents(self) -> float:
        """How many dedicated training accelerators the fleet's free
        harvest is worth."""
        return self.fleet_training_top_s / self.dedicated_top_s

    @property
    def scaling_efficiency(self) -> float:
        """Fleet throughput relative to the sum of worker harvests
        (losses come from the barrier and the parameter server)."""
        if not self.workers:
            raise ValueError(
                "scaling efficiency is undefined for a report with no "
                "surviving workers"
            )
        independent = sum(w.training_top_s for w in self.workers)
        if independent <= 0:
            raise ValueError(
                "scaling efficiency is undefined when no worker harvested "
                "any training throughput (sum of worker harvests is "
                f"{independent})"
            )
        return self.fleet_training_top_s / independent


class EquinoxFleet:
    """N Equinox accelerators + one parameter server.

    Args:
        size: Number of accelerators.
        latency_class: Design point every worker uses.
        model: Inference/training model (default: the DeepBench LSTM).
        training_batch: Per-worker minibatch.
        server: Parameter-server model.
        fault_plan: Chaos scenario. Worker-level faults (crash,
            straggler) apply at the fleet layer; HBM/MMU/request faults
            are forwarded into every worker's own simulation on
            decorrelated substreams.
        round_timeout_s: Synchronous-round barrier timeout; stragglers
            slower than this are excluded and the round aggregates
            partially.
        min_workers: Fewest workers a round may aggregate before the
            fleet refuses to train (crash + straggler losses combined).
    """

    #: Offset mixed into each worker's forwarded fault-plan seed so the
    #: per-worker HBM/MMU/request fault streams are decorrelated from
    #: each other (and from the fleet-level plan itself).
    _WORKER_SEED_STRIDE = 7919  # a prime, nothing more

    def __init__(
        self,
        size: int,
        latency_class: str = "500us",
        model: Optional[ModelSpec] = None,
        training_batch: int = 128,
        server: Optional[ParameterServer] = None,
        fault_plan: Optional[FaultPlan] = None,
        round_timeout_s: Optional[float] = None,
        min_workers: int = 1,
    ):
        if size < 1:
            raise ValueError("a fleet needs at least one worker")
        if min_workers < 1 or min_workers > size:
            raise ValueError(
                f"min_workers must be in [1, {size}], got {min_workers}"
            )
        if round_timeout_s is not None and round_timeout_s <= 0:
            raise ValueError(
                f"round_timeout_s must be positive, got {round_timeout_s}"
            )
        self.size = size
        self.latency_class = latency_class
        self.model = model or deepbench_lstm()
        self.training_batch = training_batch
        self.server = server or ParameterServer()
        self.config = equinox_configuration(latency_class)
        self.plan = build_training_plan(
            self.model, self.config, batch=training_batch
        )
        self.fault_plan = fault_plan
        self.round_timeout_s = round_timeout_s
        self.min_workers = min_workers
        self.fault_counters = FaultCounters()
        self.fault_injector = (
            FaultInjector(fault_plan, self.fault_counters)
            if fault_plan is not None
            else None
        )
        #: Updated as workers finish measuring; pass back via
        #: ``train(..., resume_from=...)`` to recover a crashed round.
        self.last_checkpoint: Optional[RoundCheckpoint] = None
        #: Serving-plane view of this fleet, built on demand by
        #: :meth:`serving_router` (``repro.serve``).
        self.router: Optional[FleetRouter] = None

    def _worker_fault_plan(self, worker_id: int) -> Optional[FaultPlan]:
        """The plan forwarded into one worker's accelerator simulation.

        Worker faults stay at the fleet layer (the accelerator has no
        notion of its fleet identity); the component fault streams are
        re-seeded per worker so fleets don't inject identical fault
        sequences into every accelerator.
        """
        if self.fault_plan is None:
            return None
        hw_plan = replace(
            self.fault_plan,
            seed=self.fault_plan.seed
            + self._WORKER_SEED_STRIDE * (worker_id + 1),
            workers=WorkerFaultSpec(),
        )
        return hw_plan if hw_plan.enabled else None

    def _measure_worker(
        self, worker_id: int, load: float, batches: int, seed: int
    ) -> WorkerReport:
        if self.fault_injector is not None:
            # The crash fires before the measurement lands, as a real
            # mid-round node loss would: whatever the worker computed
            # never reaches the parameter server.
            self.fault_injector.check_worker_crash(worker_id)
        accelerator = EquinoxAccelerator(
            self.config,
            self.model,
            training_model=self.model,
            training_batch=self.training_batch,
            fault_plan=self._worker_fault_plan(worker_id),
        )
        report = accelerator.run(
            load=load,
            requests=max(400, batches * accelerator.batch_slots),
            seed=seed + worker_id,
        )
        self.fault_counters.merge(report.faults)
        slowdown = (
            self.fault_injector.worker_slowdown(worker_id)
            if self.fault_injector is not None
            else 1.0
        )
        ops = self.plan.ops_per_iteration
        # A straggler computes the same iteration on a slower clock:
        # its harvested throughput shrinks by the factor its iteration
        # time grows.
        tput = report.training_top_s / slowdown * 1e12
        iteration_s = ops / tput if tput > 0 else float("inf")
        return WorkerReport(
            worker_id=worker_id,
            load=load,
            training_top_s=report.training_top_s / slowdown,
            inference_top_s=report.inference_top_s,
            p99_latency_us=report.p99_latency_us,
            iteration_s=iteration_s,
            p50_latency_us=report.p50_latency_us,
        )

    def train(
        self,
        loads: Sequence[float],
        batches: int = 8,
        seed: int = 0,
        local_steps: int = 1,
        resume_from: Optional[RoundCheckpoint] = None,
        checkpoint_store: Optional["CheckpointStore"] = None,
    ) -> FleetReport:
        """Measure every worker at its load and compose the rounds.

        Args:
            loads: Per-worker inference load (length must equal the
                fleet size).
            batches: Measurement batches per worker simulation.
            seed: Base arrival seed (workers are decorrelated).
            local_steps: Iterations each worker accumulates gradients
                locally before a synchronization round — the standard
                lever against a communication-bound parameter server.
            resume_from: A prior round's checkpoint; workers already
                measured there are reused instead of re-simulated
                (counted ``round_restores``). The checkpoint must come
                from the same ``seed`` and ``loads``.
            checkpoint_store: Crash-consistent persistence
                (:class:`repro.state.CheckpointStore`): every completed
                worker measurement is atomically written under the
                ``fleet`` kind, and — when ``resume_from`` is not given
                — a stored checkpoint matching this ``seed``/``loads``
                is picked up automatically, so a killed ``train`` call
                re-run with the same store resumes where it died.

        Crashed workers (per the fault plan) drop out of the round; the
        survivors aggregate partially as long as ``min_workers`` of
        them remain. Every completed measurement lands in
        ``self.last_checkpoint``.
        """
        if len(loads) != self.size:
            raise ValueError(
                f"need {self.size} loads, got {len(loads)}"
            )
        if local_steps < 1:
            raise ValueError("local_steps must be positive")
        loads_key = tuple(float(load) for load in loads)
        if resume_from is None and checkpoint_store is not None:
            stored = checkpoint_store.load("fleet")
            if stored is not None:
                candidate = RoundCheckpoint.from_state(stored["state"])
                # A stored checkpoint from a different campaign is not
                # an error — it is simply not resumable here.
                if candidate.seed == seed and candidate.loads == loads_key:
                    resume_from = candidate
        if resume_from is not None:
            if resume_from.seed != seed or resume_from.loads != loads_key:
                raise ValueError(
                    "checkpoint was taken under different seed/loads; "
                    "resuming would mix two measurement campaigns"
                )
            if resume_from.reports:
                self.fault_counters.round_restores += 1

        workers: List[WorkerReport] = []
        crashed: List[int] = []
        for worker_id, load in enumerate(loads):
            restored = (
                resume_from.report_for(worker_id)
                if resume_from is not None
                else None
            )
            if restored is not None:
                workers.append(restored)
            else:
                try:
                    workers.append(
                        self._measure_worker(worker_id, load, batches, seed)
                    )
                except WorkerCrashError as crash:
                    crashed.append(crash.worker_id)
            self.last_checkpoint = RoundCheckpoint(
                seed=seed, loads=loads_key, reports=tuple(workers)
            )
            if checkpoint_store is not None:
                checkpoint_store.save(
                    "fleet", self.last_checkpoint.to_state(),
                    step=worker_id + 1,
                )
        if len(workers) < self.min_workers:
            raise ValueError(
                f"only {len(workers)} worker(s) survived the round "
                f"(crashed: {crashed}), below min_workers={self.min_workers}"
            )

        sync = self.server.round(
            [w.iteration_s * local_steps for w in workers],
            self.model.weight_count,
            timeout_s=(
                self.round_timeout_s * local_steps
                if self.round_timeout_s is not None
                else None
            ),
            min_workers=self.min_workers,
        )
        self.fault_counters.stragglers_dropped += sync.workers_dropped
        if sync.workers_dropped > 0 or crashed:
            self.fault_counters.rounds_partial += 1

        # Only aggregated workers' samples and ops count: crashed
        # workers never delivered gradients, timed-out stragglers were
        # left behind at the barrier.
        samples_per_round = (
            sync.workers_aggregated * self.training_batch * local_steps
        )
        samples_per_s = (
            samples_per_round / sync.total_s if sync.total_s > 0 else 0.0
        )
        fleet_ops_per_round = (
            sync.workers_aggregated * self.plan.ops_per_iteration * local_steps
        )
        fleet_top_s = fleet_ops_per_round / sync.total_s / 1e12
        return FleetReport(
            workers=workers,
            round=sync,
            samples_per_s=samples_per_s,
            fleet_training_top_s=fleet_top_s,
            dedicated_top_s=self.plan.dedicated_throughput_top_s(),
            faults=self.fault_counters.snapshot(),
        )

    def serving_router(
        self,
        sim,
        tenants,
        seed: int = 0,
        admission=None,
        max_inflight: int = 2,
        affinity_size: Optional[int] = None,
    ) -> FleetRouter:
        """Build the serving-plane router over this fleet's workers.

        One :class:`repro.serve.router.ChipServer` per worker,
        calibrated from this fleet's own design point (a probe
        accelerator supplies batch slots and service time) and wired to
        the fleet's fault plan and counters — the same worker ids that
        crash out of training rounds die as serving chips. The router
        is kept on ``self.router`` so fleet snapshots carry it.

        Args:
            sim: The :class:`repro.sim.engine.Simulator` to run on.
            tenants: Per-tenant :class:`repro.core.dispatcher.
                TenantShare` budgets (see :meth:`repro.serve.classes.
                ServiceClass.share`).
            seed: Placement/kill-time seed.
            admission: Fleet-wide :class:`repro.faults.admission.
                AdmissionControl` backstop.
            max_inflight: Batches each chip overlaps in service.
            affinity_size: Tenant affinity-arc length (default: half
                the fleet).
        """
        probe = EquinoxAccelerator(self.config, self.model)
        self.router = FleetRouter(
            sim,
            tenants,
            fleet_size=self.size,
            batch_slots=probe.batch_slots,
            batch_service_cycles=probe.batch_service_cycles(),
            seed=seed,
            admission=admission,
            fault_plan=self.fault_plan,
            counters=self.fault_counters,
            max_inflight=max_inflight,
            affinity_size=affinity_size,
        )
        return self.router

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract): the fault tallies, the
        injector's stream positions, the round checkpoint, and — when
        built — the serving router. The sizing/model/server attributes
        are constructor config."""
        return {
            "fault_counters": self.fault_counters.to_state(),
            "fault_injector": (
                self.fault_injector.to_state()
                if self.fault_injector is not None else None
            ),
            "last_checkpoint": (
                self.last_checkpoint.to_state()
                if self.last_checkpoint is not None else None
            ),
            "router": (
                self.router.to_state()
                if self.router is not None else None
            ),
        }

    def from_state(self, state: Dict[str, Any]) -> None:
        """Restore onto a fleet constructed with identical config."""
        self.fault_counters.from_state(state["fault_counters"])
        if state["fault_injector"] is not None:
            if self.fault_injector is None:
                raise ValueError(
                    "snapshot carries fault-injector state but this "
                    "fleet has no fault plan"
                )
            self.fault_injector.from_state(state["fault_injector"])
        self.last_checkpoint = (
            RoundCheckpoint.from_state(state["last_checkpoint"])
            if state["last_checkpoint"] is not None else None
        )
        # Older snapshots predate the serving plane; absent = not built.
        router_state = state.get("router")
        if router_state is not None:
            if self.router is None:
                raise ValueError(
                    "snapshot carries serving-router state but this "
                    "fleet has no router; call serving_router() with "
                    "the original tenants first"
                )
            self.router.from_state(router_state)

    def run_report(self, fleet_report: FleetReport, name: str) -> RunReport:
        """Package one fleet round as the structured JSON artifact.

        The fleet's headline latency is its *worst* worker (a
        synchronous round is only as good as its slowest member);
        per-worker figures land under ``metrics``.
        """

        def _worst(values: List[float]) -> Optional[float]:
            measured = [v for v in values if v == v]  # drop NaN
            return max(measured) if measured else None

        workers = fleet_report.workers
        faults = fleet_report.faults.as_dict()
        per_worker = {
            f"worker_{w.worker_id}": {
                "load": w.load,
                "training_top_s": w.training_top_s,
                "inference_top_s": w.inference_top_s,
                "p50_latency_us": w.p50_latency_us,
                "p99_latency_us": w.p99_latency_us,
                "iteration_s": w.iteration_s,
            }
            for w in workers
        }
        return RunReport(
            name=name,
            kind="fleet",
            config={
                "size": self.size,
                "latency_class": self.latency_class,
                "training_batch": self.training_batch,
                "min_workers": self.min_workers,
            },
            latency_us={
                "p50": _worst([w.p50_latency_us for w in workers]),
                "p99": _worst([w.p99_latency_us for w in workers]),
            },
            throughput_top_s={
                "inference": sum(w.inference_top_s for w in workers),
                "training": fleet_report.fleet_training_top_s,
            },
            faults={key: float(faults[key]) for key in sorted(faults)},
            metrics={
                "samples_per_s": fleet_report.samples_per_s,
                "dedicated_top_s": fleet_report.dedicated_top_s,
                "dedicated_equivalents": fleet_report.dedicated_equivalents,
                "workers_aggregated": fleet_report.round.workers_aggregated,
                "workers": per_worker,
            },
        )
