"""A fleet of Equinox accelerators training one model together.

Each worker serves its own inference load (simulated event-level) while
harvesting training; the fleet's synchronous rounds are composed by the
parameter server. The headline question this answers is the paper's
premise at datacenter scale: how many dedicated training accelerators'
worth of throughput does a fleet of busy inference accelerators give
away for free?
"""

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.cluster.parameter_server import ParameterServer, SyncRound
from repro.core.equinox import EquinoxAccelerator
from repro.dse.table1 import equinox_configuration
from repro.models.graph import ModelSpec
from repro.models.lstm import deepbench_lstm
from repro.models.training import build_training_plan


@dataclass(frozen=True)
class WorkerReport:
    """One worker's steady-state measurement at its load."""

    worker_id: int
    load: float
    training_top_s: float
    inference_top_s: float
    p99_latency_us: float
    iteration_s: float


@dataclass(frozen=True)
class FleetReport:
    """Fleet-level synchronous-training summary."""

    workers: List[WorkerReport]
    round: SyncRound
    samples_per_s: float
    fleet_training_top_s: float
    dedicated_top_s: float

    @property
    def dedicated_equivalents(self) -> float:
        """How many dedicated training accelerators the fleet's free
        harvest is worth."""
        return self.fleet_training_top_s / self.dedicated_top_s

    @property
    def scaling_efficiency(self) -> float:
        """Fleet throughput relative to the sum of worker harvests
        (losses come from the barrier and the parameter server)."""
        independent = sum(w.training_top_s for w in self.workers)
        if independent <= 0:
            return 0.0
        return self.fleet_training_top_s / independent


class EquinoxFleet:
    """N Equinox accelerators + one parameter server.

    Args:
        size: Number of accelerators.
        latency_class: Design point every worker uses.
        model: Inference/training model (default: the DeepBench LSTM).
        training_batch: Per-worker minibatch.
        server: Parameter-server model.
    """

    def __init__(
        self,
        size: int,
        latency_class: str = "500us",
        model: Optional[ModelSpec] = None,
        training_batch: int = 128,
        server: Optional[ParameterServer] = None,
    ):
        if size < 1:
            raise ValueError("a fleet needs at least one worker")
        self.size = size
        self.latency_class = latency_class
        self.model = model or deepbench_lstm()
        self.training_batch = training_batch
        self.server = server or ParameterServer()
        self.config = equinox_configuration(latency_class)
        self.plan = build_training_plan(
            self.model, self.config, batch=training_batch
        )

    def _measure_worker(
        self, worker_id: int, load: float, batches: int, seed: int
    ) -> WorkerReport:
        accelerator = EquinoxAccelerator(
            self.config,
            self.model,
            training_model=self.model,
            training_batch=self.training_batch,
        )
        report = accelerator.run(
            load=load,
            requests=max(400, batches * accelerator.batch_slots),
            seed=seed + worker_id,
        )
        ops = self.plan.ops_per_iteration
        tput = report.training_top_s * 1e12
        iteration_s = ops / tput if tput > 0 else float("inf")
        return WorkerReport(
            worker_id=worker_id,
            load=load,
            training_top_s=report.training_top_s,
            inference_top_s=report.inference_top_s,
            p99_latency_us=report.p99_latency_us,
            iteration_s=iteration_s,
        )

    def train(
        self,
        loads: Sequence[float],
        batches: int = 8,
        seed: int = 0,
        local_steps: int = 1,
    ) -> FleetReport:
        """Measure every worker at its load and compose the rounds.

        Args:
            loads: Per-worker inference load (length must equal the
                fleet size).
            batches: Measurement batches per worker simulation.
            seed: Base arrival seed (workers are decorrelated).
            local_steps: Iterations each worker accumulates gradients
                locally before a synchronization round — the standard
                lever against a communication-bound parameter server.
        """
        if len(loads) != self.size:
            raise ValueError(
                f"need {self.size} loads, got {len(loads)}"
            )
        if local_steps < 1:
            raise ValueError("local_steps must be positive")
        workers = [
            self._measure_worker(i, load, batches, seed)
            for i, load in enumerate(loads)
        ]
        sync = self.server.round(
            [w.iteration_s * local_steps for w in workers],
            self.model.weight_count,
        )
        samples_per_round = self.size * self.training_batch * local_steps
        samples_per_s = (
            samples_per_round / sync.total_s if sync.total_s > 0 else 0.0
        )
        fleet_ops_per_round = (
            self.size * self.plan.ops_per_iteration * local_steps
        )
        fleet_top_s = fleet_ops_per_round / sync.total_s / 1e12
        return FleetReport(
            workers=workers,
            round=sync,
            samples_per_s=samples_per_s,
            fleet_training_top_s=fleet_top_s,
            dedicated_top_s=self.plan.dedicated_throughput_top_s(),
        )
