"""Parameter server for synchronous data-parallel training."""

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class SyncRound:
    """Timing of one synchronous round.

    Attributes:
        compute_s: The barrier: the slowest worker's iteration time.
        gather_s: Gradient upload (all workers, shared ingress).
        update_s: Server-side aggregation and optimizer step.
        broadcast_s: Fresh-model download to every worker.
    """

    compute_s: float
    gather_s: float
    update_s: float
    broadcast_s: float

    @property
    def total_s(self) -> float:
        return self.compute_s + self.gather_s + self.update_s + self.broadcast_s

    @property
    def communication_fraction(self) -> float:
        comm = self.gather_s + self.update_s + self.broadcast_s
        return comm / self.total_s if self.total_s > 0 else 0.0


class ParameterServer:
    """A bandwidth/latency model of the parameter server.

    Gradients arrive over a shared ingress link; the server applies the
    update at a fixed rate per weight and broadcasts the fresh model
    over a shared egress link (workers download concurrently up to the
    egress bandwidth).

    Attributes:
        network_bytes_per_s: Ingress/egress bandwidth (e.g. 100 Gb/s).
        update_ops_per_s: Server-side update throughput in weights/s.
        gradient_bytes_per_weight: Wire format of a gradient (2 for
            bfloat16 aggregation).
        model_bytes_per_weight: Wire format of the broadcast model.
    """

    def __init__(
        self,
        network_bytes_per_s: float = 12.5e9,  # 100 Gb/s
        update_ops_per_s: float = 5e10,
        gradient_bytes_per_weight: float = 2.0,
        model_bytes_per_weight: float = 2.0,
    ):
        if network_bytes_per_s <= 0 or update_ops_per_s <= 0:
            raise ValueError("bandwidths must be positive")
        self.network_bytes_per_s = network_bytes_per_s
        self.update_ops_per_s = update_ops_per_s
        self.gradient_bytes_per_weight = gradient_bytes_per_weight
        self.model_bytes_per_weight = model_bytes_per_weight

    def round(
        self, worker_iteration_s: Sequence[float], model_weights: int
    ) -> SyncRound:
        """Compose one synchronous round from per-worker iteration
        times and the model size."""
        if not worker_iteration_s:
            raise ValueError("need at least one worker")
        if model_weights < 1:
            raise ValueError("model must have weights")
        workers = len(worker_iteration_s)
        gather = (
            workers * model_weights * self.gradient_bytes_per_weight
            / self.network_bytes_per_s
        )
        update = model_weights * workers / self.update_ops_per_s
        broadcast = (
            workers * model_weights * self.model_bytes_per_weight
            / self.network_bytes_per_s
        )
        return SyncRound(
            compute_s=max(worker_iteration_s),
            gather_s=gather,
            update_s=update,
            broadcast_s=broadcast,
        )
