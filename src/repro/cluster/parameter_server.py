"""Parameter server for synchronous data-parallel training.

Straggler tolerance: a synchronous round normally waits on its slowest
worker (the barrier). With a ``timeout_s``, the server instead closes
the barrier at the timeout and aggregates *partially* over the workers
that made it — the standard backup-worker/partial-aggregation recipe —
so one straggling accelerator cannot stall the whole fleet. The
excluded workers' gradients are simply absent from the round (their
samples don't count either); ``min_workers`` bounds how much loss the
round tolerates before it refuses to proceed.
"""

import math
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence


@dataclass(frozen=True)
class SyncRound:
    """Timing of one synchronous round.

    Attributes:
        compute_s: The barrier: the slowest *aggregated* worker's
            iteration time (the round timeout, if any worker was
            excluded by it).
        gather_s: Gradient upload (aggregated workers, shared ingress).
        update_s: Server-side aggregation and optimizer step.
        broadcast_s: Fresh-model download to every surviving worker.
        workers_aggregated: Workers whose gradients made the round.
        workers_dropped: Stragglers excluded by the round timeout.
    """

    compute_s: float
    gather_s: float
    update_s: float
    broadcast_s: float
    workers_aggregated: int = 1
    workers_dropped: int = 0

    @property
    def total_s(self) -> float:
        return self.compute_s + self.gather_s + self.update_s + self.broadcast_s

    @property
    def is_partial(self) -> bool:
        """Whether the round aggregated fewer workers than it started."""
        return self.workers_dropped > 0

    @property
    def communication_fraction(self) -> float:
        comm = self.gather_s + self.update_s + self.broadcast_s
        return comm / self.total_s if self.total_s > 0 else 0.0


class ParameterServer:
    """A bandwidth/latency model of the parameter server.

    Gradients arrive over a shared ingress link; the server applies the
    update at a fixed rate per weight and broadcasts the fresh model
    over a shared egress link (workers download concurrently up to the
    egress bandwidth).

    Attributes:
        network_bytes_per_s: Ingress/egress bandwidth (e.g. 100 Gb/s).
        update_ops_per_s: Server-side update throughput in weights/s.
        gradient_bytes_per_weight: Wire format of a gradient (2 for
            bfloat16 aggregation).
        model_bytes_per_weight: Wire format of the broadcast model.
    """

    def __init__(
        self,
        network_bytes_per_s: float = 12.5e9,  # 100 Gb/s
        update_ops_per_s: float = 5e10,
        gradient_bytes_per_weight: float = 2.0,
        model_bytes_per_weight: float = 2.0,
    ):
        if network_bytes_per_s <= 0 or update_ops_per_s <= 0:
            raise ValueError("bandwidths must be positive")
        self.network_bytes_per_s = network_bytes_per_s
        self.update_ops_per_s = update_ops_per_s
        self.gradient_bytes_per_weight = gradient_bytes_per_weight
        self.model_bytes_per_weight = model_bytes_per_weight

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract): the server is a pure
        bandwidth/latency model — its state *is* its configuration."""
        return {
            "network_bytes_per_s": self.network_bytes_per_s,
            "update_ops_per_s": self.update_ops_per_s,
            "gradient_bytes_per_weight": self.gradient_bytes_per_weight,
            "model_bytes_per_weight": self.model_bytes_per_weight,
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "ParameterServer":
        return cls(**{key: float(value) for key, value in state.items()})

    def round(
        self,
        worker_iteration_s: Sequence[float],
        model_weights: int,
        timeout_s: Optional[float] = None,
        min_workers: int = 1,
    ) -> SyncRound:
        """Compose one synchronous round from per-worker iteration
        times and the model size.

        Args:
            worker_iteration_s: Each participating worker's local
                iteration (or accumulated local-steps) time. Must be
                positive and finite — a crashed worker shows up as
                ``inf`` upstream and must be excluded *before* the
                round, not silently averaged into it.
            model_weights: Gradient/model size in weights.
            timeout_s: Barrier timeout; workers slower than this are
                dropped from the round and the survivors aggregate
                partially. ``None`` waits for everyone.
            min_workers: Fewest aggregated workers the round tolerates.
        """
        if not worker_iteration_s:
            raise ValueError(
                "cannot compose a synchronous round with zero workers: "
                "pass at least one worker iteration time"
            )
        for index, iteration in enumerate(worker_iteration_s):
            if not math.isfinite(iteration) or iteration <= 0:
                raise ValueError(
                    f"worker {index} iteration time must be positive and "
                    f"finite, got {iteration!r} — a worker that made no "
                    "training progress (e.g. crashed) must be excluded "
                    "from the round, not aggregated"
                )
        if model_weights < 1:
            raise ValueError(
                f"model must have at least one weight, got {model_weights}"
            )
        if min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {min_workers}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")

        if timeout_s is None:
            aggregated = list(worker_iteration_s)
            dropped = 0
        else:
            aggregated = [t for t in worker_iteration_s if t <= timeout_s]
            dropped = len(worker_iteration_s) - len(aggregated)
        if len(aggregated) < min_workers:
            raise ValueError(
                f"round timeout {timeout_s}s leaves "
                f"{len(aggregated)} worker(s), below min_workers="
                f"{min_workers}: the fleet is too degraded to make "
                "training progress"
            )

        workers = len(aggregated)
        # The barrier closes at the timeout when stragglers were left
        # behind (the server waited that long to declare them late).
        compute = max(aggregated) if dropped == 0 else float(timeout_s)
        gather = (
            workers * model_weights * self.gradient_bytes_per_weight
            / self.network_bytes_per_s
        )
        update = model_weights * workers / self.update_ops_per_s
        broadcast = (
            workers * model_weights * self.model_bytes_per_weight
            / self.network_bytes_per_s
        )
        return SyncRound(
            compute_s=compute,
            gather_s=gather,
            update_s=update,
            broadcast_s=broadcast,
            workers_aggregated=workers,
            workers_dropped=dropped,
        )
