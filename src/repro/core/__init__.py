"""Equinox core: the front-end that piggybacks training on inference.

This package implements the paper's §3 mechanisms:

* per-service hardware contexts (request queue + instruction counter +
  exclusive buffer space) so inference and training services co-reside
  (:mod:`repro.core.contexts`);
* static and adaptive batch formation with the installation-time
  timeout threshold (:mod:`repro.core.batching`, Figure 11);
* the instruction-controller scheduling policies — hardware priority
  with the inference-queue spike guard, fair share, inference-only, and
  a software scheduler model (:mod:`repro.core.scheduler`, Figure 10);
* the request and instruction dispatchers driving the datapath models
  (:mod:`repro.core.dispatcher`);
* the :class:`~repro.core.equinox.EquinoxAccelerator` facade that wires
  everything to a simulator and runs load experiments.
"""

from repro.core.requests import InferenceRequest, Batch, TrainingIterationRecord
from repro.core.batching import (
    BatchingPolicy,
    StaticBatching,
    AdaptiveBatching,
)
from repro.core.scheduler import (
    SchedulingPolicy,
    PriorityScheduler,
    FairScheduler,
    InferenceOnlyScheduler,
    SoftwareScheduler,
    make_scheduler,
)
from repro.core.contexts import ServiceContext
from repro.core.dispatcher import RequestDispatcher, InferenceEngine, TrainingEngine
from repro.core.equinox import EquinoxAccelerator, SimulationReport

__all__ = [
    "InferenceRequest",
    "Batch",
    "TrainingIterationRecord",
    "BatchingPolicy",
    "StaticBatching",
    "AdaptiveBatching",
    "SchedulingPolicy",
    "PriorityScheduler",
    "FairScheduler",
    "InferenceOnlyScheduler",
    "SoftwareScheduler",
    "make_scheduler",
    "ServiceContext",
    "RequestDispatcher",
    "InferenceEngine",
    "TrainingEngine",
    "EquinoxAccelerator",
    "SimulationReport",
]
