"""Batch-formation policies (paper §3.1, evaluated in Figure 11).

The request controller gathers arriving requests in a batch formation
buffer. Under *static* batching it waits for a full batch, which at low
load lets formation time dominate latency. Under *adaptive* batching it
issues an incomplete batch — padded with dummy requests whose results
are disposed — once the oldest request has waited a threshold defined
at installation time (the paper sweeps 2×–10× the service time and
settles on 2×).
"""

from typing import Any, Dict, Optional


class BatchingPolicy:
    """Decides when the formation buffer should issue a batch."""

    def set_degraded(self, degraded: bool) -> None:
        """Degraded-mode hook (SLO guard): policies that can trade
        formation efficiency for latency override this; the default is
        inert so static batching keeps its contract."""

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract): policies are config
        except for the degraded flag; stateless ones return ``{}``."""
        return {}

    def from_state(self, state: Dict[str, Any]) -> None:
        """Inverse of :meth:`to_state` (no-op for stateless policies)."""

    def should_issue(self, queued: int, oldest_wait_cycles: float) -> bool:
        """Whether to issue right now given buffer state."""
        raise NotImplementedError

    def deadline_cycles(self, oldest_arrival_cycle: float) -> Optional[float]:
        """Absolute cycle by which an incomplete batch must issue, or
        None if the policy never forces issue."""
        raise NotImplementedError

    @property
    def batch_slots(self) -> int:
        raise NotImplementedError


class StaticBatching(BatchingPolicy):
    """Issue only complete batches.

    Attributes:
        slots: Batch size (the accelerator's ``n`` for vector models).
    """

    def __init__(self, slots: int):
        if slots < 1:
            raise ValueError("batch size must be positive")
        self.slots = slots

    @property
    def batch_slots(self) -> int:
        return self.slots

    def should_issue(self, queued: int, oldest_wait_cycles: float) -> bool:
        return queued >= self.slots

    def deadline_cycles(self, oldest_arrival_cycle: float) -> Optional[float]:
        return None

    def __repr__(self) -> str:
        return f"StaticBatching(slots={self.slots})"


class AdaptiveBatching(BatchingPolicy):
    """Issue a full batch immediately, or an incomplete one at timeout.

    Attributes:
        slots: Batch size.
        timeout_cycles: Maximum formation wait for the oldest request
            before the batch issues padded with dummies. The paper
            expresses this as a multiple of the workload service time
            ("X× service time", Figure 11b/c) and picks 2×.
    """

    #: Formation-timeout divisor while the SLO guard holds the policy
    #: in degraded mode: batches shrink (issue earlier, more padding)
    #: so queued requests stop paying full formation waits on top of
    #: fault-induced queueing.
    DEGRADED_TIMEOUT_DIVISOR = 2.0

    def __init__(self, slots: int, timeout_cycles: float):
        if slots < 1:
            raise ValueError("batch size must be positive")
        if timeout_cycles <= 0:
            raise ValueError("timeout must be positive")
        self.slots = slots
        self.timeout_cycles = timeout_cycles
        self.degraded = False

    def set_degraded(self, degraded: bool) -> None:
        self.degraded = degraded

    @property
    def effective_timeout_cycles(self) -> float:
        if self.degraded:
            return self.timeout_cycles / self.DEGRADED_TIMEOUT_DIVISOR
        return self.timeout_cycles

    @property
    def batch_slots(self) -> int:
        return self.slots

    def should_issue(self, queued: int, oldest_wait_cycles: float) -> bool:
        if queued >= self.slots:
            return True
        return queued > 0 and oldest_wait_cycles >= self.effective_timeout_cycles

    def deadline_cycles(self, oldest_arrival_cycle: float) -> Optional[float]:
        return oldest_arrival_cycle + self.effective_timeout_cycles

    def to_state(self) -> Dict[str, Any]:
        return {"degraded": self.degraded}

    def from_state(self, state: Dict[str, Any]) -> None:
        self.degraded = bool(state["degraded"])

    def __repr__(self) -> str:
        return (
            f"AdaptiveBatching(slots={self.slots}, "
            f"timeout_cycles={self.timeout_cycles:.0f})"
        )


class PullBatching(BatchingPolicy):
    """Never self-issues; batches form only on explicit demand.

    The fleet chip servers (``repro.serve.router``) pull a batch via
    :meth:`repro.core.dispatcher.RequestDispatcher.form_one` exactly
    when a service slot frees up. Eager formation would defeat the
    bounded admission queue: formed batches are no longer "queued
    requests", so a saturating tenant could convert its whole flash
    crowd into an unbounded backlog of formed batches. Keeping requests
    in the formation buffer until the datapath can actually take them
    preserves both the admission bound and the fair-share pick order.

    Attributes:
        slots: Batch size.
    """

    def __init__(self, slots: int):
        if slots < 1:
            raise ValueError("batch size must be positive")
        self.slots = slots

    @property
    def batch_slots(self) -> int:
        return self.slots

    def should_issue(self, queued: int, oldest_wait_cycles: float) -> bool:
        return False

    def deadline_cycles(self, oldest_arrival_cycle: float) -> Optional[float]:
        return None

    def __repr__(self) -> str:
        return f"PullBatching(slots={self.slots})"


def make_batching(
    kind: str, slots: int, timeout_cycles: float = 0.0
) -> BatchingPolicy:
    """Factory used by the accelerator facade.

    Args:
        kind: ``"static"``, ``"adaptive"`` or ``"pull"``.
        slots: Batch size.
        timeout_cycles: Adaptive formation timeout (ignored otherwise).
    """
    if kind == "static":
        return StaticBatching(slots)
    if kind == "adaptive":
        return AdaptiveBatching(slots, timeout_cycles)
    if kind == "pull":
        return PullBatching(slots)
    raise ValueError(f"unknown batching policy {kind!r}")
