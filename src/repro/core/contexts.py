"""Per-service hardware contexts (paper §3.2).

Equinox keeps a dedicated context per installed service: a request
queue, an instruction counter, and exclusive buffer space allocated at
installation time. Contexts are visible only to the controllers; the
datapath is oblivious to service interleaving.
"""

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.hw.buffers import OnChipBuffer
from repro.hw.isa import Program


@dataclass
class ServiceContext:
    """State the controllers keep for one installed service.

    Attributes:
        name: ``"inference"`` or ``"training"`` (one of each may be
            installed; the datapath never sees which is which).
        program: The compiled job stream for this service's model.
        weight_allocation_bytes: Weight-buffer slice reserved at
            installation.
        activation_allocation_bytes: Activation-buffer slice reserved
            at installation.
        instructions_issued: The context's instruction counter.
        instructions_completed: Completion counter (the instruction
            completion unit's view).
    """

    name: str
    program: Program
    weight_allocation_bytes: float = 0.0
    activation_allocation_bytes: float = 0.0
    instructions_issued: int = 0
    instructions_completed: int = 0
    _weight_buffer: Optional[OnChipBuffer] = field(default=None, repr=False)
    _activation_buffer: Optional[OnChipBuffer] = field(default=None, repr=False)

    def bind_buffers(
        self,
        weight_buffer: OnChipBuffer,
        activation_buffer: OnChipBuffer,
        weight_bytes: float,
        activation_bytes: float,
    ) -> None:
        """Reserve exclusive buffer space for this service.

        Raises :class:`repro.hw.buffers.BufferCapacityError` when the
        installed services oversubscribe on-chip SRAM.
        """
        weight_buffer.allocate(self.name, weight_bytes)
        activation_buffer.allocate(self.name, activation_bytes)
        self._weight_buffer = weight_buffer
        self._activation_buffer = activation_buffer
        self.weight_allocation_bytes = weight_bytes
        self.activation_allocation_bytes = activation_bytes

    def release_buffers(self) -> None:
        """Uninstall: release the context's reservations."""
        if self._weight_buffer is not None:
            self._weight_buffer.release(self.name)
            self._weight_buffer = None
        if self._activation_buffer is not None:
            self._activation_buffer.release(self.name)
            self._activation_buffer = None
        self.weight_allocation_bytes = 0.0
        self.activation_allocation_bytes = 0.0

    @property
    def instructions_outstanding(self) -> int:
        return self.instructions_issued - self.instructions_completed

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract): the instruction counters
        and reserved buffer sizes. The program and buffer bindings are
        installation-time config recreated by the facade's constructor."""
        return {
            "instructions_issued": self.instructions_issued,
            "instructions_completed": self.instructions_completed,
            "weight_allocation_bytes": self.weight_allocation_bytes,
            "activation_allocation_bytes": self.activation_allocation_bytes,
        }

    def from_state(self, state: Dict[str, Any]) -> None:
        self.instructions_issued = int(state["instructions_issued"])
        self.instructions_completed = int(state["instructions_completed"])
        self.weight_allocation_bytes = float(state["weight_allocation_bytes"])
        self.activation_allocation_bytes = float(
            state["activation_allocation_bytes"]
        )
