"""Request and instruction dispatchers (paper Figure 5).

:class:`RequestDispatcher` implements the top half of the front-end:
the inference request queue, the batch formation buffer with its
batching policy, and the queue-size signal the spike guard consumes.

:class:`InferenceEngine` and :class:`TrainingEngine` together implement
the instruction dispatcher: they walk compiled programs step by step,
handing MMU jobs to the arbiter's per-context queues and SIMD/DRAM work
to those units. Training's operand streams pass through the staging
slice of on-chip SRAM, whose small size (< 2 % of capacity, paper §2.2)
bounds how far the DRAM prefetch can run ahead of the MMU; the
instruction-granular round-robin of the hardware scheduler is what
keeps that stream flowing even while an inference batch executes.
"""

from bisect import insort
from collections import deque
from dataclasses import asdict
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.analysis.program_verifier import raise_on_errors, verify_program
from repro.core.batching import BatchingPolicy
from repro.core.requests import Batch, InferenceRequest, TrainingIterationRecord
from repro.core.scheduler import SchedulingPolicy
from repro.faults.admission import AdmissionControl
from repro.faults.counters import FaultCounters
from repro.hw.config import AcceleratorConfig
from repro.hw.dram import HBMInterface, PRIORITY_TRAINING
from repro.hw.isa import Program
from repro.hw.mmu import MatrixMultiplyUnit
from repro.hw.simd import SIMDUnit
from repro.obs.spans import SpanTracer
from repro.sim.engine import Event, Simulator, SnapshotError
from repro.sim.stats import LatencyStats

#: SIMD-unit queue priorities (the vector unit is far from saturated,
#: so a simple two-level priority suffices there).
SIMD_INFERENCE_PRIORITY = 0
SIMD_TRAINING_PRIORITY = 1


class RequestDispatcher:
    """Request queue + batch formation buffer for the inference service.

    With an :class:`AdmissionControl` attached, the buffer is bounded —
    an arrival finding it full is *shed* (counted, marked
    ``rejected``, never batched) — and queued requests carry a deadline:
    one that waits too long is pulled out and either re-admitted with
    exponential backoff (up to the retry budget; its latency clock keeps
    running from the original arrival) or abandoned as timed out. With
    no admission control (the default) behaviour is exactly the
    historical unbounded queue.
    """

    def __init__(
        self,
        sim: Simulator,
        policy: BatchingPolicy,
        on_batch: Callable[[Batch], None],
        admission: Optional[AdmissionControl] = None,
        counters: Optional[FaultCounters] = None,
        spans: Optional[SpanTracer] = None,
    ):
        self.sim = sim
        self.policy = policy
        self.on_batch = on_batch
        self.admission = admission
        self.counters = counters if counters is not None else FaultCounters()
        self.spans = spans
        self._buffer: Deque[InferenceRequest] = deque()
        self._deadline_event: Optional[Event] = None
        self._timeout_events: Dict[int, Event] = {}
        self._next_batch_id = 0
        self._next_request_id = 0
        self.batches_formed = 0
        self.incomplete_batches = 0
        self.requests_submitted = 0
        #: Fires whenever the formation buffer shrinks (spike subsides).
        self.on_queue_decrease: Optional[Callable[[], None]] = None

    @property
    def queue_size(self) -> int:
        """Requests waiting in the formation buffer — the signal the
        instruction controller's spike guard monitors."""
        return len(self._buffer)

    @property
    def rejected_requests(self) -> int:
        """Requests shed by the bounded admission queue."""
        return self.counters.rejected_requests

    @property
    def request_timeouts(self) -> int:
        """Requests abandoned after exhausting their deadline budget."""
        return self.counters.request_timeouts

    @property
    def request_retries(self) -> int:
        """Deadline-expired requests re-admitted with backoff."""
        return self.counters.request_retries

    def submit(self) -> InferenceRequest:
        """A client request arrives now (possibly to be shed)."""
        request = InferenceRequest(
            request_id=self._next_request_id, arrival_cycle=self.sim.now
        )
        self._next_request_id += 1
        self.requests_submitted += 1
        self._admit(request)
        return request

    def _admit(self, request: InferenceRequest) -> None:
        admission = self.admission
        if (
            admission is not None
            and admission.bounds_queue
            and len(self._buffer) >= admission.max_queue_requests
        ):
            # Load shedding: better one explicit rejection now than one
            # more request whose latency diverges in an unbounded queue.
            request.rejected = True
            self.counters.rejected_requests += 1
            return
        self._buffer.append(request)
        if admission is not None and admission.has_deadline:
            self._timeout_events[request.request_id] = self.sim.after(
                admission.deadline_cycles,
                lambda: self._on_request_timeout(request),
            )
        self._evaluate()

    def _on_request_timeout(self, request: InferenceRequest) -> None:
        self._timeout_events.pop(request.request_id, None)
        if request.batched_cycle is not None:
            return  # formed into a batch before the deadline fired
        try:
            self._buffer.remove(request)
        except ValueError:
            return
        admission = self.admission
        if request.retries < admission.max_retries:
            # Re-admit with bounded exponential backoff; the latency
            # clock keeps running from the original arrival.
            request.retries += 1
            self.counters.request_retries += 1
            self.sim.after(
                admission.retry_delay(request.retries),
                lambda: self._admit(request),
            )
        else:
            request.timed_out = True
            self.counters.request_timeouts += 1
        self._arm_deadline()
        if self.on_queue_decrease is not None:
            self.on_queue_decrease()

    def _evaluate(self) -> None:
        while self._buffer:
            oldest_wait = self.sim.now - self._buffer[0].arrival_cycle
            if not self.policy.should_issue(len(self._buffer), oldest_wait):
                break
            self._form()
        self._arm_deadline()

    def _form(self) -> None:
        slots = self.policy.batch_slots
        taken: List[InferenceRequest] = []
        while self._buffer and len(taken) < slots:
            taken.append(self._buffer.popleft())
        batch = Batch(
            batch_id=self._next_batch_id,
            requests=taken,
            slots=slots,
            formed_cycle=self.sim.now,
        )
        self._next_batch_id += 1
        self.batches_formed += 1
        if batch.is_padded:
            self.incomplete_batches += 1
        for request in taken:
            request.batched_cycle = self.sim.now
            if self.spans is not None:
                # Retroactive: the request record already stamped both
                # endpoints of its formation wait.
                self.spans.record(
                    "request.queue", request.arrival_cycle, self.sim.now
                )
            timeout = self._timeout_events.pop(request.request_id, None)
            if timeout is not None:
                timeout.cancel()
        if self._deadline_event is not None:
            self._deadline_event.cancel()
            self._deadline_event = None
        self.on_batch(batch)
        if self.on_queue_decrease is not None:
            self.on_queue_decrease()

    def _arm_deadline(self) -> None:
        if self._deadline_event is not None:
            self._deadline_event.cancel()
            self._deadline_event = None
        if not self._buffer:
            return
        deadline = self.policy.deadline_cycles(self._buffer[0].arrival_cycle)
        if deadline is None:
            return
        self._deadline_event = self.sim.at(
            max(deadline, self.sim.now), self._on_deadline
        )

    def _on_deadline(self) -> None:
        self._deadline_event = None
        if self._buffer:
            self._form()
        self._arm_deadline()

    def flush(self) -> None:
        """Force out whatever is buffered (end-of-run drain)."""
        while self._buffer:
            self._form()

    def metrics(self) -> Dict[str, float]:
        """Deferred-source view for a ``MetricsRegistry``."""
        return {
            "queue_size": float(self.queue_size),
            "requests_submitted": float(self.requests_submitted),
            "batches_formed": float(self.batches_formed),
            "incomplete_batches": float(self.incomplete_batches),
            "rejected_requests": float(self.rejected_requests),
            "request_timeouts": float(self.request_timeouts),
            "request_retries": float(self.request_retries),
        }

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract), at formation quiescence.

        A request sitting in the formation buffer carries live deadline
        and timeout events whose exact ``(time, seq)`` slots cannot be
        re-created by re-arming — so a snapshot with buffered requests
        would not be bit-exact and is refused. Snapshot after
        :meth:`flush` (the run boundary), where only the id cursors and
        tallies remain.
        """
        if self._buffer or self._timeout_events:
            raise SnapshotError(
                f"dispatcher holds {len(self._buffer)} buffered request(s) "
                f"and {len(self._timeout_events)} armed timeout(s); "
                "snapshot at a run boundary (after flush)"
            )
        return {
            "next_batch_id": self._next_batch_id,
            "next_request_id": self._next_request_id,
            "batches_formed": self.batches_formed,
            "incomplete_batches": self.incomplete_batches,
            "requests_submitted": self.requests_submitted,
        }

    def from_state(self, state: Dict[str, Any]) -> None:
        self._next_batch_id = int(state["next_batch_id"])
        self._next_request_id = int(state["next_request_id"])
        self.batches_formed = int(state["batches_formed"])
        self.incomplete_batches = int(state["incomplete_batches"])
        self.requests_submitted = int(state["requests_submitted"])


class InferenceEngine:
    """Walks inference batch programs through the datapath models."""

    def __init__(
        self,
        sim: Simulator,
        config: AcceleratorConfig,
        mmu: MatrixMultiplyUnit,
        simd: SIMDUnit,
        program: Program,
        scheduler: SchedulingPolicy,
        max_inflight: int = 2,
        verify: bool = True,
        spans: Optional[SpanTracer] = None,
    ):
        if max_inflight < 1:
            raise ValueError("need at least one batch in flight")
        if verify:
            # Install-time static verification (paper's static budgets):
            # a violating program fails here with a diagnostic instead
            # of deep inside a simulation.
            raise_on_errors(verify_program(program, config, context="inference"))
        self.sim = sim
        self.config = config
        self.mmu = mmu
        self.simd = simd
        self.program = program
        self.scheduler = scheduler
        self.max_inflight = max_inflight
        self.spans = spans
        self._queue: Deque[Batch] = deque()
        self._inflight = 0
        self.latency = LatencyStats()
        self.batches_completed = 0
        self.requests_completed = 0
        #: Fires after each batch completes (spike-guard re-evaluation).
        self.on_batch_complete: Optional[Callable[[], None]] = None

    @property
    def pending_batches(self) -> int:
        return len(self._queue)

    @property
    def backlog_requests(self) -> int:
        """Real requests batched but not yet started."""
        return sum(batch.real_count for batch in self._queue)

    def enqueue(self, batch: Batch) -> None:
        self.scheduler.note_inference_activity(self.sim.now)
        self._queue.append(batch)
        self._try_start()

    def _try_start(self) -> None:
        while self._inflight < self.max_inflight and self._queue:
            batch = self._queue.popleft()
            batch.started_cycle = self.sim.now
            self._inflight += 1
            self._run_step(batch, 0)

    def _run_step(self, batch: Batch, step_index: int) -> None:
        if step_index >= len(self.program.steps):
            self._finish(batch)
            return
        step = self.program.steps[step_index]
        jobs = step.mmu_jobs
        if not jobs:
            self._after_mmu(batch, step_index)
            return
        remaining = [len(jobs)]

        def _job_done() -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                self._after_mmu(batch, step_index)

        # The whole step's instruction stream goes down in one batch —
        # a single arbiter wake-up instead of one per job, with the
        # per-instruction grant policy unchanged (the unit is busy from
        # the first grant, so the scalar path's extra pumps were no-ops).
        self.mmu.issue_batch(
            jobs,
            real_rows_fn=lambda job: min(batch.real_count, job.rows),
            context="inference",
            on_done=_job_done,
        )

    def _after_mmu(self, batch: Batch, step_index: int) -> None:
        step = self.program.steps[step_index]
        self.simd.issue(
            step.simd,
            context="inference",
            on_done=lambda: self._run_step(batch, step_index + 1),
            priority=SIMD_INFERENCE_PRIORITY,
        )

    def _finish(self, batch: Batch) -> None:
        batch.complete(self.sim.now)
        self.batches_completed += 1
        self.requests_completed += batch.real_count
        if self.spans is not None:
            start = (
                batch.started_cycle
                if batch.started_cycle is not None else batch.formed_cycle
            )
            self.spans.record("request.execute", start, self.sim.now)
            for request in batch.requests:
                self.spans.record(
                    "request", request.arrival_cycle, self.sim.now
                )
        for request in batch.requests:
            self.latency.record(request.latency_cycles)
        self._inflight -= 1
        self.scheduler.note_inference_activity(self.sim.now)
        if self.on_batch_complete is not None:
            self.on_batch_complete()
        self._try_start()

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract), at execution quiescence.

        An in-flight batch is a chain of step closures threaded through
        the MMU/SIMD queues — unserializable — so a snapshot with work
        in flight is refused; snapshot at a run boundary.
        """
        if self._inflight or self._queue:
            raise SnapshotError(
                f"inference engine has {self._inflight} batch(es) in "
                f"flight and {len(self._queue)} queued; snapshot at a "
                "run boundary"
            )
        return {
            "latency": self.latency.to_state(),
            "batches_completed": self.batches_completed,
            "requests_completed": self.requests_completed,
        }

    def from_state(self, state: Dict[str, Any]) -> None:
        self.latency = LatencyStats.from_state(state["latency"])
        self.batches_completed = int(state["batches_completed"])
        self.requests_completed = int(state["requests_completed"])


class TrainingEngine:
    """Streams endless training iterations into idle issue slots.

    The engine pipelines each step's jobs through a prefetch stage: a
    job's operand stream (master weights and stashed activations) must
    land in the staging slice of on-chip SRAM before the job enters the
    MMU's training queue. Staging bytes are recycled when a job starts
    issuing (weight-stationary arrays consume their tiles at issue), so
    the DRAM stream of job *i+1* overlaps the compute of job *i* as far
    as the staging capacity permits. The arbiter decides when training
    jobs actually get issue slots.
    """

    def __init__(
        self,
        sim: Simulator,
        config: AcceleratorConfig,
        mmu: MatrixMultiplyUnit,
        simd: SIMDUnit,
        hbm: HBMInterface,
        program: Program,
        scheduler: SchedulingPolicy,
        inference_queue_size: Callable[[], int],
        verify: bool = True,
        spans: Optional[SpanTracer] = None,
    ):
        if verify:
            # Training programs must additionally respect the < 2 %
            # staging cap their operand streams are prefetched through.
            raise_on_errors(verify_program(program, config, context="training"))
        self.sim = sim
        self.config = config
        self.mmu = mmu
        self.simd = simd
        self.hbm = hbm
        self.program = program
        self.scheduler = scheduler
        self.inference_queue_size = inference_queue_size
        self.spans = spans
        self.iterations: List[TrainingIterationRecord] = []
        self.jobs_issued = 0
        self._started = False
        self._paused = False
        # Pipeline state.
        self._exec_step = 0  # step whose jobs may enter the MMU queue
        self._exec_jobs_done = 0
        self._prefetch_cursor: Tuple[int, int] = (0, 0)  # (step, job)
        self._staged: List[Tuple[int, int]] = []
        self._staged_bytes = 0.0
        self._inflight_prefetch_bytes = 0.0
        self._prefetch_outstanding = 0
        self._iteration_start = 0.0
        self._exec_step_started = 0.0
        self._committed_step = -1  # software-scheduling block commitment

    # ------------------------------------------------------------------
    # Public controls
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Install the training service: there is always a backlog of
        training requests (paper §5), so the engine runs until the
        simulation ends."""
        if not self.scheduler.allows_training:
            return
        if self._started:
            raise RuntimeError("training engine already started")
        self._started = True
        self._iteration_start = self.sim.now
        self._exec_step_started = self.sim.now
        self._maybe_prefetch()

    def poke(self) -> None:
        """Re-evaluate pending work (called when the inference queue
        shrinks or a batch completes — the spike may have subsided)."""
        if self._started:
            self._maybe_issue()
            self.mmu.pump()

    def pause(self) -> None:
        """Stop feeding new work into the pipeline (quiesce prelude).

        In-flight prefetches and issued jobs complete normally; nothing
        new is staged or issued until :meth:`resume`. Once the last
        in-flight closure lands the datapath drains — the state a
        snapshot wants, since the snapshot contract restarts the
        interrupted iteration anyway.
        """
        self._paused = True

    def resume(self) -> None:
        """Undo :meth:`pause` and wake the pipeline."""
        self._paused = False
        if self._started:
            self._maybe_issue()
            self._maybe_prefetch()
            self.mmu.pump()

    @property
    def iterations_completed(self) -> int:
        return len(self.iterations)

    # ------------------------------------------------------------------
    # Per-job stream sizing
    # ------------------------------------------------------------------

    def _step_stream_bytes(self, step_index: int) -> float:
        """Bytes that must be staged ahead of this step's jobs: the
        weight stream plus any stashed-operand reloads."""
        step = self.program.steps[step_index]
        stash_in = sum(r.bytes for r in step.dram if r.kind == "stash_in")
        return step.weight_bytes + stash_in

    def _job_stream_bytes(self, step_index: int, job_index: int) -> float:
        step = self.program.steps[step_index]
        if not step.mmu_jobs:
            return 0.0
        return self._step_stream_bytes(step_index) / len(step.mmu_jobs)

    # ------------------------------------------------------------------
    # Prefetch stage
    # ------------------------------------------------------------------

    def _advance_cursor(self) -> Optional[Tuple[int, int]]:
        """Skip over empty steps to the next prefetchable job."""
        step_idx, job_idx = self._prefetch_cursor
        while step_idx < len(self.program.steps):
            jobs = self.program.steps[step_idx].mmu_jobs
            if job_idx < len(jobs):
                return step_idx, job_idx
            step_idx += 1
            job_idx = 0
        return None

    def _maybe_prefetch(self) -> None:
        if self._paused:
            return
        position = self._advance_cursor()
        if position is None:
            return
        step_idx, job_idx = position
        stream = self._job_stream_bytes(step_idx, job_idx)
        outstanding = self._staged_bytes + self._inflight_prefetch_bytes
        # Always allow one stream in flight even if it alone exceeds the
        # staging slice (it passes through); otherwise respect capacity.
        if (
            self._prefetch_outstanding > 0
            and outstanding + stream > self.config.staging_bytes
        ):
            return
        self._prefetch_cursor = (step_idx, job_idx + 1)
        self._prefetch_outstanding += 1
        self._inflight_prefetch_bytes += stream
        prefetch_issued = self.sim.now

        def _staged() -> None:
            self._inflight_prefetch_bytes -= stream
            self._staged_bytes += stream
            if self.spans is not None:
                self.spans.record(
                    "train.prefetch", prefetch_issued, self.sim.now
                )
            # Streams normally land in program order, but an HBM ECC
            # retry re-enters the channel queue and can deliver late —
            # keep the issue queue sorted by program position so the
            # current step's delayed job is never stuck behind a later
            # step's (which would wedge the pipeline).
            insort(self._staged, (step_idx, job_idx))
            self._maybe_issue()
            self._maybe_prefetch()

        if stream <= 0:
            self.sim.after_call(0.0, _staged)
        else:
            self.hbm.transfer(
                stream, kind="train_stream", on_done=_staged,
                priority=PRIORITY_TRAINING,
            )

    # ------------------------------------------------------------------
    # Issue stage
    # ------------------------------------------------------------------

    def _maybe_issue(self) -> None:
        if self._paused:
            return
        while self._staged:
            step_idx, job_idx = self._staged[0]
            if step_idx != self._exec_step:
                break  # staged job belongs to a future step
            if self.scheduler.training_blocks_preemption():
                # Software scheduling: commit whole steps; once the
                # first job of a step is dispatched the block cannot be
                # revoked, but a new block needs the quiet-queue gate.
                committed = self._committed_step == step_idx
                if not committed and not self.scheduler.can_commit_training_block(
                    self.inference_queue_size(), self.sim.now
                ):
                    break
                self._committed_step = step_idx
            self._staged.pop(0)
            self._issue_job(step_idx, job_idx)

    def _issue_job(self, step_idx: int, job_idx: int) -> None:
        step = self.program.steps[step_idx]
        job = step.mmu_jobs[job_idx]
        stream = self._job_stream_bytes(step_idx, job_idx)
        # Software-committed blocks enter the inference FIFO (they are
        # not revocable); hardware policies use the training queue.
        queue = (
            "inference"
            if self.scheduler.training_blocks_preemption()
            else "training"
        )

        def _issued() -> None:
            # The arrays consume the staged tiles as the job starts;
            # the staging slice is free for the next stream.
            self._staged_bytes -= stream
            self._prefetch_outstanding -= 1
            self._maybe_prefetch()

        def _done() -> None:
            self._exec_jobs_done += 1
            if self._exec_jobs_done == len(step.mmu_jobs):
                self._finish_step(step_idx)

        self.jobs_issued += 1
        self.mmu.issue(
            job,
            real_rows=job.rows,
            context="training",
            on_issue=_issued,
            on_done=_done,
            queue=queue,
        )

    def _finish_step(self, step_idx: int) -> None:
        step = self.program.steps[step_idx]
        # Fire-and-forget write-backs (stashes, gradients).
        for request in step.dram:
            if request.kind in ("stash_out", "grad_out"):
                self.hbm.transfer(
                    request.bytes, kind=request.kind,
                    priority=PRIORITY_TRAINING,
                )

        step_started = self._exec_step_started

        def _after_simd() -> None:
            if self.spans is not None:
                self.spans.record("train.step", step_started, self.sim.now)
            self._next_step(step_idx)

        self.simd.issue(
            step.simd, context="training", on_done=_after_simd,
            priority=SIMD_TRAINING_PRIORITY,
        )

    def _next_step(self, step_idx: int) -> None:
        next_idx = step_idx + 1
        # Steps with no MMU jobs are pure DRAM phases (parameter-server
        # sync); serialize their transfers on the chain.
        while next_idx < len(self.program.steps):
            step = self.program.steps[next_idx]
            if step.mmu_jobs:
                break
            sync_bytes = step.dram_bytes
            if sync_bytes > 0:
                captured = next_idx
                sync_started = self.sim.now

                def _sync_done() -> None:
                    if self.spans is not None:
                        self.spans.record(
                            "train.aggregate", sync_started, self.sim.now
                        )
                    self._next_step(captured)

                self.hbm.transfer(
                    sync_bytes, kind="param_sync", on_done=_sync_done,
                    priority=PRIORITY_TRAINING,
                )
                return
            next_idx += 1

        if next_idx >= len(self.program.steps):
            self._finish_iteration()
            return
        self._exec_step = next_idx
        self._exec_jobs_done = 0
        self._exec_step_started = self.sim.now
        self._maybe_issue()
        self._maybe_prefetch()

    def _finish_iteration(self) -> None:
        record = TrainingIterationRecord(
            iteration_id=len(self.iterations),
            start_cycle=self._iteration_start,
            completion_cycle=self.sim.now,
            useful_ops=self.program.total_useful_ops,
        )
        self.iterations.append(record)
        if self.spans is not None:
            self.spans.record(
                "train.iteration", record.start_cycle, record.completion_cycle
            )
        # Start the next iteration immediately: training requests are
        # always available (paper §5).
        self._iteration_start = self.sim.now
        self._exec_step = 0
        self._exec_jobs_done = 0
        self._exec_step_started = self.sim.now
        self._prefetch_cursor = (0, 0)
        self._staged.clear()
        self._staged_bytes = 0.0
        self._inflight_prefetch_bytes = 0.0
        self._prefetch_outstanding = 0
        self._committed_step = -1
        self._maybe_prefetch()

    # ------------------------------------------------------------------
    # Snapshot (repro.state contract)
    # ------------------------------------------------------------------

    def to_state(self) -> Dict[str, Any]:
        """Snapshot at **iteration granularity**.

        The training service is an endless stream of identical
        iterations (paper §5), so the documented restore point is an
        iteration boundary: completed iterations and tallies are
        captured exactly; the pipeline position *inside* the current
        iteration (staged streams, in-flight prefetches — all HBM/MMU
        closures) is not, and :meth:`from_state` restarts the
        interrupted iteration from step 0, exactly the reset
        ``_finish_iteration`` performs on the uninterrupted path.
        """
        return {
            "started": self._started,
            "jobs_issued": self.jobs_issued,
            "iterations": [asdict(record) for record in self.iterations],
        }

    def from_state(self, state: Dict[str, Any]) -> None:
        """Restore history and restart the current iteration's pipeline
        (prefetch begins again from step 0 if the service was live)."""
        self.iterations = [
            TrainingIterationRecord(**record)
            for record in state["iterations"]
        ]
        self.jobs_issued = int(state["jobs_issued"])
        self._started = bool(state["started"])
        self._exec_step = 0
        self._exec_jobs_done = 0
        self._prefetch_cursor = (0, 0)
        self._staged = []
        self._staged_bytes = 0.0
        self._inflight_prefetch_bytes = 0.0
        self._prefetch_outstanding = 0
        self._committed_step = -1
        self._iteration_start = self.sim.now
        self._exec_step_started = self.sim.now
        if self._started and self.scheduler.allows_training:
            self._maybe_prefetch()
