"""Request and instruction dispatchers (paper Figure 5).

:class:`RequestDispatcher` implements the top half of the front-end:
the inference request queue, the batch formation buffer with its
batching policy, and the queue-size signal the spike guard consumes.

:class:`InferenceEngine` and :class:`TrainingEngine` together implement
the instruction dispatcher: they walk compiled programs step by step,
handing MMU jobs to the arbiter's per-context queues and SIMD/DRAM work
to those units. Training's operand streams pass through the staging
slice of on-chip SRAM, whose small size (< 2 % of capacity, paper §2.2)
bounds how far the DRAM prefetch can run ahead of the MMU; the
instruction-granular round-robin of the hardware scheduler is what
keeps that stream flowing even while an inference batch executes.
"""

from bisect import insort
from collections import deque
from dataclasses import asdict, dataclass
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.analysis.program_verifier import raise_on_errors, verify_program
from repro.core.batching import BatchingPolicy
from repro.core.requests import Batch, InferenceRequest, TrainingIterationRecord
from repro.core.scheduler import SchedulingPolicy
from repro.faults.admission import AdmissionControl
from repro.faults.counters import FaultCounters
from repro.hw.config import AcceleratorConfig
from repro.hw.dram import HBMInterface, PRIORITY_TRAINING
from repro.hw.isa import Program
from repro.hw.mmu import MatrixMultiplyUnit
from repro.hw.simd import SIMDUnit
from repro.obs.spans import SpanTracer
from repro.sim.engine import Event, Simulator, SnapshotError
from repro.sim.stats import LatencyStats

#: SIMD-unit queue priorities (the vector unit is far from saturated,
#: so a simple two-level priority suffices there).
SIMD_INFERENCE_PRIORITY = 0
SIMD_TRAINING_PRIORITY = 1


class RequestDispatcher:
    """Request queue + batch formation buffer for the inference service.

    With an :class:`AdmissionControl` attached, the buffer is bounded —
    an arrival finding it full is *shed* (counted, marked
    ``rejected``, never batched) — and queued requests carry a deadline:
    one that waits too long is pulled out and either re-admitted with
    exponential backoff (up to the retry budget; its latency clock keeps
    running from the original arrival) or abandoned as timed out. With
    no admission control (the default) behaviour is exactly the
    historical unbounded queue.
    """

    def __init__(
        self,
        sim: Simulator,
        policy: BatchingPolicy,
        on_batch: Callable[[Batch], None],
        admission: Optional[AdmissionControl] = None,
        counters: Optional[FaultCounters] = None,
        spans: Optional[SpanTracer] = None,
    ):
        self.sim = sim
        self.policy = policy
        self.on_batch = on_batch
        self.admission = admission
        self.counters = counters if counters is not None else FaultCounters()
        self.spans = spans
        self._buffer: Deque[InferenceRequest] = deque()
        self._deadline_event: Optional[Event] = None
        self._timeout_events: Dict[int, Event] = {}
        #: Deadline-expired requests waiting out their backoff before
        #: re-admission. Tracked so ``flush`` can fold them back in and
        #: ``to_state`` can refuse a snapshot that would drop them.
        self._retry_events: Dict[int, Tuple[Event, InferenceRequest]] = {}
        self._next_batch_id = 0
        self._next_request_id = 0
        self.batches_formed = 0
        self.incomplete_batches = 0
        self.requests_submitted = 0
        #: Fires whenever the formation buffer shrinks (spike subsides).
        self.on_queue_decrease: Optional[Callable[[], None]] = None
        #: Fires whenever a request enters the formation buffer — the
        #: pull path (``PullBatching``) wakes its chip server here, so
        #: a retry re-admission on an idle chip is served immediately
        #: instead of waiting for the next completion to pump.
        self.on_queue_increase: Optional[Callable[[], None]] = None

    @property
    def queue_size(self) -> int:
        """Requests waiting in the formation buffer — the signal the
        instruction controller's spike guard monitors."""
        return len(self._buffer)

    @property
    def pending_retries(self) -> int:
        """Deadline-expired requests waiting out their backoff."""
        return len(self._retry_events)

    @property
    def rejected_requests(self) -> int:
        """Requests shed by the bounded admission queue."""
        return self.counters.rejected_requests

    @property
    def request_timeouts(self) -> int:
        """Requests abandoned after exhausting their deadline budget."""
        return self.counters.request_timeouts

    @property
    def request_retries(self) -> int:
        """Deadline-expired requests re-admitted with backoff."""
        return self.counters.request_retries

    def submit(self, tenant: Optional[str] = None) -> InferenceRequest:
        """A client request arrives now (possibly to be shed)."""
        request = InferenceRequest(
            request_id=self._next_request_id,
            arrival_cycle=self.sim.now,
            tenant=tenant,
        )
        self._next_request_id += 1
        self.requests_submitted += 1
        self._admit(request)
        return request

    def inject(self, request: InferenceRequest) -> None:
        """Admit an externally created request (fleet-router path).

        The caller owns request-id uniqueness across dispatchers — the
        local id cursor is advanced past the injected id so locally
        created requests can never collide with it.
        """
        self.requests_submitted += 1
        if self._next_request_id <= request.request_id:
            self._next_request_id = request.request_id + 1
        self._admit(request)

    # ------------------------------------------------------------------
    # Buffer hooks — the single-tenant deque here; FairShareDispatcher
    # overrides these five to run per-tenant queues under the identical
    # admission/timeout/formation machinery.
    # ------------------------------------------------------------------

    def _should_shed(self, request: InferenceRequest) -> bool:
        admission = self.admission
        return (
            admission is not None
            and admission.bounds_queue
            and self.queue_size >= admission.max_queue_requests
        )

    def _append(self, request: InferenceRequest) -> None:
        self._buffer.append(request)

    def _discard(self, request: InferenceRequest) -> bool:
        try:
            self._buffer.remove(request)
        except ValueError:
            return False
        return True

    def _take(self, slots: int) -> List[InferenceRequest]:
        taken: List[InferenceRequest] = []
        while self._buffer and len(taken) < slots:
            taken.append(self._buffer.popleft())
        return taken

    def _oldest_arrival(self) -> Optional[float]:
        if not self._buffer:
            return None
        return self._buffer[0].arrival_cycle

    # ------------------------------------------------------------------
    # Admission / timeout / formation machinery (hook-driven)
    # ------------------------------------------------------------------

    def _admit(self, request: InferenceRequest) -> None:
        if self._should_shed(request):
            # Load shedding: better one explicit rejection now than one
            # more request whose latency diverges in an unbounded queue.
            request.rejected = True
            self.counters.rejected_requests += 1
            self._on_shed(request)
            return
        self._append(request)
        deadline = self._deadline_for(request)
        if deadline is not None:
            self._timeout_events[request.request_id] = self.sim.after(
                deadline, lambda: self._on_request_timeout(request)
            )
        self._evaluate()
        if self.on_queue_increase is not None:
            self.on_queue_increase()

    def _deadline_for(self, request: InferenceRequest) -> Optional[float]:
        """Queue deadline for this request; ``None`` = never times out.
        FairShareDispatcher overrides with per-tenant deadlines."""
        admission = self.admission
        if admission is not None and admission.has_deadline:
            return admission.deadline_cycles
        return None

    def _on_shed(self, request: InferenceRequest) -> None:
        """Hook for per-tenant shed accounting; the base keeps none."""

    def _on_timed_out(self, request: InferenceRequest) -> None:
        """Hook: ``request`` exhausted its deadline budget."""

    def _on_request_timeout(self, request: InferenceRequest) -> None:
        self._timeout_events.pop(request.request_id, None)
        if request.batched_cycle is not None:
            return  # formed into a batch before the deadline fired
        if not self._discard(request):
            return
        admission = self.admission
        max_retries = 0 if admission is None else admission.max_retries
        if request.retries < max_retries:
            assert admission is not None
            # Re-admit with bounded exponential backoff; the latency
            # clock keeps running from the original arrival. The pending
            # re-admission is tracked: an untracked event here leaked
            # the request past flush() and past the snapshot quiescence
            # check (it sat in the sim heap, invisible to both).
            request.retries += 1
            self.counters.request_retries += 1
            event = self.sim.after(
                admission.retry_delay(request.retries),
                lambda: self._readmit(request),
            )
            self._retry_events[request.request_id] = (event, request)
        else:
            request.timed_out = True
            self.counters.request_timeouts += 1
            self._on_timed_out(request)
        self._arm_deadline()
        if self.on_queue_decrease is not None:
            self.on_queue_decrease()

    def _readmit(self, request: InferenceRequest) -> None:
        self._retry_events.pop(request.request_id, None)
        self._admit(request)

    def _evaluate(self) -> None:
        while self.queue_size:
            oldest = self._oldest_arrival()
            assert oldest is not None
            oldest_wait = self.sim.now - oldest
            if not self.policy.should_issue(self.queue_size, oldest_wait):
                break
            self._form()
        self._arm_deadline()

    def _form(self) -> Batch:
        slots = self.policy.batch_slots
        taken = self._take(slots)
        batch = Batch(
            batch_id=self._next_batch_id,
            requests=taken,
            slots=slots,
            formed_cycle=self.sim.now,
        )
        self._next_batch_id += 1
        self.batches_formed += 1
        if batch.is_padded:
            self.incomplete_batches += 1
        for request in taken:
            request.batched_cycle = self.sim.now
            self._note_batched(request)
            if self.spans is not None:
                # Retroactive: the request record already stamped both
                # endpoints of its formation wait.
                self.spans.record(
                    "request.queue", request.arrival_cycle, self.sim.now
                )
            timeout = self._timeout_events.pop(request.request_id, None)
            if timeout is not None:
                timeout.cancel()
        if self._deadline_event is not None:
            self._deadline_event.cancel()
            self._deadline_event = None
        self.on_batch(batch)
        if self.on_queue_decrease is not None:
            self.on_queue_decrease()
        return batch

    def _note_batched(self, request: InferenceRequest) -> None:
        """Hook: ``request`` was just formed into a batch."""

    def form_one(self) -> Optional[Batch]:
        """Form one batch on demand, bypassing the batching policy.

        The pull path (:class:`repro.core.batching.PullBatching`): a
        chip server calls this exactly when a service slot frees up, so
        requests stay in the bounded formation buffer — where admission
        and fair-share still see them — until the datapath can actually
        take them. Returns the formed batch (also delivered through
        ``on_batch``), or ``None`` when the buffer is empty.
        """
        if not self.queue_size:
            return None
        return self._form()

    def drain(self) -> List[InferenceRequest]:
        """Evacuate every live request without forming batches.

        Chip-failure failover: the router pulls a dead chip's queued
        requests (including those waiting out a retry backoff) and
        re-admits them elsewhere. All armed deadline/timeout/retry
        events are cancelled; tallies are untouched — the requests are
        still live. Returned in request-id order for determinism.
        """
        drained: Dict[int, InferenceRequest] = {}
        while self.queue_size:
            for request in self._take(self.queue_size):
                drained[request.request_id] = request
        for event, request in self._retry_events.values():
            event.cancel()
            drained[request.request_id] = request
        self._retry_events.clear()
        for event in self._timeout_events.values():
            event.cancel()
        self._timeout_events.clear()
        if self._deadline_event is not None:
            self._deadline_event.cancel()
            self._deadline_event = None
        return [drained[request_id] for request_id in sorted(drained)]

    def _arm_deadline(self) -> None:
        if self._deadline_event is not None:
            self._deadline_event.cancel()
            self._deadline_event = None
        oldest = self._oldest_arrival()
        if oldest is None:
            return
        deadline = self.policy.deadline_cycles(oldest)
        if deadline is None:
            return
        self._deadline_event = self.sim.at(
            max(deadline, self.sim.now), self._on_deadline
        )

    def _on_deadline(self) -> None:
        self._deadline_event = None
        if self.queue_size:
            self._form()
        self._arm_deadline()

    def flush(self) -> None:
        """Force out whatever is buffered (end-of-run drain).

        Requests waiting out a retry backoff are folded back in first
        (in request-id order): they are still live, and draining the
        buffer without them silently lost them — never completed, never
        counted timed out, breaking the submitted = completed + shed +
        timed-out accounting identity.
        """
        while self._retry_events:
            request_id = min(self._retry_events)
            event, request = self._retry_events.pop(request_id)
            event.cancel()
            self._admit(request)
        while self.queue_size:
            self._form()

    def metrics(self) -> Dict[str, float]:
        """Deferred-source view for a ``MetricsRegistry``."""
        return {
            "queue_size": float(self.queue_size),
            "requests_submitted": float(self.requests_submitted),
            "batches_formed": float(self.batches_formed),
            "incomplete_batches": float(self.incomplete_batches),
            "rejected_requests": float(self.rejected_requests),
            "request_timeouts": float(self.request_timeouts),
            "request_retries": float(self.request_retries),
            "pending_retries": float(self.pending_retries),
        }

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract), at formation quiescence.

        A request sitting in the formation buffer carries live deadline
        and timeout events whose exact ``(time, seq)`` slots cannot be
        re-created by re-arming — so a snapshot with buffered requests
        would not be bit-exact and is refused. Snapshot after
        :meth:`flush` (the run boundary), where only the id cursors and
        tallies remain.
        """
        if self.queue_size or self._timeout_events or self._retry_events:
            raise SnapshotError(
                f"dispatcher holds {self.queue_size} buffered request(s), "
                f"{len(self._timeout_events)} armed timeout(s) and "
                f"{len(self._retry_events)} pending retry(ies); "
                "snapshot at a run boundary (after flush)"
            )
        return {
            "next_batch_id": self._next_batch_id,
            "next_request_id": self._next_request_id,
            "batches_formed": self.batches_formed,
            "incomplete_batches": self.incomplete_batches,
            "requests_submitted": self.requests_submitted,
        }

    def from_state(self, state: Dict[str, Any]) -> None:
        self._next_batch_id = int(state["next_batch_id"])
        self._next_request_id = int(state["next_request_id"])
        self.batches_formed = int(state["batches_formed"])
        self.incomplete_batches = int(state["incomplete_batches"])
        self.requests_submitted = int(state["requests_submitted"])


@dataclass(frozen=True)
class TenantShare:
    """One tenant's slice of a fair-share dispatcher.

    Attributes:
        name: Tenant identity; requests carry it end to end.
        weight: Fair-share weight — batch slots are granted in
            proportion to weights when every tenant has backlog
            (weighted deficit round-robin).
        max_queue_requests: Per-tenant admission bound; ``None`` falls
            back to the dispatcher's :class:`AdmissionControl` bound.
            Each tenant's queue is bounded independently, so one
            tenant's flash crowd sheds its own arrivals and never
            consumes another tenant's admission budget.
        deadline_cycles: Per-tenant queue deadline; ``None`` falls back
            to the dispatcher's :class:`AdmissionControl` deadline.
    """

    name: str
    weight: float = 1.0
    max_queue_requests: Optional[int] = None
    deadline_cycles: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.max_queue_requests is not None and self.max_queue_requests < 1:
            raise ValueError(
                f"max_queue_requests must be >= 1, got {self.max_queue_requests}"
            )
        if self.deadline_cycles is not None and self.deadline_cycles <= 0:
            raise ValueError(
                f"deadline_cycles must be positive, got {self.deadline_cycles}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TenantShare":
        return cls(**dict(data))


class FairShareDispatcher(RequestDispatcher):
    """Multi-tenant request dispatcher: one bounded queue per tenant,
    weighted deficit round-robin (WDRR) batch formation.

    Each batch's slots are filled by cycling tenants in registration
    order; a tenant with backlog earns ``weight`` deficit credit per
    round and spends one credit per slot, so over any backlogged
    interval tenant *i* receives ``w_i / Σw`` of the slots regardless
    of how aggressively other tenants submit. A tenant whose queue
    drains forfeits its credit (standard DRR reset) — weights bound
    *shares under contention*, not reservations of idle capacity.

    Admission (shed/deadline/retry) and batching policy are inherited
    unchanged from :class:`RequestDispatcher`; only the buffer hooks
    differ.
    """

    def __init__(
        self,
        sim: Simulator,
        policy: BatchingPolicy,
        on_batch: Callable[[Batch], None],
        tenants: Sequence[TenantShare],
        admission: Optional[AdmissionControl] = None,
        counters: Optional[FaultCounters] = None,
        spans: Optional[SpanTracer] = None,
    ):
        super().__init__(
            sim, policy, on_batch,
            admission=admission, counters=counters, spans=spans,
        )
        if not tenants:
            raise ValueError("need at least one tenant")
        names = [share.name for share in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        #: Registration order is the WDRR scan order — part of the
        #: determinism contract, so it is fixed at construction.
        self._shares: Dict[str, TenantShare] = {
            share.name: share for share in tenants
        }
        self._queues: Dict[str, Deque[InferenceRequest]] = {
            share.name: deque() for share in tenants
        }
        self._deficits: Dict[str, float] = {share.name: 0.0 for share in tenants}
        self.submitted_by_tenant: Dict[str, int] = dict.fromkeys(names, 0)
        self.shed_by_tenant: Dict[str, int] = dict.fromkeys(names, 0)
        self.batched_by_tenant: Dict[str, int] = dict.fromkeys(names, 0)
        self.timed_out_by_tenant: Dict[str, int] = dict.fromkeys(names, 0)

    @property
    def tenant_names(self) -> List[str]:
        return list(self._shares)

    @property
    def queue_size(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def queue_size_for(self, tenant: str) -> int:
        return len(self._queues[tenant])

    def submit(self, tenant: Optional[str] = None) -> InferenceRequest:
        if tenant not in self._shares:
            raise ValueError(
                f"unknown tenant {tenant!r}; registered: {list(self._shares)}"
            )
        self.submitted_by_tenant[tenant] += 1
        return super().submit(tenant=tenant)

    def inject(self, request: InferenceRequest) -> None:
        if request.tenant not in self._shares:
            raise ValueError(
                f"unknown tenant {request.tenant!r}; "
                f"registered: {list(self._shares)}"
            )
        self.submitted_by_tenant[request.tenant] += 1
        super().inject(request)

    # ------------------------------------------------------------------
    # Buffer hooks
    # ------------------------------------------------------------------

    def _deadline_for(self, request: InferenceRequest) -> Optional[float]:
        assert request.tenant is not None
        share = self._shares[request.tenant]
        if share.deadline_cycles is not None:
            return share.deadline_cycles
        return super()._deadline_for(request)

    def _should_shed(self, request: InferenceRequest) -> bool:
        assert request.tenant is not None
        share = self._shares[request.tenant]
        cap = share.max_queue_requests
        if cap is None:
            admission = self.admission
            if admission is None or not admission.bounds_queue:
                return False
            cap = admission.max_queue_requests
        return len(self._queues[request.tenant]) >= cap

    def _on_shed(self, request: InferenceRequest) -> None:
        assert request.tenant is not None
        self.shed_by_tenant[request.tenant] += 1

    def _append(self, request: InferenceRequest) -> None:
        assert request.tenant is not None
        self._queues[request.tenant].append(request)

    def _discard(self, request: InferenceRequest) -> bool:
        assert request.tenant is not None
        try:
            self._queues[request.tenant].remove(request)
        except ValueError:
            return False
        return True

    def _take(self, slots: int) -> List[InferenceRequest]:
        taken: List[InferenceRequest] = []
        while len(taken) < slots and any(self._queues.values()):
            for name, queue in self._queues.items():
                if not queue:
                    self._deficits[name] = 0.0
                    continue
                self._deficits[name] += self._shares[name].weight
                while queue and self._deficits[name] >= 1.0 and len(taken) < slots:
                    taken.append(queue.popleft())
                    self._deficits[name] -= 1.0
                if not queue:
                    self._deficits[name] = 0.0
                if len(taken) >= slots:
                    break
        return taken

    def _note_batched(self, request: InferenceRequest) -> None:
        assert request.tenant is not None
        self.batched_by_tenant[request.tenant] += 1

    def _on_timed_out(self, request: InferenceRequest) -> None:
        assert request.tenant is not None
        self.timed_out_by_tenant[request.tenant] += 1

    def _oldest_arrival(self) -> Optional[float]:
        heads = [queue[0].arrival_cycle for queue in self._queues.values() if queue]
        if not heads:
            return None
        return min(heads)

    # ------------------------------------------------------------------
    # Metrics & snapshot
    # ------------------------------------------------------------------

    def tenant_metrics(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant counters (stable tenant order)."""
        return {
            name: {
                "queue_size": float(len(self._queues[name])),
                "submitted": float(self.submitted_by_tenant[name]),
                "shed": float(self.shed_by_tenant[name]),
                "batched": float(self.batched_by_tenant[name]),
                "timed_out": float(self.timed_out_by_tenant[name]),
                "deficit": self._deficits[name],
            }
            for name in self._shares
        }

    def to_state(self) -> Dict[str, Any]:
        state = super().to_state()
        state["tenants"] = {
            name: {
                "deficit": self._deficits[name],
                "submitted": self.submitted_by_tenant[name],
                "shed": self.shed_by_tenant[name],
                "batched": self.batched_by_tenant[name],
                "timed_out": self.timed_out_by_tenant[name],
            }
            for name in self._shares
        }
        return state

    def from_state(self, state: Dict[str, Any]) -> None:
        super().from_state(state)
        tenants = state["tenants"]
        if set(tenants) != set(self._shares):
            raise ValueError(
                f"snapshot tenants {sorted(tenants)} do not match "
                f"registered tenants {sorted(self._shares)}"
            )
        for name, entry in tenants.items():
            self._deficits[name] = float(entry["deficit"])
            self.submitted_by_tenant[name] = int(entry["submitted"])
            self.shed_by_tenant[name] = int(entry["shed"])
            self.batched_by_tenant[name] = int(entry["batched"])
            self.timed_out_by_tenant[name] = int(entry["timed_out"])


class InferenceEngine:
    """Walks inference batch programs through the datapath models."""

    def __init__(
        self,
        sim: Simulator,
        config: AcceleratorConfig,
        mmu: MatrixMultiplyUnit,
        simd: SIMDUnit,
        program: Program,
        scheduler: SchedulingPolicy,
        max_inflight: int = 2,
        verify: bool = True,
        spans: Optional[SpanTracer] = None,
    ):
        if max_inflight < 1:
            raise ValueError("need at least one batch in flight")
        if verify:
            # Install-time static verification (paper's static budgets):
            # a violating program fails here with a diagnostic instead
            # of deep inside a simulation.
            raise_on_errors(verify_program(program, config, context="inference"))
        self.sim = sim
        self.config = config
        self.mmu = mmu
        self.simd = simd
        self.program = program
        self.scheduler = scheduler
        self.max_inflight = max_inflight
        self.spans = spans
        self._queue: Deque[Batch] = deque()
        self._inflight = 0
        self.latency = LatencyStats()
        self.batches_completed = 0
        self.requests_completed = 0
        #: Fires after each batch completes (spike-guard re-evaluation).
        self.on_batch_complete: Optional[Callable[[], None]] = None

    @property
    def pending_batches(self) -> int:
        return len(self._queue)

    @property
    def backlog_requests(self) -> int:
        """Real requests batched but not yet started."""
        return sum(batch.real_count for batch in self._queue)

    def enqueue(self, batch: Batch) -> None:
        self.scheduler.note_inference_activity(self.sim.now)
        self._queue.append(batch)
        self._try_start()

    def _try_start(self) -> None:
        while self._inflight < self.max_inflight and self._queue:
            batch = self._queue.popleft()
            batch.started_cycle = self.sim.now
            self._inflight += 1
            self._run_step(batch, 0)

    def _run_step(self, batch: Batch, step_index: int) -> None:
        if step_index >= len(self.program.steps):
            self._finish(batch)
            return
        step = self.program.steps[step_index]
        jobs = step.mmu_jobs
        if not jobs:
            self._after_mmu(batch, step_index)
            return
        remaining = [len(jobs)]

        def _job_done() -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                self._after_mmu(batch, step_index)

        # The whole step's instruction stream goes down in one batch —
        # a single arbiter wake-up instead of one per job, with the
        # per-instruction grant policy unchanged (the unit is busy from
        # the first grant, so the scalar path's extra pumps were no-ops).
        self.mmu.issue_batch(
            jobs,
            real_rows_fn=lambda job: min(batch.real_count, job.rows),
            context="inference",
            on_done=_job_done,
        )

    def _after_mmu(self, batch: Batch, step_index: int) -> None:
        step = self.program.steps[step_index]
        self.simd.issue(
            step.simd,
            context="inference",
            on_done=lambda: self._run_step(batch, step_index + 1),
            priority=SIMD_INFERENCE_PRIORITY,
        )

    def _finish(self, batch: Batch) -> None:
        batch.complete(self.sim.now)
        self.batches_completed += 1
        self.requests_completed += batch.real_count
        if self.spans is not None:
            start = (
                batch.started_cycle
                if batch.started_cycle is not None else batch.formed_cycle
            )
            self.spans.record("request.execute", start, self.sim.now)
            for request in batch.requests:
                self.spans.record(
                    "request", request.arrival_cycle, self.sim.now
                )
        for request in batch.requests:
            self.latency.record(request.latency_cycles)
        self._inflight -= 1
        self.scheduler.note_inference_activity(self.sim.now)
        if self.on_batch_complete is not None:
            self.on_batch_complete()
        self._try_start()

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract), at execution quiescence.

        An in-flight batch is a chain of step closures threaded through
        the MMU/SIMD queues — unserializable — so a snapshot with work
        in flight is refused; snapshot at a run boundary.
        """
        if self._inflight or self._queue:
            raise SnapshotError(
                f"inference engine has {self._inflight} batch(es) in "
                f"flight and {len(self._queue)} queued; snapshot at a "
                "run boundary"
            )
        return {
            "latency": self.latency.to_state(),
            "batches_completed": self.batches_completed,
            "requests_completed": self.requests_completed,
        }

    def from_state(self, state: Dict[str, Any]) -> None:
        self.latency = LatencyStats.from_state(state["latency"])
        self.batches_completed = int(state["batches_completed"])
        self.requests_completed = int(state["requests_completed"])


class TrainingEngine:
    """Streams endless training iterations into idle issue slots.

    The engine pipelines each step's jobs through a prefetch stage: a
    job's operand stream (master weights and stashed activations) must
    land in the staging slice of on-chip SRAM before the job enters the
    MMU's training queue. Staging bytes are recycled when a job starts
    issuing (weight-stationary arrays consume their tiles at issue), so
    the DRAM stream of job *i+1* overlaps the compute of job *i* as far
    as the staging capacity permits. The arbiter decides when training
    jobs actually get issue slots.
    """

    def __init__(
        self,
        sim: Simulator,
        config: AcceleratorConfig,
        mmu: MatrixMultiplyUnit,
        simd: SIMDUnit,
        hbm: HBMInterface,
        program: Program,
        scheduler: SchedulingPolicy,
        inference_queue_size: Callable[[], int],
        verify: bool = True,
        spans: Optional[SpanTracer] = None,
    ):
        if verify:
            # Training programs must additionally respect the < 2 %
            # staging cap their operand streams are prefetched through.
            raise_on_errors(verify_program(program, config, context="training"))
        self.sim = sim
        self.config = config
        self.mmu = mmu
        self.simd = simd
        self.hbm = hbm
        self.program = program
        self.scheduler = scheduler
        self.inference_queue_size = inference_queue_size
        self.spans = spans
        self.iterations: List[TrainingIterationRecord] = []
        self.jobs_issued = 0
        self._started = False
        self._paused = False
        # Pipeline state.
        self._exec_step = 0  # step whose jobs may enter the MMU queue
        self._exec_jobs_done = 0
        self._prefetch_cursor: Tuple[int, int] = (0, 0)  # (step, job)
        self._staged: List[Tuple[int, int]] = []
        self._staged_bytes = 0.0
        self._inflight_prefetch_bytes = 0.0
        self._prefetch_outstanding = 0
        self._iteration_start = 0.0
        self._exec_step_started = 0.0
        self._committed_step = -1  # software-scheduling block commitment

    # ------------------------------------------------------------------
    # Public controls
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Install the training service: there is always a backlog of
        training requests (paper §5), so the engine runs until the
        simulation ends."""
        if not self.scheduler.allows_training:
            return
        if self._started:
            raise RuntimeError("training engine already started")
        self._started = True
        self._iteration_start = self.sim.now
        self._exec_step_started = self.sim.now
        self._maybe_prefetch()

    def poke(self) -> None:
        """Re-evaluate pending work (called when the inference queue
        shrinks or a batch completes — the spike may have subsided)."""
        if self._started:
            self._maybe_issue()
            self.mmu.pump()

    def pause(self) -> None:
        """Stop feeding new work into the pipeline (quiesce prelude).

        In-flight prefetches and issued jobs complete normally; nothing
        new is staged or issued until :meth:`resume`. Once the last
        in-flight closure lands the datapath drains — the state a
        snapshot wants, since the snapshot contract restarts the
        interrupted iteration anyway.
        """
        self._paused = True

    def resume(self) -> None:
        """Undo :meth:`pause` and wake the pipeline."""
        self._paused = False
        if self._started:
            self._maybe_issue()
            self._maybe_prefetch()
            self.mmu.pump()

    @property
    def iterations_completed(self) -> int:
        return len(self.iterations)

    # ------------------------------------------------------------------
    # Per-job stream sizing
    # ------------------------------------------------------------------

    def _step_stream_bytes(self, step_index: int) -> float:
        """Bytes that must be staged ahead of this step's jobs: the
        weight stream plus any stashed-operand reloads."""
        step = self.program.steps[step_index]
        stash_in = sum(r.bytes for r in step.dram if r.kind == "stash_in")
        return step.weight_bytes + stash_in

    def _job_stream_bytes(self, step_index: int, job_index: int) -> float:
        step = self.program.steps[step_index]
        if not step.mmu_jobs:
            return 0.0
        return self._step_stream_bytes(step_index) / len(step.mmu_jobs)

    # ------------------------------------------------------------------
    # Prefetch stage
    # ------------------------------------------------------------------

    def _advance_cursor(self) -> Optional[Tuple[int, int]]:
        """Skip over empty steps to the next prefetchable job."""
        step_idx, job_idx = self._prefetch_cursor
        while step_idx < len(self.program.steps):
            jobs = self.program.steps[step_idx].mmu_jobs
            if job_idx < len(jobs):
                return step_idx, job_idx
            step_idx += 1
            job_idx = 0
        return None

    def _maybe_prefetch(self) -> None:
        if self._paused:
            return
        position = self._advance_cursor()
        if position is None:
            return
        step_idx, job_idx = position
        stream = self._job_stream_bytes(step_idx, job_idx)
        outstanding = self._staged_bytes + self._inflight_prefetch_bytes
        # Always allow one stream in flight even if it alone exceeds the
        # staging slice (it passes through); otherwise respect capacity.
        if (
            self._prefetch_outstanding > 0
            and outstanding + stream > self.config.staging_bytes
        ):
            return
        self._prefetch_cursor = (step_idx, job_idx + 1)
        self._prefetch_outstanding += 1
        self._inflight_prefetch_bytes += stream
        prefetch_issued = self.sim.now

        def _staged() -> None:
            self._inflight_prefetch_bytes -= stream
            self._staged_bytes += stream
            if self.spans is not None:
                self.spans.record(
                    "train.prefetch", prefetch_issued, self.sim.now
                )
            # Streams normally land in program order, but an HBM ECC
            # retry re-enters the channel queue and can deliver late —
            # keep the issue queue sorted by program position so the
            # current step's delayed job is never stuck behind a later
            # step's (which would wedge the pipeline).
            insort(self._staged, (step_idx, job_idx))
            self._maybe_issue()
            self._maybe_prefetch()

        if stream <= 0:
            self.sim.after_call(0.0, _staged)
        else:
            self.hbm.transfer(
                stream, kind="train_stream", on_done=_staged,
                priority=PRIORITY_TRAINING,
            )

    # ------------------------------------------------------------------
    # Issue stage
    # ------------------------------------------------------------------

    def _maybe_issue(self) -> None:
        if self._paused:
            return
        while self._staged:
            step_idx, job_idx = self._staged[0]
            if step_idx != self._exec_step:
                break  # staged job belongs to a future step
            if self.scheduler.training_blocks_preemption():
                # Software scheduling: commit whole steps; once the
                # first job of a step is dispatched the block cannot be
                # revoked, but a new block needs the quiet-queue gate.
                committed = self._committed_step == step_idx
                if not committed and not self.scheduler.can_commit_training_block(
                    self.inference_queue_size(), self.sim.now
                ):
                    break
                self._committed_step = step_idx
            self._staged.pop(0)
            self._issue_job(step_idx, job_idx)

    def _issue_job(self, step_idx: int, job_idx: int) -> None:
        step = self.program.steps[step_idx]
        job = step.mmu_jobs[job_idx]
        stream = self._job_stream_bytes(step_idx, job_idx)
        # Software-committed blocks enter the inference FIFO (they are
        # not revocable); hardware policies use the training queue.
        queue = (
            "inference"
            if self.scheduler.training_blocks_preemption()
            else "training"
        )

        def _issued() -> None:
            # The arrays consume the staged tiles as the job starts;
            # the staging slice is free for the next stream.
            self._staged_bytes -= stream
            self._prefetch_outstanding -= 1
            self._maybe_prefetch()

        def _done() -> None:
            self._exec_jobs_done += 1
            if self._exec_jobs_done == len(step.mmu_jobs):
                self._finish_step(step_idx)

        self.jobs_issued += 1
        self.mmu.issue(
            job,
            real_rows=job.rows,
            context="training",
            on_issue=_issued,
            on_done=_done,
            queue=queue,
        )

    def _finish_step(self, step_idx: int) -> None:
        step = self.program.steps[step_idx]
        # Fire-and-forget write-backs (stashes, gradients).
        for request in step.dram:
            if request.kind in ("stash_out", "grad_out"):
                self.hbm.transfer(
                    request.bytes, kind=request.kind,
                    priority=PRIORITY_TRAINING,
                )

        step_started = self._exec_step_started

        def _after_simd() -> None:
            if self.spans is not None:
                self.spans.record("train.step", step_started, self.sim.now)
            self._next_step(step_idx)

        self.simd.issue(
            step.simd, context="training", on_done=_after_simd,
            priority=SIMD_TRAINING_PRIORITY,
        )

    def _next_step(self, step_idx: int) -> None:
        next_idx = step_idx + 1
        # Steps with no MMU jobs are pure DRAM phases (parameter-server
        # sync); serialize their transfers on the chain.
        while next_idx < len(self.program.steps):
            step = self.program.steps[next_idx]
            if step.mmu_jobs:
                break
            sync_bytes = step.dram_bytes
            if sync_bytes > 0:
                captured = next_idx
                sync_started = self.sim.now

                def _sync_done() -> None:
                    if self.spans is not None:
                        self.spans.record(
                            "train.aggregate", sync_started, self.sim.now
                        )
                    self._next_step(captured)

                self.hbm.transfer(
                    sync_bytes, kind="param_sync", on_done=_sync_done,
                    priority=PRIORITY_TRAINING,
                )
                return
            next_idx += 1

        if next_idx >= len(self.program.steps):
            self._finish_iteration()
            return
        self._exec_step = next_idx
        self._exec_jobs_done = 0
        self._exec_step_started = self.sim.now
        self._maybe_issue()
        self._maybe_prefetch()

    def _finish_iteration(self) -> None:
        record = TrainingIterationRecord(
            iteration_id=len(self.iterations),
            start_cycle=self._iteration_start,
            completion_cycle=self.sim.now,
            useful_ops=self.program.total_useful_ops,
        )
        self.iterations.append(record)
        if self.spans is not None:
            self.spans.record(
                "train.iteration", record.start_cycle, record.completion_cycle
            )
        # Start the next iteration immediately: training requests are
        # always available (paper §5).
        self._iteration_start = self.sim.now
        self._exec_step = 0
        self._exec_jobs_done = 0
        self._exec_step_started = self.sim.now
        self._prefetch_cursor = (0, 0)
        self._staged.clear()
        self._staged_bytes = 0.0
        self._inflight_prefetch_bytes = 0.0
        self._prefetch_outstanding = 0
        self._committed_step = -1
        self._maybe_prefetch()

    # ------------------------------------------------------------------
    # Snapshot (repro.state contract)
    # ------------------------------------------------------------------

    def to_state(self) -> Dict[str, Any]:
        """Snapshot at **iteration granularity**.

        The training service is an endless stream of identical
        iterations (paper §5), so the documented restore point is an
        iteration boundary: completed iterations and tallies are
        captured exactly; the pipeline position *inside* the current
        iteration (staged streams, in-flight prefetches — all HBM/MMU
        closures) is not, and :meth:`from_state` restarts the
        interrupted iteration from step 0, exactly the reset
        ``_finish_iteration`` performs on the uninterrupted path.
        """
        return {
            "started": self._started,
            "jobs_issued": self.jobs_issued,
            "iterations": [asdict(record) for record in self.iterations],
        }

    def from_state(self, state: Dict[str, Any]) -> None:
        """Restore history and restart the current iteration's pipeline
        (prefetch begins again from step 0 if the service was live)."""
        self.iterations = [
            TrainingIterationRecord(**record)
            for record in state["iterations"]
        ]
        self.jobs_issued = int(state["jobs_issued"])
        self._started = bool(state["started"])
        self._exec_step = 0
        self._exec_jobs_done = 0
        self._prefetch_cursor = (0, 0)
        self._staged = []
        self._staged_bytes = 0.0
        self._inflight_prefetch_bytes = 0.0
        self._prefetch_outstanding = 0
        self._committed_step = -1
        self._iteration_start = self.sim.now
        self._exec_step_started = self.sim.now
        if self._started and self.scheduler.allows_training:
            self._maybe_prefetch()
