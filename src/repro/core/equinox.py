"""The Equinox accelerator facade.

Assembles the simulator, the datapath models, the compiled programs and
the front-end into one object with a load-experiment API. This is the
public entry point the examples and the evaluation harness use:

    >>> from repro.core import EquinoxAccelerator
    >>> from repro.dse import equinox_configuration
    >>> from repro.models import deepbench_lstm
    >>> eq = EquinoxAccelerator(
    ...     equinox_configuration("500us"), deepbench_lstm(),
    ...     training_model=deepbench_lstm(),
    ... )
    >>> report = eq.run(load=0.5, requests=2000)       # doctest: +SKIP
    >>> report.p99_latency_us, report.training_top_s   # doctest: +SKIP
"""

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.batching import make_batching
from repro.core.contexts import ServiceContext
from repro.core.dispatcher import (
    InferenceEngine,
    RequestDispatcher,
    TrainingEngine,
)
from repro.core.scheduler import SchedulingPolicy, make_scheduler
from repro.faults.admission import AdmissionControl
from repro.faults.counters import FaultCounters
from repro.faults.guard import SLOGuard
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.hw.buffers import OnChipBuffer
from repro.hw.config import AcceleratorConfig
from repro.hw.dram import HBMInterface
from repro.hw.mmu import MatrixMultiplyUnit
from repro.hw.simd import SIMDUnit
from repro.models.compiler import TileCompiler
from repro.models.graph import ModelSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import SimProfiler
from repro.obs.report import RunReport, report_from_simulation
from repro.obs.spans import SpanTracer
from repro.sim.engine import Simulator, SnapshotError
from repro.sim.stats import inf_aware_percentile
from repro.workload.loadgen import ArrivalProcess, FaultyArrivals, PoissonArrivals

#: Default batch-formation timeout as a multiple of the service time —
#: the paper's Figure 11 sweep settles on 2×.
DEFAULT_BATCH_TIMEOUT_X = 2.0

#: Default spike-guard threshold in batches of backlog.
DEFAULT_QUEUE_THRESHOLD_BATCHES = 2

#: Default SLO-guard degradation threshold as a multiple of the spike
#: guard's queue threshold: the guard engages only for backlogs the
#: instruction-level spike guard alone is failing to drain.
DEFAULT_DEGRADE_THRESHOLD_X = 2


@dataclass
class SimulationReport:
    """Everything one load experiment measured."""

    config_name: str
    load: float
    duration_cycles: float
    frequency_hz: float
    requests_submitted: int
    requests_completed: int
    batches_completed: int
    incomplete_batches: int
    p99_latency_us: float
    mean_latency_us: float
    max_latency_us: float
    inference_top_s: float
    training_top_s: float
    training_iterations: int
    cycle_breakdown: Dict[str, float] = field(default_factory=dict)
    dram_gb_s: float = 0.0
    dram_utilization: float = 0.0
    events_processed: int = 0
    #: Requests shed by the bounded admission queue.
    rejected_requests: int = 0
    #: Requests abandoned after exhausting their deadline budget.
    request_timeouts: int = 0
    #: Fault/recovery counters accumulated over the run (all zero for a
    #: fault-free experiment).
    faults: FaultCounters = field(default_factory=FaultCounters)
    #: Median request latency (run artifacts carry p50 alongside p99).
    p50_latency_us: float = math.nan

    @property
    def duration_s(self) -> float:
        return self.duration_cycles / self.frequency_hz

    def meets_target(self, target_us: float) -> bool:
        """Whether the p99 latency satisfies the service-level goal.

        A run that was offered traffic but completed nothing reports a
        p99 of ``inf`` (see :meth:`EquinoxAccelerator._report`), so a
        fully-failed run can never vacuously pass the SLO.
        """
        return self.p99_latency_us <= target_us


class EquinoxAccelerator:
    """One Equinox instance hosting an inference service and optionally
    a piggybacked training service.

    Args:
        config: The design point (from :func:`repro.dse.table1
            .equinox_configuration` or hand-built).
        inference_model: Installed inference service's model.
        training_model: Installed training service's model, or None for
            an inference-only accelerator.
        scheduler: ``"priority"`` (Equinox), ``"fair"``,
            ``"inference_only"`` or ``"software"``.
        batching: ``"adaptive"`` (Equinox) or ``"static"``.
        batch_timeout_x: Adaptive formation timeout as a multiple of
            the batch service time (installation-time constant).
        queue_threshold: Spike-guard threshold in *requests*; defaults
            to two batches' worth.
        training_batch: Samples per training iteration (paper: 128).
        chunk_us: Job aggregation granularity for the compiler.
        max_inflight_batches: Inference batches overlapped in the
            datapath (double-buffered activation banks).
        decision_latency_us: Software-scheduler turnaround.
        fault_plan: Seeded fault-injection plan
            (:class:`repro.faults.FaultPlan`); ``None`` disables the
            fault subsystem entirely (byte-identical to the historical
            behaviour).
        admission: Overload policy for the request queue
            (:class:`repro.faults.AdmissionControl`): bounded admission
            with shedding plus request deadline timeouts with
            retry/backoff. ``None`` keeps the unbounded queue.
        degrade_threshold: Inference backlog (requests) at which the
            SLO guard degrades gracefully — preempting training and
            shrinking adaptive batches until the backlog drains.
            Defaults to twice the spike-guard threshold. The guard is
            installed whenever a fault plan or admission control is
            present.
    """

    def __init__(
        self,
        config: AcceleratorConfig,
        inference_model: ModelSpec,
        training_model: Optional[ModelSpec] = None,
        scheduler: str = "priority",
        batching: str = "adaptive",
        batch_timeout_x: float = DEFAULT_BATCH_TIMEOUT_X,
        queue_threshold: Optional[int] = None,
        training_batch: int = 128,
        chunk_us: float = 2.0,
        max_inflight_batches: int = 2,
        decision_latency_us: float = 10.0,
        software_conservative: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        admission: Optional[AdmissionControl] = None,
        degrade_threshold: Optional[int] = None,
        profiler: Optional[SimProfiler] = None,
    ):
        self.config = config
        self.inference_model = inference_model
        self.training_model = training_model
        self.fault_plan = fault_plan
        self.admission = admission
        self.fault_counters = FaultCounters()

        self.sim = Simulator()
        # Observability: one metrics namespace + span tracer per
        # accelerator; every collector below registers into it.
        self.obs = MetricsRegistry()
        self.spans = SpanTracer(self.sim, registry=self.obs)
        self.profiler = profiler
        if profiler is not None:
            self.sim.set_profiler(profiler)
        self.mmu = MatrixMultiplyUnit(self.sim, config)
        self.simd = SIMDUnit(self.sim, config)
        self.hbm = HBMInterface(self.sim, config)
        self.fault_injector: Optional[FaultInjector] = None
        if fault_plan is not None:
            self.fault_injector = FaultInjector(fault_plan, self.fault_counters)
            self.hbm.set_fault_injector(self.fault_injector)
            self.mmu.set_fault_injector(self.fault_injector)
        self.weight_buffer = OnChipBuffer(
            self.sim, "weight", config.sram.weight_bytes,
            port_bytes_per_cycle=config.dram_bytes_per_cycle,
        )
        self.activation_buffer = OnChipBuffer(
            self.sim, "activation", config.sram.activation_bytes,
            port_bytes_per_cycle=config.dram_bytes_per_cycle,
        )

        compiler = TileCompiler(config, chunk_us)
        self.inference_program = compiler.compile_inference(inference_model)
        self.batch_slots = self.inference_program.rows

        # Install the inference service: weights must be SRAM-resident.
        operand_bytes = config.encoding_info.bytes_per_operand
        self.inference_context = ServiceContext(
            "inference", self.inference_program
        )
        self.inference_context.bind_buffers(
            self.weight_buffer,
            self.activation_buffer,
            weight_bytes=inference_model.weight_bytes(operand_bytes),
            activation_bytes=min(
                config.sram.activation_bytes * 0.5,
                2.0 * self.batch_slots
                * max(l.k + l.n_out for l in inference_model.layers),
            ),
        )

        if training_model is not None and scheduler == "inference_only":
            raise ValueError(
                "cannot install a training service under inference_only "
                "scheduling; pass training_model=None instead"
            )
        if training_model is None:
            scheduler = "inference_only"

        service_cycles = self.batch_service_cycles()
        if queue_threshold is None:
            queue_threshold = DEFAULT_QUEUE_THRESHOLD_BATCHES * self.batch_slots
        self.queue_threshold = queue_threshold
        self.scheduler: SchedulingPolicy = make_scheduler(
            scheduler,
            queue_threshold=queue_threshold,
            decision_latency_cycles=config.us_to_cycles(decision_latency_us),
            conservative=software_conservative,
        )
        self.batching = make_batching(
            batching,
            slots=self.batch_slots,
            timeout_cycles=batch_timeout_x * service_cycles,
        )

        self.engine = InferenceEngine(
            self.sim, config, self.mmu, self.simd,
            self.inference_program, self.scheduler,
            max_inflight=max_inflight_batches,
            spans=self.spans,
        )
        self.dispatcher = RequestDispatcher(
            self.sim, self.batching, on_batch=self.engine.enqueue,
            admission=admission, counters=self.fault_counters,
            spans=self.spans,
        )
        # Wire the arbiter to the policy and the queue-size signal
        # (Figure 5's "Inference Queue Size" wire into the controller).
        self.mmu.set_policy(self.scheduler, self._inference_backlog)

        # The SLO guard rides along whenever the fault subsystem is in
        # play: it samples the backlog once per batch service time and
        # degrades gracefully (preempt training, shrink batches) when a
        # fault is piling work up faster than the datapath drains it.
        self.slo_guard: Optional[SLOGuard] = None
        if fault_plan is not None or admission is not None:
            if degrade_threshold is None:
                degrade_threshold = (
                    DEFAULT_DEGRADE_THRESHOLD_X * self.queue_threshold
                )
            self.slo_guard = SLOGuard(
                self.sim,
                self._inference_backlog,
                degrade_threshold=degrade_threshold,
                check_interval_cycles=max(service_cycles, 1.0),
                counters=self.fault_counters,
                on_degrade=self._enter_degraded,
                on_recover=self._exit_degraded,
            )

        self.training_engine: Optional[TrainingEngine] = None
        self.training_program = None
        if training_model is not None:
            self.training_program = compiler.compile_training(
                training_model,
                batch=training_batch,
                max_stream_bytes=config.staging_bytes / 2.0,
            )
            self.training_context = ServiceContext(
                "training", self.training_program
            )
            # Training space-shares a sliver of SRAM for staging only.
            self.training_context.bind_buffers(
                self.weight_buffer,
                self.activation_buffer,
                weight_bytes=config.staging_bytes * 0.75,
                activation_bytes=config.staging_bytes * 0.25,
            )
            self.training_engine = TrainingEngine(
                self.sim, config, self.mmu, self.simd, self.hbm,
                self.training_program, self.scheduler,
                inference_queue_size=self._inference_backlog,
                spans=self.spans,
            )
            self.dispatcher.on_queue_decrease = self.training_engine.poke
            self.engine.on_batch_complete = self.training_engine.poke

        # Migrate the scattered collectors into the registry as deferred
        # sources: their public APIs are unchanged, their values appear
        # under stable dotted prefixes in every snapshot/artifact.
        self.obs.register_source(
            "inference.latency", self.engine.latency.metrics
        )
        self.obs.register_source("mmu.cycles", self.mmu.accounting.metrics)
        self.obs.register_source(
            "mmu.throughput", self.mmu.throughput.metrics
        )
        self.obs.register_source("dispatcher", self.dispatcher.metrics)
        self.obs.register_source("scheduler", self.scheduler.metrics)
        self.obs.register_source("faults", self.fault_counters.as_dict)
        if self.training_engine is not None:
            self.obs.register_source(
                "training",
                lambda: {
                    "iterations": float(
                        self.training_engine.iterations_completed
                    )
                },
            )

    # ------------------------------------------------------------------
    # Analytic service characteristics
    # ------------------------------------------------------------------

    def _inference_backlog(self) -> int:
        """The spike-guard signal: requests waiting to form plus real
        requests in batches that have not started executing."""
        return self.dispatcher.queue_size + self.engine.backlog_requests

    def _enter_degraded(self) -> None:
        """SLO-guard transition: preempt training, shrink batches."""
        self.scheduler.set_degraded(True)
        self.batching.set_degraded(True)

    def _exit_degraded(self) -> None:
        self.scheduler.set_degraded(False)
        self.batching.set_degraded(False)
        # Training grants are legal again; wake the pipeline (the MMU
        # only re-arbitrates on job arrival/completion).
        if self.training_engine is not None:
            self.training_engine.poke()
        self.mmu.pump()

    def batch_service_cycles(self) -> float:
        """Unloaded service time of one batch: the serial dependency
        chain of MMU occupancy, pipeline drain and SIMD tails."""
        drain = self.config.pipeline_drain_cycles
        return sum(
            step.mmu_cycles + drain + step.simd.cycles
            for step in self.inference_program.steps
        )

    def batch_service_us(self) -> float:
        return self.config.cycles_to_us(self.batch_service_cycles())

    def capacity_requests_per_cycle(self) -> float:
        """Saturation request rate: the MMU occupancy bound."""
        return self.batch_slots / self.inference_program.total_mmu_cycles

    def capacity_requests_per_s(self) -> float:
        return self.capacity_requests_per_cycle() * self.config.frequency_hz

    def peak_inference_top_s(self) -> float:
        """Useful-op throughput at MMU saturation."""
        ops = self.batch_slots * self.inference_program.useful_ops_per_row
        return (
            ops / self.inference_program.total_mmu_cycles
            * self.config.frequency_hz / 1e12
        )

    # ------------------------------------------------------------------
    # Snapshot (``repro.state`` contract)
    # ------------------------------------------------------------------

    def quiesce(self, max_events: int = 10_000_000) -> None:
        """Drain the datapath to a snapshotable point.

        Pauses the training engine (nothing new is staged or issued;
        in-flight streams and jobs complete normally) and runs the
        simulator until the only live events left are persistent
        monitors (the SLO guard's ticker). After this, :meth:`to_state`
        succeeds; call ``training_engine.resume()`` to keep running
        in-process instead of restoring.
        """
        if self.training_engine is not None:
            self.training_engine.pause()
        self.dispatcher.flush()
        persistent = 1 if self.slo_guard is not None else 0
        slice_cycles = max(self.batch_service_cycles(), 1000.0)
        start = self.sim.events_processed
        while self.sim.queue_depth > persistent:
            spent = self.sim.events_processed - start
            if spent >= max_events:
                raise SnapshotError(
                    f"datapath failed to drain within {max_events} "
                    f"events ({self.sim.queue_depth} live events remain)"
                )
            self.sim.run(until=self.sim.now + slice_cycles,
                         max_events=max_events - spent)

    def to_state(self) -> Dict[str, Any]:
        """The serving stack's resumable state, at a **run boundary**.

        Composes every stateful component's own snapshot: the simulator
        bookkeeping (clock, sequence cursor, event count — not the
        heap: the closures a live run keeps in flight are exactly what
        the component contracts refuse), the datapath meters, the
        policies, the fault subsystem and the engines. Components with
        in-flight work raise :class:`repro.state.SnapshotError`; call
        between :meth:`run` invocations after the datapath has drained
        (``sim.run()`` to quiescence first if needed).

        What this deliberately does **not** promise: bit-exact
        continuation of a half-finished training iteration — the
        training engine restarts its interrupted iteration from step 0
        on restore (its documented contract). End-to-end byte-identical
        artifacts across a crash are enforced one layer up, at job
        granularity, by the completion journal in ``repro.exec``.
        """
        state: Dict[str, Any] = {
            "sim": {
                "now": self.sim.now,
                "seq_next": self.sim._seq_next,
                "events_processed": self.sim.events_processed,
            },
            "fault_counters": self.fault_counters.to_state(),
            "scheduler": self.scheduler.to_state(),
            "batching": self.batching.to_state(),
            "obs": self.obs.to_state(),
            "spans": self.spans.to_state(),
            "mmu": self.mmu.to_state(),
            "simd": self.simd.to_state(),
            "hbm": self.hbm.to_state(),
            "weight_buffer": self.weight_buffer.to_state(),
            "activation_buffer": self.activation_buffer.to_state(),
            "inference_context": self.inference_context.to_state(),
            "dispatcher": self.dispatcher.to_state(),
            "engine": self.engine.to_state(),
            "fault_injector": (
                self.fault_injector.to_state()
                if self.fault_injector is not None else None
            ),
            "slo_guard": (
                self.slo_guard.to_state()
                if self.slo_guard is not None else None
            ),
            "training_context": (
                self.training_context.to_state()
                if self.training_engine is not None else None
            ),
            "training_engine": (
                self.training_engine.to_state()
                if self.training_engine is not None else None
            ),
        }
        return state

    def from_state(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`to_state` snapshot onto a freshly
        constructed accelerator with **identical configuration**.

        Order matters: the clock is restored first (everything that
        re-arms events schedules relative to ``now``), then the passive
        meters and policies, then the components that schedule — the
        SLO guard re-arms its ticker and the training engine restarts
        its interrupted iteration, both against the restored clock.
        """
        sim_state = state["sim"]
        self.sim.now = float(sim_state["now"])
        self.sim._seq_next = int(sim_state["seq_next"])
        self.sim._events_processed = int(sim_state["events_processed"])
        self.fault_counters.from_state(state["fault_counters"])
        self.scheduler.from_state(state["scheduler"])
        self.batching.from_state(state["batching"])
        self.obs.from_state(state["obs"])
        self.spans.from_state(state["spans"])
        self.mmu.from_state(state["mmu"])
        self.simd.from_state(state["simd"])
        self.hbm.from_state(state["hbm"])
        self.weight_buffer.from_state(state["weight_buffer"])
        self.activation_buffer.from_state(state["activation_buffer"])
        self.inference_context.from_state(state["inference_context"])
        self.dispatcher.from_state(state["dispatcher"])
        self.engine.from_state(state["engine"])
        if state["fault_injector"] is not None:
            if self.fault_injector is None:
                raise SnapshotError(
                    "snapshot carries fault-injector state but this "
                    "accelerator has no fault plan"
                )
            self.fault_injector.from_state(state["fault_injector"])
        if state["slo_guard"] is not None:
            if self.slo_guard is None:
                raise SnapshotError(
                    "snapshot carries SLO-guard state but this "
                    "accelerator has no guard installed"
                )
            self.slo_guard.from_state(state["slo_guard"])
        if state["training_engine"] is not None:
            if self.training_engine is None:
                raise SnapshotError(
                    "snapshot carries training state but this "
                    "accelerator has no training service installed"
                )
            self.training_context.from_state(state["training_context"])
            self.training_engine.from_state(state["training_engine"])

    # ------------------------------------------------------------------
    # Load experiments
    # ------------------------------------------------------------------

    def run(
        self,
        load: float,
        requests: int = 0,
        seed: int = 0,
        arrivals: Optional[ArrivalProcess] = None,
        max_events: int = 50_000_000,
    ) -> SimulationReport:
        """Drive the accelerator at an offered load and measure.

        Args:
            load: Offered load as a fraction of the saturation request
                rate (the paper's x-axis in Figures 8, 9, 11).
            requests: Inference requests to measure over; defaults to
                ~40 batches (min 2000 requests).
            seed: Arrival-process seed.
            arrivals: Custom arrival process; default Poisson at
                ``load × capacity``.
            max_events: Hard safety stop for the event loop.
        """
        if load <= 0:
            raise ValueError("load must be positive; use run_idle() for 0")
        if requests <= 0:
            requests = max(2000, 40 * self.batch_slots)
        if arrivals is None:
            rate = load * self.capacity_requests_per_cycle()
            arrivals = PoissonArrivals(rate, seed=seed)
        if self.fault_plan is not None and self.fault_plan.requests.enabled:
            # Front-end network faults: drops and delays, sampled from
            # the plan's own substream so the lossy trace is exactly
            # reproducible for a given (plan, seed) pair.
            arrivals = FaultyArrivals(
                arrivals, self.fault_plan, self.fault_counters
            )

        if self.training_engine is not None and not self.training_engine._started:
            self.training_engine.start()

        target = self.engine.requests_completed + requests
        stop_submitting = [False]
        # Admission runs one block ahead of the clock: one batched
        # next_gaps() draw pre-schedules a run of arrivals on the
        # anonymous lane, and the block's last arrival draws the next
        # block. Arrival times are the same prefix sums the scalar
        # one-ahead loop produced, from the identical RNG stream (each
        # arrival still submits first, then its successor's gap is
        # already drawn — the stream order the scalar loop established).
        block = 32

        def _submit() -> None:
            if stop_submitting[0]:
                return
            self.dispatcher.submit()

        def _tail() -> None:
            if stop_submitting[0]:
                return
            self.dispatcher.submit()
            _admit_block()

        def _admit_block() -> None:
            gaps = arrivals.next_gaps(block)
            t = self.sim.now
            for gap in gaps[:-1]:
                t += gap
                self.sim.at_call(t, _submit)
            self.sim.at_call(t + gaps[-1], _tail)

        _admit_block()

        start_events = self.sim.events_processed
        # Slice the run so the completion condition is re-checked about
        # once per batch service time (the loop overshoots by at most
        # one slice of background training work).
        slice_cycles = max(self.batch_service_cycles(), 1000.0)
        while self.engine.requests_completed < target:
            if self.sim.events_processed - start_events > max_events:
                raise RuntimeError(
                    "simulation exceeded its event budget; the offered "
                    "load may be far beyond saturation"
                )
            if self.sim.peek() is None:
                raise RuntimeError("simulation drained before completing")
            self.sim.run(
                until=self.sim.now + slice_cycles,
                max_events=max_events,
            )
        stop_submitting[0] = True
        self.dispatcher.flush()

        return self._report(load)

    def run_window(
        self,
        load: float,
        requests: int,
        windows: int,
        index: int,
        seed: int = 0,
        resume: Optional[Dict[str, Any]] = None,
        on_restore: Optional[Any] = None,
        max_events: int = 50_000_000,
    ) -> Tuple[Dict[str, Any], Optional[SimulationReport]]:
        """Run window ``index`` of a ``windows``-way split of one
        :meth:`run`-style load experiment (the sharded executor's unit
        of work — see :mod:`repro.exec.shard`).

        The windowed schedule is its own canonical run: boundaries
        snap to quiesce points, and the un-fired arrival stubs at each
        boundary are carried in the checkpoint payload and re-injected
        (clamped to the post-quiesce clock) by the next window. Both
        the forward pass and the replay workers execute **this same
        method on a freshly constructed accelerator**, so the two
        phases agree by construction and the merged artifact is
        byte-identical across worker counts, caching and kill/resume.

        Args:
            load: Offered load fraction, as in :meth:`run`.
            requests: *Total* requests across all windows; window ``k``
                runs until ``requests·(k+1)//windows`` cumulative
                completions.
            windows: Number of windows in the schedule (W ≥ 1).
            index: This window's position, ``0 ≤ index < windows``.
            seed: Arrival-process seed (window 0 creates the stream;
                later windows restore it from ``resume``).
            resume: Boundary payload produced by window ``index-1``
                (required iff ``index > 0``).
            on_restore: Zero-argument callback invoked right after the
                boundary state is restored, before any event runs —
                the replay worker primes its observation baselines
                here (:meth:`repro.eval.runner.ExperimentCapture.prime`).
            max_events: Hard safety stop for the event loop.

        Returns:
            ``(payload, report)`` — the boundary payload for the next
            window (every window produces one; the final window's is
            the end-state payload whose digest closes the checksum
            chain) and the :class:`SimulationReport`, ``None`` except
            for the final window.
        """
        if load <= 0:
            raise ValueError("load must be positive")
        if requests <= 0:
            raise ValueError("windowed runs need an explicit request count")
        if windows < 1:
            raise ValueError(f"need at least one window, got {windows}")
        if not 0 <= index < windows:
            raise ValueError(f"window index {index} outside [0, {windows})")
        if (resume is None) != (index == 0):
            raise ValueError(
                "window 0 starts fresh (resume=None); every later "
                "window requires its predecessor's boundary payload"
            )
        if self.slo_guard is not None:
            # The guard's persistent ticker would be re-armed by
            # from_state on top of the constructor's arming — and the
            # quiesce boundary would carry it live. Load points never
            # install a guard; sharded serve goes through the fleet
            # router instead.
            raise SnapshotError(
                "windowed execution does not support the SLO guard"
            )

        rate = load * self.capacity_requests_per_cycle()
        arrivals: ArrivalProcess = PoissonArrivals(rate, seed=seed)
        if self.fault_plan is not None and self.fault_plan.requests.enabled:
            arrivals = FaultyArrivals(
                arrivals, self.fault_plan, self.fault_counters
            )

        stop_submitting = [False]
        block = 32

        def _submit() -> None:
            if stop_submitting[0]:
                return
            self.dispatcher.submit()

        def _tail() -> None:
            if stop_submitting[0]:
                return
            self.dispatcher.submit()
            _admit_block()

        def _admit_block() -> None:
            gaps = arrivals.next_gaps(block)
            t = self.sim.now
            for gap in gaps[:-1]:
                t += gap
                self.sim.at_call(t, _submit)
            self.sim.at_call(t + gaps[-1], _tail)

        kinds = {"submit": _submit, "tail": _tail}
        if index == 0:
            if self.training_engine is not None:
                if not self.training_engine._started:
                    self.training_engine.start()
            _admit_block()
        else:
            assert resume is not None
            self.from_state(resume["accelerator"])
            arrivals.from_state(resume["arrivals"])
            if on_restore is not None:
                on_restore()
            # Re-inject the boundary's un-fired arrival stubs with
            # their original sequence numbers; entries the quiesce
            # drain overtook are clamped to now, identically in both
            # phases (part of the windowed-schedule contract).
            self.sim.schedule_anonymous(
                (float(entry["time"]), int(entry["seq"]),
                 kinds[entry["kind"]])
                for entry in resume["pending"]
            )

        target = (requests * (index + 1)) // windows
        start_events = self.sim.events_processed
        slice_cycles = max(self.batch_service_cycles(), 1000.0)
        while self.engine.requests_completed < target:
            if self.sim.events_processed - start_events > max_events:
                raise RuntimeError(
                    "simulation exceeded its event budget; the offered "
                    "load may be far beyond saturation"
                )
            if self.sim.peek() is None:
                raise RuntimeError("simulation drained before completing")
            self.sim.run(
                until=self.sim.now + slice_cycles,
                max_events=max_events,
            )

        report: Optional[SimulationReport] = None
        if index == windows - 1:
            stop_submitting[0] = True
            self.dispatcher.flush()
            report = self._report(load)
            # Discard the now-inert arrival stubs and drain to the same
            # quiescent end state in every phase, so the end payload's
            # digest is well defined and closes the checksum chain.
            self.sim.drain_anonymous(matching=(_submit, _tail))
        else:
            # Extract the live arrival stubs *before* quiescing —
            # quiesce would otherwise fire them into the dispatcher.
            pending = self.sim.drain_anonymous(matching=(_submit, _tail))
            tails = sum(1 for _, _, cb in pending if cb is _tail)
            if tails != 1:
                raise SnapshotError(
                    f"expected exactly one pending admission tail at "
                    f"the window boundary, found {tails}"
                )

        self.quiesce(max_events=max_events)
        payload = {
            "accelerator": self.to_state(),
            "arrivals": arrivals.to_state(),
            "pending": [] if report is not None else [
                {
                    "time": time,
                    "seq": seq,
                    "kind": "tail" if cb is _tail else "submit",
                }
                for time, seq, cb in pending
            ],
        }
        return payload, report

    def run_profile(
        self,
        loads: "list[float]",
        dwell_s: float,
        seed: int = 0,
        max_events: int = 50_000_000,
    ) -> "list[SimulationReport]":
        """Drive a time-varying load profile in one continuous run.

        Unlike :meth:`run`, which measures one steady load with a fresh
        accelerator, this replays a profile (e.g. a diurnal swing or a
        spike) against *persistent* state: queues, in-flight batches and
        the training pipeline carry over between buckets, so guard
        dynamics at load transitions are visible. One report is
        returned per bucket, measured over that bucket's window only.

        Args:
            loads: Offered load fraction per bucket (0 = no arrivals).
            dwell_s: Wall-clock duration of each bucket.
            seed: Arrival randomness seed.
            max_events: Safety stop across the whole profile.
        """
        if not loads:
            raise ValueError("profile needs at least one bucket")
        if dwell_s <= 0:
            raise ValueError("dwell must be positive")
        if self.training_engine is not None and not self.training_engine._started:
            self.training_engine.start()

        dwell_cycles = self.config.seconds_to_cycles(dwell_s)
        capacity = self.capacity_requests_per_cycle()
        rng_arrivals = PoissonArrivals(max(capacity, 1e-12), seed=seed)
        start_events = self.sim.events_processed
        reports: "list[SimulationReport]" = []
        current_load = [0.0]
        arrival_event = [None]

        def _arrive() -> None:
            if current_load[0] <= 0:
                arrival_event[0] = None
                return
            self.dispatcher.submit()
            # Thin the unit-rate Poisson stream to the bucket's load.
            gap = rng_arrivals.next_gap() / current_load[0]
            arrival_event[0] = self.sim.after(gap, _arrive)

        class _Snapshot:
            def __init__(snap, outer):
                snap.now = outer.sim.now
                snap.completed = outer.engine.requests_completed
                snap.submitted = outer.dispatcher.requests_submitted
                snap.batches = outer.engine.batches_completed
                snap.incomplete = outer.dispatcher.incomplete_batches
                snap.latency_count = outer.engine.latency.count
                snap.inf_ops = outer.mmu.throughput_by_context.get("inference")
                snap.inf_total = snap.inf_ops.total_ops if snap.inf_ops else 0.0
                trn = outer.mmu.throughput_by_context.get("training")
                snap.train_total = trn.total_ops if trn else 0.0
                snap.iterations = (
                    outer.training_engine.iterations_completed
                    if outer.training_engine else 0
                )

        for load in loads:
            before = _Snapshot(self)
            current_load[0] = load
            if load > 0 and arrival_event[0] is None:
                arrival_event[0] = self.sim.after(
                    rng_arrivals.next_gap() / load, _arrive
                )
            self.sim.run(until=self.sim.now + dwell_cycles)
            if self.sim.events_processed - start_events > max_events:
                raise RuntimeError("profile exceeded its event budget")

            window = self.sim.now - before.now
            latencies = self.engine.latency.samples_since(before.latency_count)
            no_sample = self._no_sample_latency_us(
                self.dispatcher.requests_submitted - before.submitted
            )
            if self.slo_guard is not None:
                self.slo_guard.flush()
            inf_meter = self.mmu.throughput_by_context.get("inference")
            inf_total = inf_meter.total_ops if inf_meter else 0.0
            trn_meter = self.mmu.throughput_by_context.get("training")
            train_total = trn_meter.total_ops if trn_meter else 0.0
            to_top_s = self.config.frequency_hz / 1e12 / max(window, 1e-9)
            reports.append(
                SimulationReport(
                    config_name=self.config.name,
                    load=load,
                    duration_cycles=window,
                    frequency_hz=self.config.frequency_hz,
                    requests_submitted=(
                        self.dispatcher.requests_submitted - before.submitted
                    ),
                    requests_completed=(
                        self.engine.requests_completed - before.completed
                    ),
                    batches_completed=(
                        self.engine.batches_completed - before.batches
                    ),
                    incomplete_batches=(
                        self.dispatcher.incomplete_batches - before.incomplete
                    ),
                    p50_latency_us=(
                        self.config.cycles_to_us(
                            inf_aware_percentile(latencies, 50)
                        )
                        if latencies else no_sample
                    ),
                    p99_latency_us=(
                        self.config.cycles_to_us(
                            inf_aware_percentile(latencies, 99)
                        )
                        if latencies else no_sample
                    ),
                    mean_latency_us=(
                        self.config.cycles_to_us(float(np.mean(latencies)))
                        if latencies else no_sample
                    ),
                    max_latency_us=(
                        self.config.cycles_to_us(float(np.max(latencies)))
                        if latencies else no_sample
                    ),
                    inference_top_s=(inf_total - before.inf_total) * to_top_s,
                    training_top_s=(train_total - before.train_total) * to_top_s,
                    training_iterations=(
                        (self.training_engine.iterations_completed
                         if self.training_engine else 0) - before.iterations
                    ),
                    events_processed=self.sim.events_processed,
                    rejected_requests=self.fault_counters.rejected_requests,
                    request_timeouts=self.fault_counters.request_timeouts,
                    faults=self.fault_counters.snapshot(),
                )
            )
        return reports

    def run_idle(self, duration_s: float) -> SimulationReport:
        """Run with no inference arrivals — training harvests the whole
        accelerator (the zero-load end of Figure 9)."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        if self.training_engine is not None and not self.training_engine._started:
            self.training_engine.start()
        self.sim.run(until=self.sim.now + self.config.seconds_to_cycles(duration_s))
        return self._report(0.0)

    @staticmethod
    def _no_sample_latency_us(submitted: int) -> float:
        """Latency placeholder when a window recorded no completions.

        Offered traffic with zero completions is a *failed* run — its
        tail latency is unbounded, so report ``inf`` (``meets_target``
        can then never vacuously pass). No traffic at all is merely
        unmeasured: ``nan``.
        """
        return math.inf if submitted > 0 else math.nan

    def _report(self, load: float) -> SimulationReport:
        window = self.sim.now
        has_latency = self.engine.latency.count > 0
        no_sample = self._no_sample_latency_us(
            self.dispatcher.requests_submitted
        )
        if self.slo_guard is not None:
            self.slo_guard.flush()
        training_iters = (
            self.training_engine.iterations_completed
            if self.training_engine is not None else 0
        )
        return SimulationReport(
            config_name=self.config.name,
            load=load,
            duration_cycles=window,
            frequency_hz=self.config.frequency_hz,
            requests_submitted=self.dispatcher.requests_submitted,
            requests_completed=self.engine.requests_completed,
            batches_completed=self.engine.batches_completed,
            incomplete_batches=self.dispatcher.incomplete_batches,
            p50_latency_us=(
                self.config.cycles_to_us(self.engine.latency.percentile(50.0))
                if has_latency else no_sample
            ),
            p99_latency_us=(
                self.config.cycles_to_us(self.engine.latency.p99())
                if has_latency else no_sample
            ),
            mean_latency_us=(
                self.config.cycles_to_us(self.engine.latency.mean())
                if has_latency else no_sample
            ),
            max_latency_us=(
                self.config.cycles_to_us(self.engine.latency.max())
                if has_latency else no_sample
            ),
            inference_top_s=self.mmu.context_top_s("inference", window),
            training_top_s=self.mmu.context_top_s("training", window),
            training_iterations=training_iters,
            cycle_breakdown=self.mmu.breakdown(window) if window > 0 else {},
            dram_gb_s=self.hbm.achieved_gb_s(window),
            dram_utilization=self.hbm.utilization(window),
            events_processed=self.sim.events_processed,
            rejected_requests=self.fault_counters.rejected_requests,
            request_timeouts=self.fault_counters.request_timeouts,
            faults=self.fault_counters.snapshot(),
        )

    # ------------------------------------------------------------------
    # Run artifacts
    # ------------------------------------------------------------------

    def run_report(
        self, sim_report: SimulationReport, name: str, kind: str = "accelerator"
    ) -> RunReport:
        """Package one measured run as the structured JSON artifact.

        Bundles the :class:`SimulationReport` headline numbers with the
        full metrics-registry snapshot, the span aggregates and (when a
        profiler is attached) the deterministic kernel figures. The
        result serializes byte-identically for identically seeded runs.
        """
        profile = (
            self.profiler.deterministic_metrics()
            if self.profiler is not None
            else {}
        )
        return report_from_simulation(
            name,
            sim_report,
            kind=kind,
            config={
                "scheduler": type(self.scheduler).__name__,
                "batch_slots": self.batch_slots,
                "queue_threshold": self.queue_threshold,
            },
            metrics=self.obs.snapshot(),
            spans=self.spans.summary(),
            profile=profile,
        )
