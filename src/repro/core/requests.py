"""Request and batch records flowing through the front-end."""

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class InferenceRequest:
    """One client inference request.

    Cycle timestamps are stamped as the request moves through the
    front-end; latency is completion − arrival, the quantity whose 99th
    percentile the paper's service-level objective constrains.
    """

    request_id: int
    arrival_cycle: float
    batched_cycle: Optional[float] = None
    completion_cycle: Optional[float] = None
    #: Times this request was re-admitted after a queue-deadline expiry
    #: (admission control with retries). Latency always measures from
    #: the original arrival, so retries pay their full wait.
    retries: int = 0
    #: Set when the request exhausted its deadline budget and was
    #: abandoned; it never completes and never records a latency.
    timed_out: bool = False
    #: Set when the admission queue shed this request on arrival.
    rejected: bool = False
    #: Owning tenant for multi-tenant dispatch (``repro.serve``);
    #: ``None`` on the single-tenant path.
    tenant: Optional[str] = None

    @property
    def latency_cycles(self) -> float:
        if self.completion_cycle is None:
            raise ValueError(f"request {self.request_id} not yet complete")
        return self.completion_cycle - self.arrival_cycle

    @property
    def formation_wait_cycles(self) -> float:
        if self.batched_cycle is None:
            raise ValueError(f"request {self.request_id} not yet batched")
        return self.batched_cycle - self.arrival_cycle


@dataclass
class Batch:
    """A formed inference batch: real requests padded with dummies.

    The request dispatcher pads incomplete batches with dummy requests
    whose results are disposed (paper §3.1); their cycles show up in
    Figure 8's "dummy" category.
    """

    batch_id: int
    requests: List[InferenceRequest] = field(default_factory=list)
    slots: int = 0
    formed_cycle: float = 0.0
    #: When the batch first entered the datapath (span tracing's
    #: ``request.execute`` start); ``None`` while queued.
    started_cycle: Optional[float] = None
    completion_cycle: Optional[float] = None

    @property
    def real_count(self) -> int:
        return len(self.requests)

    @property
    def dummy_count(self) -> int:
        return self.slots - self.real_count

    @property
    def is_padded(self) -> bool:
        return self.dummy_count > 0

    def complete(self, cycle: float) -> None:
        """Stamp the batch and all its requests complete at ``cycle``."""
        self.completion_cycle = cycle
        for request in self.requests:
            request.completion_cycle = cycle


@dataclass
class TrainingIterationRecord:
    """Bookkeeping for one completed training iteration."""

    iteration_id: int
    start_cycle: float
    completion_cycle: float
    useful_ops: float

    @property
    def duration_cycles(self) -> float:
        return self.completion_cycle - self.start_cycle
