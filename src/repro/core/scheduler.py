"""Instruction-controller scheduling policies (paper §3.2, Figure 10).

The instruction controller schedules instructions from the inference
and training contexts at instruction granularity. Equinox's hardware
*priority* scheduler round-robins the two services only while inference
queueing is low: it compares the inference queue size against a maximum
threshold defined at installation time and, during load spikes, stops
servicing training requests entirely until the spike subsides.

The *fair* scheduler round-robins regardless of queue depth (the
comparison point of Figure 10), *inference-only* disables training
(the baseline), and the *software* scheduler models a host-side control
plane that can only dispatch training at batch granularity with a long
decision turnaround — which, as §6 reports, ends up unable to schedule
training without violating the latency target.

Policies are consulted by the MMU arbiter at every grant through
:meth:`SchedulingPolicy.select_queue`.
"""

from typing import Any, Dict, Optional

INFERENCE = "inference"
TRAINING = "training"


def _alternate(last: str) -> str:
    return TRAINING if last == INFERENCE else INFERENCE


class SchedulingPolicy:
    """Grant-time arbitration between the two service contexts."""

    #: Whether a training service can make progress at all.
    allows_training: bool = True

    #: Degraded-mode override, driven by the SLO guard
    #: (:class:`repro.faults.guard.SLOGuard`): while set, training is
    #: preempted outright — no grant and no block commitment — so the
    #: whole datapath drains the inference backlog.
    degraded: bool = False

    #: Lazily created per instance (subclasses predate this and do not
    #: call ``super().__init__``), so the class attribute is a sentinel.
    _decisions: Optional[Dict[str, int]] = None

    def set_degraded(self, degraded: bool) -> None:
        self.degraded = degraded

    @property
    def decisions(self) -> Dict[str, int]:
        """Grant tally per outcome (``inference``/``training``/``idle``),
        recorded by the MMU arbiter at every arbitration."""
        if self._decisions is None:
            self._decisions = {}
        return self._decisions

    def record_decision(self, choice: Optional[str]) -> None:
        """Tally one arbitration outcome (``None`` counts as idle)."""
        key = choice if choice is not None else "idle"
        tally = self.decisions
        tally[key] = tally.get(key, 0) + 1

    def metrics(self) -> Dict[str, float]:
        """Deferred-source view for a ``MetricsRegistry``."""
        tally = self.decisions
        return {
            f"decisions.{key}": float(tally[key]) for key in sorted(tally)
        }

    def select_queue(
        self,
        inference_ready: bool,
        training_ready: bool,
        inference_backlog: int,
        last_granted: str,
    ) -> Optional[str]:
        """Which queue gets the next issue slot (None = hold idle)."""
        raise NotImplementedError

    def can_commit_training_block(
        self, inference_backlog: int, now: float
    ) -> bool:
        """Pre-issue gate used only by block-granular (software)
        scheduling; hardware policies decide at grant time instead."""
        return True

    def training_blocks_preemption(self) -> bool:
        """Whether training issues in non-preemptable blocks placed in
        the inference queue (software scheduling's batch granularity)."""
        return False

    def note_inference_activity(self, now: float) -> None:
        """Hook: policies tracking inference activity override this."""

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract): the degraded flag and
        the decision tally. Constructor parameters (thresholds,
        latencies) are config, rebuilt by the factory — policies
        tracking extra runtime state extend this."""
        return {"degraded": self.degraded, "decisions": dict(self.decisions)}

    def from_state(self, state: Dict[str, Any]) -> None:
        self.degraded = bool(state["degraded"])
        self._decisions = {
            str(key): int(value)
            for key, value in state["decisions"].items()
        }


class PriorityScheduler(SchedulingPolicy):
    """Equinox's hardware scheduler with the queue-spike guard.

    Round-robin between the services while the inference queue is below
    the threshold; inference-only when it spikes above. A training-only
    grant is also withheld during a spike — the controller dedicates
    every execution resource to the inference requests about to issue.

    Attributes:
        queue_threshold: Inference request-queue size above which
            training is paused (installation-time constant).
    """

    def __init__(self, queue_threshold: int):
        if queue_threshold < 1:
            raise ValueError("queue threshold must be positive")
        self.queue_threshold = queue_threshold

    def select_queue(
        self,
        inference_ready: bool,
        training_ready: bool,
        inference_backlog: int,
        last_granted: str,
    ) -> Optional[str]:
        if self.degraded:
            return INFERENCE if inference_ready else None
        spike = inference_backlog > self.queue_threshold
        if inference_ready and training_ready:
            if spike:
                return INFERENCE
            return _alternate(last_granted)
        if inference_ready:
            return INFERENCE
        if training_ready and not spike:
            return TRAINING
        return None

    def __repr__(self) -> str:
        return f"PriorityScheduler(queue_threshold={self.queue_threshold})"


class FairScheduler(SchedulingPolicy):
    """Round-robin between services regardless of inference queueing.

    Equal division of execution resources — the behaviour Figure 10
    shows costs ~1.3× inference throughput under the latency target,
    because training keeps taking issue slots during load spikes.
    """

    def select_queue(
        self,
        inference_ready: bool,
        training_ready: bool,
        inference_backlog: int,
        last_granted: str,
    ) -> Optional[str]:
        if self.degraded:
            return INFERENCE if inference_ready else None
        if inference_ready and training_ready:
            return _alternate(last_granted)
        if inference_ready:
            return INFERENCE
        if training_ready:
            return TRAINING
        return None

    def __repr__(self) -> str:
        return "FairScheduler()"


class InferenceOnlyScheduler(SchedulingPolicy):
    """The baseline: no training service installed."""

    allows_training = False

    def select_queue(
        self,
        inference_ready: bool,
        training_ready: bool,
        inference_backlog: int,
        last_granted: str,
    ) -> Optional[str]:
        return INFERENCE if inference_ready else None

    def __repr__(self) -> str:
        return "InferenceOnlyScheduler()"


class SoftwareScheduler(SchedulingPolicy):
    """A host-software control plane (paper §6, "Scheduling").

    Software observes queue state with a decision turnaround measured
    in microseconds (PCIe round trip + driver), and can only dispatch
    training at batch granularity — once issued, a training block is
    not preemptable, so its jobs are placed in the inference FIFO. To
    avoid violating the inference latency target it must be
    conservative: it only commits a block when the inference queue has
    been empty for a full decision interval.

    Attributes:
        decision_latency_cycles: Scheduling turnaround in cycles.
        conservative: When True (the deployable setting), require an
            empty queue plus a quiet interval; when False, commit
            greedily and let the experiment show the latency
            violations.
    """

    def __init__(self, decision_latency_cycles: float, conservative: bool = True):
        if decision_latency_cycles <= 0:
            raise ValueError("decision latency must be positive")
        self.decision_latency_cycles = decision_latency_cycles
        self.conservative = conservative
        self._last_inference_activity = 0.0

    def note_inference_activity(self, now: float) -> None:
        self._last_inference_activity = now

    def can_commit_training_block(
        self, inference_backlog: int, now: float
    ) -> bool:
        if self.degraded:
            return False
        if inference_backlog > 0:
            return False
        if not self.conservative:
            return True
        quiet = now - self._last_inference_activity
        return quiet >= self.decision_latency_cycles

    def select_queue(
        self,
        inference_ready: bool,
        training_ready: bool,
        inference_backlog: int,
        last_granted: str,
    ) -> Optional[str]:
        # Committed blocks live in the inference FIFO, so grant order is
        # plain FIFO there; the training queue stays unused.
        if inference_ready:
            return INFERENCE
        if training_ready and not self.degraded:
            return TRAINING
        return None

    def training_blocks_preemption(self) -> bool:
        return True

    def to_state(self) -> Dict[str, Any]:
        state = super().to_state()
        state["last_inference_activity"] = self._last_inference_activity
        return state

    def from_state(self, state: Dict[str, Any]) -> None:
        super().from_state(state)
        self._last_inference_activity = float(state["last_inference_activity"])

    def __repr__(self) -> str:
        return (
            f"SoftwareScheduler(decision_latency_cycles="
            f"{self.decision_latency_cycles:.0f}, "
            f"conservative={self.conservative})"
        )


def make_scheduler(
    kind: str,
    queue_threshold: int = 1,
    decision_latency_cycles: float = 1.0,
    conservative: bool = True,
) -> SchedulingPolicy:
    """Factory used by the accelerator facade.

    Args:
        kind: ``"priority"``, ``"fair"``, ``"inference_only"`` or
            ``"software"``.
        queue_threshold: Spike guard for the priority scheduler.
        decision_latency_cycles: Turnaround for the software scheduler.
        conservative: Software scheduler safety mode.
    """
    if kind == "priority":
        return PriorityScheduler(queue_threshold)
    if kind == "fair":
        return FairScheduler()
    if kind == "inference_only":
        return InferenceOnlyScheduler()
    if kind == "software":
        return SoftwareScheduler(decision_latency_cycles, conservative)
    raise ValueError(f"unknown scheduling policy {kind!r}")
