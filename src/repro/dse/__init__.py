"""Analytical design-space exploration (paper §4).

First-order area (Eq. 1), power (Eq. 2) and performance (Eq. 3) models
over the accelerator dimensions (n, m, w) and clock frequency, under
the 300 mm² die and 75 W package envelopes. The explorer sweeps the
space, extracts the Pareto frontier of throughput against latency
(Figure 6), and selects the four named configurations of Table 1
(Equinox_min / Equinox_50µs / Equinox_500µs / Equinox_none) that the
cycle-level evaluation uses.
"""

from repro.dse.tech import TechnologyModel, TSMC28
from repro.dse.area import accelerator_area_mm2, AreaBreakdown
from repro.dse.power import accelerator_power_w, PowerBreakdown
from repro.dse.performance import (
    peak_throughput_top_s,
    service_time_cycles,
    service_time_us,
)
from repro.dse.explorer import DesignPoint, DesignSpaceExplorer
from repro.dse.pareto import pareto_frontier
from repro.dse.table1 import (
    pareto_table,
    equinox_configuration,
    EQUINOX_LATENCY_CLASSES,
)

__all__ = [
    "TechnologyModel",
    "TSMC28",
    "accelerator_area_mm2",
    "AreaBreakdown",
    "accelerator_power_w",
    "PowerBreakdown",
    "peak_throughput_top_s",
    "service_time_cycles",
    "service_time_us",
    "DesignPoint",
    "DesignSpaceExplorer",
    "pareto_frontier",
    "pareto_table",
    "equinox_configuration",
    "EQUINOX_LATENCY_CLASSES",
]
