"""Area model (paper Eq. 1).

    A = m·n²·w·a_alu + A_sram + A_dram

Candidate designs exceeding the 300 mm² die are eliminated from the
sweep.
"""

from dataclasses import dataclass

from repro.dse.tech import TechnologyModel, TSMC28


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-component area of one design point, in mm²."""

    alu_mm2: float
    sram_mm2: float
    dram_mm2: float

    @property
    def total_mm2(self) -> float:
        return self.alu_mm2 + self.sram_mm2 + self.dram_mm2


def alu_area_mm2(
    n: int, m: int, w: int, encoding: str, tech: TechnologyModel = TSMC28
) -> float:
    """Aggregate MMU ALU area: m·n²·w ALUs at the encoding's density."""
    if min(n, m, w) < 1:
        raise ValueError("array dimensions must be positive")
    alus = m * n * n * w
    return alus * tech.encoding_costs(encoding).alu_area_um2 / 1e6


def accelerator_area_mm2(
    n: int, m: int, w: int, encoding: str, tech: TechnologyModel = TSMC28
) -> AreaBreakdown:
    """Evaluate Eq. 1 for one design point."""
    return AreaBreakdown(
        alu_mm2=alu_area_mm2(n, m, w, encoding, tech),
        sram_mm2=tech.sram_area_mm2,
        dram_mm2=tech.dram_area_mm2,
    )


def fits_die(
    n: int, m: int, w: int, encoding: str, tech: TechnologyModel = TSMC28
) -> bool:
    """Whether the design is within the die-area envelope."""
    return accelerator_area_mm2(n, m, w, encoding, tech).total_mm2 <= tech.die_area_mm2
