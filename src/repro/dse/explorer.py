"""Design-space sweep (paper §4.1).

"We sweep the design space by varying n and the design frequency. For a
given n and frequency, we find the largest values of m and w that are
still below the area and power envelopes." The explorer does exactly
that: for each (n, f) it scans w, solves the largest feasible m in
closed form, and keeps the best-performing (m, w) pair; the resulting
point cloud is what Figure 6 plots and the Pareto frontier summarizes.
"""

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.dse.area import accelerator_area_mm2
from repro.dse.performance import (
    lstm_step_utilization,
    peak_throughput_top_s,
    service_time_cycles,
)
from repro.dse.power import accelerator_power_w
from repro.dse.tech import FREQUENCY_GRID_HZ, TechnologyModel, TSMC28
from repro.hw.config import AcceleratorConfig

#: PE-width grid: dense at the small widths where the interesting
#: latency/throughput trades live, sparse above.
DEFAULT_W_GRID: Tuple[int, ...] = (
    1, 2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32, 40, 48, 64,
)


@dataclass(frozen=True)
class DesignPoint:
    """One feasible accelerator design with its modeled metrics."""

    n: int
    m: int
    w: int
    frequency_hz: float
    encoding: str
    throughput_top_s: float
    service_time_us: float
    area_mm2: float
    power_w: float
    bound: str  # "area" or "power" — which envelope limited m

    @property
    def frequency_mhz(self) -> float:
        return self.frequency_hz / 1e6

    def to_config(self, name: str, **overrides) -> AcceleratorConfig:
        """Materialize this point as a simulatable configuration."""
        return AcceleratorConfig(
            name=name,
            n=self.n,
            m=self.m,
            w=self.w,
            frequency_hz=self.frequency_hz,
            encoding=self.encoding,
            **overrides,
        )


class DesignSpaceExplorer:
    """Sweeps (n, f, w) under the area and power envelopes.

    Args:
        encoding: Datapath encoding to explore.
        tech: Technology model supplying the unit constants.
        n_values: Array sides to sweep (default 1..256).
        frequencies_hz: Clock grid (default the near-threshold ladder).
        w_values: PE widths to scan per point (default 1..64).
    """

    def __init__(
        self,
        encoding: str = "hbfp8",
        tech: TechnologyModel = TSMC28,
        n_values: Optional[Sequence[int]] = None,
        frequencies_hz: Sequence[float] = FREQUENCY_GRID_HZ,
        w_values: Optional[Sequence[int]] = None,
    ):
        self.encoding = encoding
        self.tech = tech
        self.n_values = list(n_values) if n_values is not None else list(range(1, 257))
        self.frequencies_hz = list(frequencies_hz)
        self.w_values = list(w_values) if w_values is not None else list(DEFAULT_W_GRID)
        if min(self.n_values, default=0) < 1 or min(self.w_values, default=0) < 1:
            raise ValueError("n and w sweeps must be positive")
        #: Width grid as float64 once — the vectorized feasibility scan
        #: runs over all widths of a (n, f) point in one shot.
        self._w_array = np.asarray(self.w_values, dtype=float)
        #: Per-frequency envelope terms: identical for every (n, w) at
        #: one operating point, so computing them per point (as the
        #: scalar path once did) was pure waste.
        self._term_cache: Dict[float, Tuple[float, float, float, float, float, float]] = {}
        #: (n, m, w, f) -> DesignPoint: area/power models are pure, and
        #: best_at/points_at callers revisit identical points.
        self._eval_cache: Dict[Tuple[int, int, int, float], DesignPoint] = {}

    # ------------------------------------------------------------------
    # Feasibility in closed form
    # ------------------------------------------------------------------

    def _envelope_terms(
        self, frequency_hz: float
    ) -> Tuple[float, float, float, float, float, float]:
        """(a_alu_mm2, area_budget, e_alu, e_byte, operand_bytes,
        p_dyn) at one operating point, memoized per frequency."""
        terms = self._term_cache.get(frequency_hz)
        if terms is None:
            tech = self.tech
            costs = tech.encoding_costs(self.encoding)
            terms = (
                costs.alu_area_um2 / 1e6,
                tech.alu_area_budget_mm2(),
                tech.alu_energy_j(self.encoding, frequency_hz),
                tech.sram_energy_j_per_byte(frequency_hz),
                costs.operand_bytes,
                tech.dynamic_power_budget_w(),
            )
            self._term_cache[frequency_hz] = terms
        return terms

    def _max_m(self, n: int, w: int, frequency_hz: float) -> Tuple[int, str]:
        """Largest m under both envelopes, and which one binds."""
        a_alu_mm2, area_budget, e_alu, e_byte, ob, p_dyn = (
            self._envelope_terms(frequency_hz)
        )
        m_area = int(area_budget // (n * n * w * a_alu_mm2))
        # P_dyn >= f·(m·n²·w·e_alu + e_byte·ob·(w·n + m·w·n + m·n))
        fixed = w * n * e_byte * ob
        per_m = n * n * w * e_alu + e_byte * ob * n * (w + 1)
        m_power = int((p_dyn / frequency_hz - fixed) // per_m)

        if m_area <= m_power:
            return m_area, "area"
        return m_power, "power"

    def _max_m_grid(self, n: int, frequency_hz: float) -> List[Tuple[int, str]]:
        """:meth:`_max_m` across the whole width grid in one vector op.

        Bit-identical to the scalar path: every term is evaluated in
        the same order on IEEE-754 doubles, so floor-division lands on
        the same integer for every width.
        """
        a_alu_mm2, area_budget, e_alu, e_byte, ob, p_dyn = (
            self._envelope_terms(frequency_hz)
        )
        w = self._w_array
        m_area = area_budget // (n * n * w * a_alu_mm2)
        fixed = w * n * e_byte * ob
        per_m = n * n * w * e_alu + e_byte * ob * n * (w + 1)
        m_power = (p_dyn / frequency_hz - fixed) // per_m
        area_binds = m_area <= m_power
        m = np.where(area_binds, m_area, m_power)
        return [
            (int(m[i]), "area" if area_binds[i] else "power")
            for i in range(len(self.w_values))
        ]

    def _evaluate(
        self, n: int, m: int, w: int, frequency_hz: float, bound: str
    ) -> DesignPoint:
        cached = self._eval_cache.get((n, m, w, frequency_hz))
        if cached is not None:
            return cached
        area = accelerator_area_mm2(n, m, w, self.encoding, self.tech)
        power = accelerator_power_w(n, m, w, frequency_hz, self.encoding, self.tech)
        point = DesignPoint(
            n=n,
            m=m,
            w=w,
            frequency_hz=frequency_hz,
            encoding=self.encoding,
            throughput_top_s=peak_throughput_top_s(n, m, w, frequency_hz),
            service_time_us=service_time_cycles(n, m, w) / frequency_hz * 1e6,
            area_mm2=area.total_mm2,
            power_w=power.total_w,
            bound=bound,
        )
        self._eval_cache[(n, m, w, frequency_hz)] = point
        return point

    # ------------------------------------------------------------------
    # Sweep
    # ------------------------------------------------------------------

    def points_at(self, n: int, frequency_hz: float) -> List[DesignPoint]:
        """All feasible (m, w) variants at one (n, f), m maximized per
        width. Every width stays in the cloud: a shallower (small-w)
        array trades peak throughput for pipeline latency, and the
        latency-constrained Table 1 picks need those variants."""
        points: List[DesignPoint] = []
        for w, (m, bound) in zip(self.w_values, self._max_m_grid(n, frequency_hz)):
            if m < 1:
                continue
            points.append(self._evaluate(n, m, w, frequency_hz, bound))
        return points

    def best_at(self, n: int, frequency_hz: float) -> Optional[DesignPoint]:
        """Highest-throughput variant at one (n, f); service time breaks
        ties toward the shallower array."""
        candidates = self.points_at(n, frequency_hz)
        if not candidates:
            return None
        return max(
            candidates,
            key=lambda p: (p.throughput_top_s, -p.service_time_us),
        )

    def sweep(
        self, executor: Optional[Any] = None, chunk: int = 8
    ) -> List[DesignPoint]:
        """All feasible points — Figure 6's cloud.

        With an ``executor`` (a :class:`repro.exec.JobRunner`), the n
        grid is fanned out in chunks of ``chunk`` as ``dse.points``
        jobs; aggregation preserves sweep order (n outer, frequency
        inner), so the result is identical to the serial loop for any
        worker count or chunking. A non-default technology model is
        not expressible in a job config, so those sweeps silently stay
        serial.
        """
        if executor is None or self.tech is not TSMC28:
            points: List[DesignPoint] = []
            for n in self.n_values:
                for f in self.frequencies_hz:
                    points.extend(self.points_at(n, f))
            return points
        from repro.exec.jobs import Job

        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        jobs = [
            Job(
                "dse.points",
                {
                    "encoding": self.encoding,
                    "n_values": self.n_values[start:start + chunk],
                    "frequencies_hz": self.frequencies_hz,
                    "w_values": self.w_values,
                },
            )
            for start in range(0, len(self.n_values), chunk)
        ]
        return [
            DesignPoint(**point)
            for batch in executor.map(jobs)
            for point in batch
        ]

    def utilization_of(self, point: DesignPoint) -> float:
        """LSTM-probe MAC utilization of a point (diagnostics)."""
        return lstm_step_utilization(point.n, point.m, point.w)
