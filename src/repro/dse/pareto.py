"""Pareto-frontier extraction over (throughput ↑, latency ↓).

A design point is Pareto-optimal when no other point offers both higher
throughput and lower (or equal) service time. Figure 6 highlights these
points; Table 1 picks named representatives off the frontier.
"""

from typing import List, Sequence

from repro.dse.explorer import DesignPoint


def pareto_frontier(points: Sequence[DesignPoint]) -> List[DesignPoint]:
    """Non-dominated subset, sorted by ascending service time.

    Dominance: point A dominates B when A is at least as good on both
    axes and strictly better on one.
    """
    ordered = sorted(
        points, key=lambda p: (p.service_time_us, -p.throughput_top_s)
    )
    frontier: List[DesignPoint] = []
    best_throughput = float("-inf")
    for point in ordered:
        if point.throughput_top_s > best_throughput:
            frontier.append(point)
            best_throughput = point.throughput_top_s
    return frontier


def dominates(a: DesignPoint, b: DesignPoint) -> bool:
    """Whether ``a`` Pareto-dominates ``b``."""
    no_worse = (
        a.throughput_top_s >= b.throughput_top_s
        and a.service_time_us <= b.service_time_us
    )
    better = (
        a.throughput_top_s > b.throughput_top_s
        or a.service_time_us < b.service_time_us
    )
    return no_worse and better
