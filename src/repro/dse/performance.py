"""Performance model (paper Eq. 3 plus the service-time estimate).

    T = 2·m·n²·w·f

Latency is estimated, as in the paper, as the service time of a batch
of n requests of the DeepBench LSTM (2048 hidden units, 25 steps): the
serial dependency chain of per-step MMU occupancy, systolic pipeline
drain and the SIMD tail. The closed forms here mirror the tile
compiler's math exactly (asserted by tests) so the sweep stays cheap.
"""

import math

#: The latency-probe workload of §4.1/§5: LSTM(2048 hidden, 25 steps).
LSTM_HIDDEN = 2048
LSTM_STEPS = 25
LSTM_GATES = 4

#: SIMD sizing used when estimating the per-step vector tail; matches
#: :attr:`repro.hw.config.AcceleratorConfig.simd_lanes`.
DEFAULT_SIMD_LANES = 2600
LSTM_SIMD_OPS_PER_HIDDEN = 26  # matches repro.models.lstm


def peak_throughput_top_s(n: int, m: int, w: int, frequency_hz: float) -> float:
    """Eq. 3 in TOp/s."""
    if min(n, m, w) < 1 or frequency_hz <= 0:
        raise ValueError("dimensions and frequency must be positive")
    return 2.0 * m * n * n * w * frequency_hz / 1e12


def lstm_step_occupancy_cycles(n: int, m: int, w: int) -> float:
    """MMU issue cycles of one LSTM step at batch = n.

    One row pass (n cycles) per K-tile per column group — the Figure 4
    tiling with tile_k = n·w and column group m·n.
    """
    k_tiles = math.ceil(LSTM_HIDDEN / (n * w))
    col_groups = math.ceil(LSTM_GATES * LSTM_HIDDEN / (m * n))
    return float(k_tiles * col_groups * n)


def service_time_cycles(
    n: int, m: int, w: int, simd_lanes: int = DEFAULT_SIMD_LANES
) -> float:
    """Unloaded batch service time in cycles on the probe LSTM.

    Per step: occupancy + pipeline drain (n·w + 2n, the fill of the
    reduction plus the array skew) + the SIMD tail (the last output
    chunk's gate math, the only vector work on the dependency chain).
    """
    occupancy = lstm_step_occupancy_cycles(n, m, w)
    drain = n * w + 2 * n
    col_groups = math.ceil(LSTM_GATES * LSTM_HIDDEN / (m * n))
    simd_total = n * LSTM_SIMD_OPS_PER_HIDDEN * LSTM_HIDDEN / simd_lanes
    simd_tail = simd_total / col_groups
    return LSTM_STEPS * (occupancy + drain + simd_tail)


def service_time_us(
    n: int, m: int, w: int, frequency_hz: float,
    simd_lanes: int = DEFAULT_SIMD_LANES,
) -> float:
    """Unloaded batch service time in microseconds."""
    return service_time_cycles(n, m, w, simd_lanes) / frequency_hz * 1e6


def lstm_step_utilization(n: int, m: int, w: int) -> float:
    """Fraction of streamed MACs landing on real LSTM matrix elements."""
    occupancy = lstm_step_occupancy_cycles(n, m, w)
    capacity = occupancy * m * n * n * w
    real = float(n) * LSTM_HIDDEN * (LSTM_GATES * LSTM_HIDDEN)
    return real / capacity
