"""Power model (paper Eq. 2).

    P = f · (m·n²·w·e_alu + e_sram·(w·n + m·w·n + m·n)) + P_dram + P_static

The three SRAM access terms are, per cycle: the activation-buffer read
feeding the broadcast ring (w·n values), the weight-buffer reads feeding
every array (m·w·n values), and the output write-back (m·n values).
Unit energies scale with the supply implied by the chosen frequency.
Candidate designs exceeding the 75 W envelope are eliminated.
"""

from dataclasses import dataclass

from repro.dse.tech import TechnologyModel, TSMC28


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-component power of one design point, in watts."""

    alu_w: float
    sram_dynamic_w: float
    sram_static_w: float
    dram_w: float

    @property
    def total_w(self) -> float:
        return self.alu_w + self.sram_dynamic_w + self.sram_static_w + self.dram_w

    @property
    def data_movement_fraction(self) -> float:
        """Share of the dynamic budget spent moving data — the quantity
        whose collapse past the knee frees power for ALUs (§4.2)."""
        dynamic = self.alu_w + self.sram_dynamic_w
        if dynamic <= 0:
            return 0.0
        return self.sram_dynamic_w / dynamic


def sram_bytes_per_cycle(n: int, m: int, w: int, operand_bytes: float) -> float:
    """Buffer traffic per cycle: activations + weights + outputs."""
    values = w * n + m * w * n + m * n
    return values * operand_bytes


def accelerator_power_w(
    n: int,
    m: int,
    w: int,
    frequency_hz: float,
    encoding: str,
    tech: TechnologyModel = TSMC28,
) -> PowerBreakdown:
    """Evaluate Eq. 2 for one design point."""
    if min(n, m, w) < 1:
        raise ValueError("array dimensions must be positive")
    costs = tech.encoding_costs(encoding)
    alus = m * n * n * w
    alu_w = frequency_hz * alus * tech.alu_energy_j(encoding, frequency_hz)
    traffic = sram_bytes_per_cycle(n, m, w, costs.operand_bytes)
    sram_w = frequency_hz * traffic * tech.sram_energy_j_per_byte(frequency_hz)
    return PowerBreakdown(
        alu_w=alu_w,
        sram_dynamic_w=sram_w,
        sram_static_w=tech.sram_static_w,
        dram_w=tech.dram_power_w,
    )


def fits_power(
    n: int,
    m: int,
    w: int,
    frequency_hz: float,
    encoding: str,
    tech: TechnologyModel = TSMC28,
) -> bool:
    """Whether the design is within the package power envelope."""
    return (
        accelerator_power_w(n, m, w, frequency_hz, encoding, tech).total_w
        <= tech.power_budget_w
    )
