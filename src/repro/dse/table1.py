"""Table 1: Pareto-optimal designs under latency constraints.

Four latency classes per encoding:

* ``min``   — the latency-optimal design (Equinox_min);
* ``50us``  — best throughput with service time under 50 µs;
* ``500us`` — best throughput under 500 µs (the paper's flagship,
  Equinox_500µs);
* ``none``  — best throughput unconstrained (Equinox_none).

:func:`equinox_configuration` materializes a class as a simulatable
:class:`~repro.hw.config.AcceleratorConfig`; results are memoized since
the sweep behind them is deterministic.
"""

import math
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.annotations import audited
from repro.dse.explorer import DesignPoint, DesignSpaceExplorer
from repro.dse.pareto import pareto_frontier
from repro.dse.tech import TechnologyModel, TSMC28
from repro.hw.config import AcceleratorConfig

#: Latency classes of Table 1, as (name, service-time bound in µs).
EQUINOX_LATENCY_CLASSES: Tuple[Tuple[str, Optional[float]], ...] = (
    ("min", None),  # latency-optimal: minimize service time outright
    ("50us", 50.0),
    ("500us", 500.0),
    ("none", math.inf),
)

_SWEEP_CACHE: Dict[Tuple[str, int], List[DesignPoint]] = {}


@audited(
    "id_value",
    reason="id(tech) keys the per-process sweep memo only; the sweep "
    "result is a pure function of (encoding, tech constants), so the "
    "identity can select a cache slot but never a different value",
)
def _sweep(
    encoding: str,
    tech: TechnologyModel,
    executor: Optional[Any] = None,
) -> List[DesignPoint]:
    key = (encoding, id(tech))
    if key not in _SWEEP_CACHE:
        _SWEEP_CACHE[key] = DesignSpaceExplorer(encoding, tech).sweep(
            executor=executor
        )
    return _SWEEP_CACHE[key]


def select_design(
    latency_class: str,
    encoding: str = "hbfp8",
    tech: TechnologyModel = TSMC28,
) -> DesignPoint:
    """Pick the Table 1 representative for one latency class."""
    bounds = dict(EQUINOX_LATENCY_CLASSES)
    if latency_class not in bounds:
        raise KeyError(
            f"unknown latency class {latency_class!r}; "
            f"choose from {[name for name, _ in EQUINOX_LATENCY_CLASSES]}"
        )
    points = _sweep(encoding, tech)
    if not points:
        raise RuntimeError(f"no feasible designs for encoding {encoding!r}")

    bound = bounds[latency_class]
    if bound is None:  # latency-optimal
        return min(
            points, key=lambda p: (p.service_time_us, -p.throughput_top_s)
        )
    feasible = [p for p in points if p.service_time_us <= bound]
    if not feasible:
        raise RuntimeError(
            f"no design meets the {latency_class} bound for {encoding!r}"
        )
    return max(
        feasible, key=lambda p: (p.throughput_top_s, -p.service_time_us)
    )


def pareto_table(
    encoding: str = "hbfp8", tech: TechnologyModel = TSMC28
) -> Dict[str, DesignPoint]:
    """The full Table 1 column for one encoding."""
    return {
        name: select_design(name, encoding, tech)
        for name, _ in EQUINOX_LATENCY_CLASSES
    }


def frontier(
    encoding: str = "hbfp8",
    tech: TechnologyModel = TSMC28,
    executor: Optional[Any] = None,
) -> List[DesignPoint]:
    """The Pareto frontier of the sweep (Figure 6's blue dots)."""
    return pareto_frontier(_sweep(encoding, tech, executor))


def design_space(
    encoding: str = "hbfp8",
    tech: TechnologyModel = TSMC28,
    executor: Optional[Any] = None,
) -> List[DesignPoint]:
    """The full best-per-(n, f) cloud (Figure 6's small dots)."""
    return list(_sweep(encoding, tech, executor))


def equinox_configuration(
    latency_class: str,
    encoding: str = "hbfp8",
    tech: TechnologyModel = TSMC28,
    **overrides,
) -> AcceleratorConfig:
    """Materialize ``Equinox_<class>`` as a simulatable configuration.

    Example:
        >>> cfg = equinox_configuration("500us")
        >>> cfg.encoding
        'hbfp8'
    """
    point = select_design(latency_class, encoding, tech)
    suffix = "" if encoding == "hbfp8" else f"_{encoding}"
    return point.to_config(f"equinox_{latency_class}{suffix}", **overrides)
