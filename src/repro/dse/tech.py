"""Technology constants for the first-order models (TSMC 28 nm).

The paper derives its constants from Synopsys DC synthesis of MMUs
(TSMC 28 nm, TCBN28HPMBWP35, 0.9 V), CACTI 6.5 scaled from 32 nm for
SRAM, an HBM vendor reference for the DRAM interface, and a
near-threshold voltage/frequency study for the energy-frequency curve.
Those tools are not redistributable, so this module carries calibrated
per-unit constants chosen to reproduce the paper's anchor points:

* hbfp8 throughput 60.2 → ~400 TOp/s from n=1 to unconstrained
  (the e_sram/e_alu ≈ 5.6 ratio that shapes the whole Pareto curve);
* bfloat16 ALUs ≈ 6× the hbfp8 energy and area (fixed point enjoys
  "up to an order of magnitude" density advantage over floating
  point);
* Table 3's component areas (185.6 mm² MMU, 45.96 mm² weight buffer,
  46.9 mm² DRAM interface) for the Equinox_500µs shape;
* the frequency column of Table 1: ALU/buffer energies scale with the
  square of the scaled supply voltage, so SRAM-power-bound small-n
  designs settle at 532 MHz while area-bound large-n designs push to
  ~610 MHz before power crosses.
"""

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: Frequency grid of the sweep (Hz): 532 MHz near-threshold up to the
#: 2.4 GHz nominal point, per the near-threshold study the paper cites.
FREQUENCY_GRID_HZ: Tuple[float, ...] = (
    532e6, 610e6, 700e6, 800e6, 1000e6, 1200e6, 1600e6, 2000e6, 2400e6,
)

F_MIN_HZ = FREQUENCY_GRID_HZ[0]
F_MAX_HZ = FREQUENCY_GRID_HZ[-1]
V_MIN = 0.52  # near-threshold supply at 532 MHz
V_NOM = 0.90  # nominal supply at 2.4 GHz


@dataclass(frozen=True)
class EncodingCosts:
    """Synthesis-derived per-ALU costs for one datapath encoding.

    Attributes:
        alu_area_um2: Area of one MAC (multiplier + accumulator slice).
        alu_energy_nominal_j: Energy of one MAC cycle at V_NOM.
        operand_bytes: Buffer bytes moved per operand.
    """

    alu_area_um2: float
    alu_energy_nominal_j: float
    operand_bytes: float


@dataclass(frozen=True)
class TechnologyModel:
    """All constants Eqs. 1–3 consume.

    Attributes:
        die_area_mm2: Area envelope (300 mm², in line with reported DNN
            accelerator dies).
        power_budget_w: Package power envelope (75 W).
        sram_mb: On-chip SRAM capacity (75 MB, §5).
        sram_area_mm2_per_mb: CACTI-derived density.
        sram_energy_nominal_j_per_byte: Access energy per byte at V_NOM.
        sram_static_w_per_mb: Leakage (the only static power modeled;
            ALU leakage is negligible, §4.1).
        dram_power_w: HBM interface power reservation (1 TB/s stack).
        dram_area_mm2: HBM PHY + controller area.
        simd_lane_area_um2: One bfloat16 SIMD lane (ALU + register-file
            slice overhead beyond the RF SRAM itself).
        simd_lane_energy_nominal_j: Per-lane-op energy at V_NOM
            including its register-file accesses.
        encodings: Per-encoding ALU costs.
    """

    die_area_mm2: float = 300.0
    power_budget_w: float = 75.0
    sram_mb: float = 75.0
    sram_area_mm2_per_mb: float = 0.918
    sram_energy_nominal_j_per_byte: float = 3.6e-12
    sram_static_w_per_mb: float = 0.06
    dram_power_w: float = 28.6
    dram_area_mm2: float = 46.9
    simd_lane_area_um2: float = 3400.0
    simd_lane_energy_nominal_j: float = 19.5e-12
    encodings: Dict[str, EncodingCosts] = field(
        default_factory=lambda: {
            "hbfp8": EncodingCosts(
                alu_area_um2=562.0,
                alu_energy_nominal_j=0.54e-12,
                operand_bytes=1.0,
            ),
            "bfloat16": EncodingCosts(
                alu_area_um2=3370.0,
                alu_energy_nominal_j=3.24e-12,
                operand_bytes=2.0,
            ),
            # The fixed-point-only inference baseline of the synthesis
            # comparison: the hbfp8 MMU minus exponent handling.
            "fixed8": EncodingCosts(
                alu_area_um2=540.0,
                alu_energy_nominal_j=0.51e-12,
                operand_bytes=1.0,
            ),
        }
    )

    # ------------------------------------------------------------------
    # Voltage/frequency scaling
    # ------------------------------------------------------------------

    def supply_voltage(self, frequency_hz: float) -> float:
        """Supply required for ``frequency_hz``.

        Near threshold, frequency is superlinear in voltage, so the
        inverse V(f) curve is steep just above the floor and flattens
        toward the nominal corner; a sublinear power law captures that
        first-order shape. The steep low end is what makes
        SRAM-power-bound designs settle at the 532 MHz floor (Table 1's
        frequency column): the first frequency step up already costs
        them more energy per access than it buys in cycle time.
        """
        if not F_MIN_HZ <= frequency_hz <= F_MAX_HZ:
            raise ValueError(
                f"frequency {frequency_hz / 1e6:.0f} MHz outside the "
                f"{F_MIN_HZ / 1e6:.0f}-{F_MAX_HZ / 1e6:.0f} MHz corner range"
            )
        span = (frequency_hz - F_MIN_HZ) / (F_MAX_HZ - F_MIN_HZ)
        return V_MIN + span**0.75 * (V_NOM - V_MIN)

    def energy_scale(self, frequency_hz: float) -> float:
        """Dynamic-energy multiplier vs the nominal corner: (V/V_nom)²."""
        v = self.supply_voltage(frequency_hz)
        return (v / V_NOM) ** 2

    # ------------------------------------------------------------------
    # Frequency-dependent unit energies
    # ------------------------------------------------------------------

    def encoding_costs(self, encoding: str) -> EncodingCosts:
        try:
            return self.encodings[encoding]
        except KeyError:
            raise KeyError(
                f"no synthesis data for encoding {encoding!r}; "
                f"available: {sorted(self.encodings)}"
            ) from None

    def alu_energy_j(self, encoding: str, frequency_hz: float) -> float:
        """Energy of one MAC cycle at the operating point."""
        return (
            self.encoding_costs(encoding).alu_energy_nominal_j
            * self.energy_scale(frequency_hz)
        )

    def sram_energy_j_per_byte(self, frequency_hz: float) -> float:
        """Buffer access energy per byte at the operating point."""
        return self.sram_energy_nominal_j_per_byte * self.energy_scale(
            frequency_hz
        )

    def simd_lane_energy_j(self, frequency_hz: float) -> float:
        return self.simd_lane_energy_nominal_j * self.energy_scale(frequency_hz)

    @property
    def sram_static_w(self) -> float:
        return self.sram_static_w_per_mb * self.sram_mb

    @property
    def sram_area_mm2(self) -> float:
        return self.sram_area_mm2_per_mb * self.sram_mb

    def alu_area_budget_mm2(self) -> float:
        """Die area left for the ALU arrays after SRAM and the DRAM
        interface take their share (Eq. 1 rearranged)."""
        return self.die_area_mm2 - self.sram_area_mm2 - self.dram_area_mm2

    def dynamic_power_budget_w(self) -> float:
        """Package power left for ALU + buffer dynamics (Eq. 2
        rearranged)."""
        return self.power_budget_w - self.dram_power_w - self.sram_static_w


#: The calibrated default technology.
TSMC28 = TechnologyModel()
