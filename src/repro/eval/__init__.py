"""Experiment harness: one module per table/figure of the paper.

Each module exposes a ``run(...)`` returning structured results and a
``render(...)`` producing the text table/series the paper reports. The
benchmarks under ``benchmarks/`` are thin wrappers that execute these
and print the output; EXPERIMENTS.md records paper-vs-measured.
"""

from repro.eval import fig2, fig6, fig7, fig8, fig9, fig10, fig11, spike
from repro.eval import table1, table2, table3
from repro.eval.runner import simulate_load_point, build_accelerator

__all__ = [
    "fig2",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "spike",
    "table1",
    "table2",
    "table3",
    "simulate_load_point",
    "build_accelerator",
]
