"""Figure 10: scheduling-policy comparison on Equinox_500µs.

Three configurations sweep offered load: inference alone (Inf),
inference plus training under fair-share scheduling, and inference
plus training under Equinox's hardware priority scheduler. Shapes to
check: training inflates p99 even at low load under both policies
(round-robin interleaving stretches service times); under the latency
target, priority scheduling sustains ~1.3× the fair scheduler's
throughput and matches the inference-only accelerator.
"""

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.eval.report import render_table
from repro.eval.runner import build_accelerator, latency_target_us, simulate_load_point
from repro.models.lstm import deepbench_lstm

DEFAULT_LOADS = (0.2, 0.4, 0.6, 0.8, 0.95)
POLICIES = (
    ("Inf", None),
    ("Inf+Train+Fair", "fair"),
    ("Inf+Train+Priority", "priority"),
)


@dataclass(frozen=True)
class Fig10Result:
    #: policy label -> list of (inference TOp/s, p99 ms, train TOp/s).
    curves: Dict[str, List[Tuple[float, float, float]]]
    latency_target_ms: float

    def max_throughput_under_target(self, label: str) -> float:
        eligible = [
            tput for tput, p99, _ in self.curves[label]
            if p99 <= self.latency_target_ms
        ]
        return max(eligible, default=0.0)

    def priority_over_fair(self) -> float:
        fair = self.max_throughput_under_target("Inf+Train+Fair")
        priority = self.max_throughput_under_target("Inf+Train+Priority")
        if fair <= 0:
            return float("inf")
        return priority / fair


def run(
    loads: Sequence[float] = DEFAULT_LOADS,
    latency_class: str = "500us",
    batches: int = 12,
    seed: int = 0,
) -> Fig10Result:
    target_ms = latency_target_us() / 1e3
    curves: Dict[str, List[Tuple[float, float, float]]] = {}
    for label, policy in POLICIES:
        series = []
        for load in loads:
            acc = build_accelerator(
                latency_class,
                training_model=deepbench_lstm() if policy else None,
                scheduler=policy or "inference_only",
            )
            report = simulate_load_point(acc, load, batches=batches, seed=seed)
            series.append(
                (
                    report.inference_top_s,
                    report.p99_latency_us / 1e3,
                    report.training_top_s,
                )
            )
        curves[label] = series
    return Fig10Result(curves=curves, latency_target_ms=target_ms)


def render(result: Fig10Result) -> str:
    rows = []
    for label, series in result.curves.items():
        for tput, p99, train in series:
            rows.append((label, f"{tput:.1f}", f"{p99:.3f}", f"{train:.1f}"))
    table = render_table(
        f"Figure 10: p99 vs inference throughput by scheduling policy "
        f"(target {result.latency_target_ms:.2f} ms)",
        ["policy", "inf TOp/s", "p99_ms", "train TOp/s"],
        rows,
    )
    summary = (
        f"priority over fair under the latency target: "
        f"{result.priority_over_fair():.2f}x (paper: 1.3x)"
    )
    return table + "\n\n" + summary
