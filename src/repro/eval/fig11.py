"""Figure 11: adaptive batching — policy, threshold, and training impact.

Three panels on Equinox_500µs:

* (a) static vs adaptive batching: p99 latency vs offered load —
  static batching's formation time dominates and violates the target
  at low load; adaptive batching bounds it;
* (b) the adaptive timeout threshold (2×–10× the service time) traded
  against p99 at swept load;
* (c) the same threshold sweep's effect on harvested training
  throughput.
"""

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.eval.report import render_series
from repro.eval.runner import build_accelerator, latency_target_us, simulate_load_point
from repro.models.lstm import deepbench_lstm

DEFAULT_LOADS = (0.08, 0.2, 0.4, 0.6, 0.8, 0.95)
DEFAULT_THRESHOLDS = (2.0, 4.0, 6.0, 8.0, 10.0)


@dataclass(frozen=True)
class Fig11Result:
    loads: List[float]
    #: (a) policy -> p99 ms per load.
    batching_p99_ms: Dict[str, List[float]]
    #: (b/c) threshold multiple -> (p99 ms, train TOp/s, incomplete frac) per load.
    threshold_curves: Dict[float, List[Tuple[float, float, float]]]
    latency_target_ms: float

    def static_violates_at_low_load(self) -> bool:
        return self.batching_p99_ms["static"][0] > self.latency_target_ms

    def adaptive_meets_at_low_load(self) -> bool:
        return self.batching_p99_ms["adaptive"][0] <= self.latency_target_ms


def run(
    loads: Sequence[float] = DEFAULT_LOADS,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    latency_class: str = "500us",
    batches: int = 12,
    seed: int = 0,
) -> Fig11Result:
    target_ms = latency_target_us() / 1e3

    batching_p99: Dict[str, List[float]] = {}
    for policy in ("static", "adaptive"):
        series = []
        for load in loads:
            acc = build_accelerator(latency_class, batching=policy)
            report = simulate_load_point(acc, load, batches=batches, seed=seed)
            series.append(report.p99_latency_us / 1e3)
        batching_p99[policy] = series

    threshold_curves: Dict[float, List[Tuple[float, float, float]]] = {}
    for threshold in thresholds:
        series = []
        for load in loads:
            acc = build_accelerator(
                latency_class,
                training_model=deepbench_lstm(),
                batch_timeout_x=threshold,
            )
            report = simulate_load_point(acc, load, batches=batches, seed=seed)
            incomplete = (
                report.incomplete_batches / report.batches_completed
                if report.batches_completed else 0.0
            )
            series.append(
                (report.p99_latency_us / 1e3, report.training_top_s, incomplete)
            )
        threshold_curves[threshold] = series
    return Fig11Result(
        loads=list(loads),
        batching_p99_ms=batching_p99,
        threshold_curves=threshold_curves,
        latency_target_ms=target_ms,
    )


def render(result: Fig11Result) -> str:
    part_a = render_series(
        f"Figure 11a: p99 (ms) vs load, static vs adaptive batching "
        f"(target {result.latency_target_ms:.2f} ms)",
        "load",
        result.loads,
        result.batching_p99_ms,
    )
    part_b = render_series(
        "Figure 11b: p99 (ms) vs load by adaptive threshold (x service time)",
        "load",
        result.loads,
        {
            f"{threshold:.0f}x": [p99 for p99, _, _ in series]
            for threshold, series in result.threshold_curves.items()
        },
    )
    part_c = render_series(
        "Figure 11c: training throughput (TOp/s) vs load by threshold",
        "load",
        result.loads,
        {
            f"{threshold:.0f}x": [train for _, train, _ in series]
            for threshold, series in result.threshold_curves.items()
        },
    )
    return "\n\n".join([part_a, part_b, part_c])
