"""Figure 2: hbfp8 vs fp32 convergence (validation error, perplexity).

The paper trains ResNet50/ImageNet and BERT/Wikipedia; the reproduction
trains laptop-scale analogs through the same functional hbfp8 GEMM
pipeline (see DESIGN.md for the substitution rationale). The claim
checked is identical: the hbfp8 curve tracks fp32 epoch for epoch.
"""

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

from repro.eval.report import render_series
from repro.train.convergence import convergence_experiment, perplexity_experiment
from repro.train.trainer import TrainingCurve


@dataclass(frozen=True)
class Fig2Result:
    classification: Dict[str, TrainingCurve]
    language_model: Dict[str, TrainingCurve]

    def final_error_gap(self) -> float:
        """|hbfp8 − fp32| final validation error, percentage points."""
        return abs(
            self.classification["hbfp8"].final_error
            - self.classification["fp32"].final_error
        )

    def final_perplexity_ratio(self) -> float:
        """hbfp8 / fp32 final perplexity (1.0 = identical)."""
        return (
            self.language_model["hbfp8"].final_perplexity
            / self.language_model["fp32"].final_perplexity
        )


def run(
    encodings: Sequence[str] = ("fp32", "hbfp8"),
    epochs: int = 12,
    lm_epochs: int = 10,
    shards: int = 1,
    executor: Optional[Any] = None,
) -> Fig2Result:
    """Run both convergence experiments.

    With ``shards > 1`` (or an ``executor``) each curve runs through
    the forward/replay/merge pipeline of :mod:`repro.exec.shard`,
    split over epoch windows. The batch order is seeded per epoch and
    evaluation never touches training dynamics, so the sharded curves
    are **bit-identical** to the serial ones — the strongest tier of
    the sharding contract, which CI checks by comparing rendered
    output across ``--shards`` values.
    """
    if shards > 1 or executor is not None:
        from repro.exec.shard import run_convergence_sharded

        return Fig2Result(
            classification=run_convergence_sharded(
                "classification", encodings, epochs, shards,
                executor=executor,
            ),
            language_model=run_convergence_sharded(
                "language_model", encodings, lm_epochs, shards,
                executor=executor,
            ),
        )
    return Fig2Result(
        classification=convergence_experiment(encodings=encodings, epochs=epochs),
        language_model=perplexity_experiment(encodings=encodings, epochs=lm_epochs),
    )


def render(result: Fig2Result) -> str:
    cls = result.classification
    epochs = next(iter(cls.values())).epochs
    part_a = render_series(
        "Figure 2a analog: validation error (%) vs epoch",
        "epoch",
        epochs,
        {enc: curve.validation_error for enc, curve in cls.items()},
    )
    lm = result.language_model
    lm_epochs = next(iter(lm.values())).epochs
    part_b = render_series(
        "Figure 2b analog: validation perplexity vs epoch",
        "epoch",
        lm_epochs,
        {enc: curve.perplexities() for enc, curve in lm.items()},
    )
    summary = (
        f"final error gap (hbfp8 - fp32): "
        f"{result.final_error_gap():.2f} points; "
        f"final perplexity ratio: {result.final_perplexity_ratio():.3f}"
    )
    return "\n\n".join([part_a, part_b, summary])
