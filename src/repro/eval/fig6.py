"""Figure 6: latency vs throughput design space, hbfp8 and bfloat16.

Plots (as text) the analytic design-space cloud and its Pareto
frontier for both encodings; the qualitative claims to check are the
sub-linear hbfp8 frontier with its knee past ~350 TOp/s, against
bfloat16's early, flat knee below ~70 TOp/s.
"""

from dataclasses import dataclass
from typing import Dict, List

from repro.dse.explorer import DesignPoint
from repro.dse.table1 import design_space, frontier
from repro.eval.report import render_table


@dataclass(frozen=True)
class Fig6Result:
    clouds: Dict[str, List[DesignPoint]]
    frontiers: Dict[str, List[DesignPoint]]

    def knee_throughput(self, encoding: str) -> float:
        """Highest frontier throughput still under 100 µs — a proxy for
        where the knee sits."""
        eligible = [
            p for p in self.frontiers[encoding] if p.service_time_us <= 100.0
        ]
        if not eligible:
            return 0.0
        return max(p.throughput_top_s for p in eligible)

    def max_throughput(self, encoding: str) -> float:
        return max(p.throughput_top_s for p in self.frontiers[encoding])


def run(encodings=("hbfp8", "bfloat16"), executor=None) -> Fig6Result:
    """``executor`` (a :class:`repro.exec.JobRunner`) fans the sweep
    behind each encoding's cloud out across worker processes; the
    result is identical either way."""
    return Fig6Result(
        clouds={enc: design_space(enc, executor=executor) for enc in encodings},
        frontiers={enc: frontier(enc, executor=executor) for enc in encodings},
    )


def render(result: Fig6Result, max_rows: int = 24) -> str:
    parts = []
    for encoding, points in result.frontiers.items():
        shown = points
        if len(shown) > max_rows:
            stride = max(1, len(shown) // max_rows)
            shown = shown[::stride] + [shown[-1]]
        rows = [
            (
                p.n, p.m, p.w, f"{p.frequency_mhz:.0f}",
                f"{p.throughput_top_s:.1f}", f"{p.service_time_us:.1f}",
                p.bound,
            )
            for p in shown
        ]
        parts.append(
            render_table(
                f"Figure 6 ({encoding}): Pareto frontier "
                f"({len(points)} frontier / "
                f"{len(result.clouds[encoding])} cloud points)",
                ["n", "m", "w", "MHz", "TOp/s", "svc_us", "bound"],
                rows,
            )
        )
    parts.append(
        "knee (<=100us) throughput: "
        + ", ".join(
            f"{enc}={result.knee_throughput(enc):.0f} TOp/s"
            for enc in result.frontiers
        )
    )
    return "\n\n".join(parts)
