"""Figure 7: inference 99th-percentile latency vs throughput.

Sweeps offered load on each Equinox configuration running inference
alone and reports (measured throughput, p99 latency) pairs. The shapes
to check: the min-latency design plateaus at low throughput; the
relaxed designs reach ~6× higher throughput; at low load the 500 µs
design's p99 is dominated by the adaptive-batching wait; hbfp8 reaches
~5-6× bfloat16's throughput under the same latency target.
"""

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.eval.report import render_table
from repro.eval.runner import (
    build_accelerator,
    contribute_capture_state,
    latency_target_us,
    simulate_load_point,
)

DEFAULT_LOADS = (0.1, 0.3, 0.5, 0.7, 0.85, 0.95)
HBFP8_CLASSES = ("min", "none", "50us", "500us")
BFLOAT16_CLASSES = ("min", "none", "500us")


@dataclass(frozen=True)
class Fig7Result:
    #: encoding -> class -> list of (throughput TOp/s, p99 ms).
    curves: Dict[str, Dict[str, List[Tuple[float, float]]]]
    latency_target_ms: Dict[str, float]

    def max_throughput_under_target(self, encoding: str, latency_class: str) -> float:
        target = self.latency_target_ms[encoding]
        eligible = [
            tput for tput, p99 in self.curves[encoding][latency_class]
            if p99 <= target
        ]
        return max(eligible, default=0.0)


def run(
    loads: Sequence[float] = DEFAULT_LOADS,
    batches: int = 12,
    encodings: Sequence[str] = ("hbfp8", "bfloat16"),
    seed: int = 0,
    executor: Optional[Any] = None,
    shards: int = 1,
) -> Fig7Result:
    """With an ``executor`` (a :class:`repro.exec.JobRunner`), every
    (class, load) point becomes an ``eval.load_point`` job; curve and
    capture aggregation stays in sweep order, so the result is the same
    for any worker count. With ``shards > 1`` every point instead runs
    as a W=``shards`` snapshot-sharded simulation
    (:mod:`repro.exec.shard`) whose window jobs fan out across the
    executor's workers — byte-identical for any worker count, cache
    state or kill/resume at a fixed ``shards``."""
    curves: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    targets: Dict[str, float] = {}
    if shards > 1:
        return _run_sharded(loads, batches, encodings, seed, executor, shards)
    if executor is not None:
        return _run_jobs(loads, batches, encodings, seed, executor)
    for encoding in encodings:
        classes = HBFP8_CLASSES if encoding == "hbfp8" else BFLOAT16_CLASSES
        targets[encoding] = latency_target_us(encoding) / 1e3
        curves[encoding] = {}
        for latency_class in classes:
            points = []
            for load in loads:
                acc = build_accelerator(latency_class, encoding)
                report = simulate_load_point(acc, load, batches=batches, seed=seed)
                points.append(
                    (report.inference_top_s, report.p99_latency_us / 1e3)
                )
            curves[encoding][latency_class] = points
    return Fig7Result(curves=curves, latency_target_ms=targets)


def _run_sharded(
    loads: Sequence[float],
    batches: int,
    encodings: Sequence[str],
    seed: int,
    executor: Optional[Any],
    shards: int,
) -> Fig7Result:
    from repro.exec.shard import run_load_point_sharded

    targets: Dict[str, float] = {}
    curves: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    for encoding in encodings:
        classes = HBFP8_CLASSES if encoding == "hbfp8" else BFLOAT16_CLASSES
        targets[encoding] = latency_target_us(encoding) / 1e3
        curves[encoding] = {}
        for latency_class in classes:
            points = []
            for load in loads:
                result = run_load_point_sharded(
                    latency_class, encoding, load, batches, shards,
                    seed=seed, executor=executor,
                )
                contribute_capture_state(result["capture"])
                points.append(
                    (result["inference_top_s"], result["p99_latency_us"] / 1e3)
                )
            curves[encoding][latency_class] = points
    return Fig7Result(curves=curves, latency_target_ms=targets)


def _run_jobs(
    loads: Sequence[float],
    batches: int,
    encodings: Sequence[str],
    seed: int,
    executor: Any,
) -> Fig7Result:
    from repro.exec.jobs import Job

    targets: Dict[str, float] = {}
    plan: List[Tuple[str, str]] = []
    jobs: List[Job] = []
    for encoding in encodings:
        classes = HBFP8_CLASSES if encoding == "hbfp8" else BFLOAT16_CLASSES
        targets[encoding] = latency_target_us(encoding) / 1e3
        for latency_class in classes:
            plan.append((encoding, latency_class))
            for load in loads:
                jobs.append(
                    Job(
                        "eval.load_point",
                        {
                            "latency_class": latency_class,
                            "encoding": encoding,
                            "load": load,
                            "batches": batches,
                        },
                        seed=seed,
                    )
                )
    results = iter(executor.map(jobs))
    curves: Dict[str, Dict[str, List[Tuple[float, float]]]] = {}
    for encoding, latency_class in plan:
        points = []
        for _ in loads:
            result = next(results)
            contribute_capture_state(result["capture"])
            points.append(
                (result["inference_top_s"], result["p99_latency_us"] / 1e3)
            )
        curves.setdefault(encoding, {})[latency_class] = points
    return Fig7Result(curves=curves, latency_target_ms=targets)


def render(result: Fig7Result) -> str:
    parts = []
    for encoding, by_class in result.curves.items():
        rows = []
        for latency_class, points in by_class.items():
            for tput, p99 in points:
                rows.append((latency_class, f"{tput:.1f}", f"{p99:.3f}"))
        parts.append(
            render_table(
                f"Figure 7 ({encoding}): p99 latency vs inference throughput "
                f"(target {result.latency_target_ms[encoding]:.2f} ms)",
                ["config", "TOp/s", "p99_ms"],
                rows,
            )
        )
    if "hbfp8" in result.curves and "bfloat16" in result.curves:
        h = result.max_throughput_under_target("hbfp8", "500us")
        b = result.max_throughput_under_target("bfloat16", "500us")
        if b > 0:
            parts.append(
                f"hbfp8 vs bfloat16 under the latency target: "
                f"{h:.0f} vs {b:.0f} TOp/s = {h / b:.2f}x (paper: up to 5.15x)"
            )
    return "\n\n".join(parts)
