"""Figure 8: MMU cycle-usage breakdown of Equinox_500µs.

At 5 %, 50 % and 95 % offered load, with and without a piggybacked
training service, every MMU cycle is attributed to working / dummy /
idle / other. The shapes to check: at 5 % load roughly half the cycles
idle and most of the rest burn on batch-padding dummies; adding
training reclaims most idle cycles; at 95 % the accelerator saturates
and training is starved out by the spike guard.
"""

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.eval.report import render_table
from repro.eval.runner import build_accelerator, simulate_load_point
from repro.models.lstm import deepbench_lstm
from repro.sim.stats import CYCLE_CATEGORIES

DEFAULT_LOADS = (0.05, 0.5, 0.95)


@dataclass(frozen=True)
class Fig8Result:
    #: (load, with_training) -> category -> fraction.
    breakdowns: Dict[Tuple[float, bool], Dict[str, float]]
    #: (load, with_training) -> training TOp/s (0 without training).
    training_top_s: Dict[Tuple[float, bool], float]

    def idle_reclaimed(self, load: float) -> float:
        """Idle-fraction drop when training is added at ``load``."""
        return (
            self.breakdowns[(load, False)]["idle"]
            - self.breakdowns[(load, True)]["idle"]
        )


def run(
    loads: Sequence[float] = DEFAULT_LOADS,
    latency_class: str = "500us",
    batches: int = 12,
    seed: int = 0,
) -> Fig8Result:
    breakdowns: Dict[Tuple[float, bool], Dict[str, float]] = {}
    training: Dict[Tuple[float, bool], float] = {}
    for load in loads:
        for with_training in (False, True):
            acc = build_accelerator(
                latency_class,
                training_model=deepbench_lstm() if with_training else None,
            )
            report = simulate_load_point(acc, load, batches=batches, seed=seed)
            breakdowns[(load, with_training)] = report.cycle_breakdown
            training[(load, with_training)] = report.training_top_s
    return Fig8Result(breakdowns=breakdowns, training_top_s=training)


def render(result: Fig8Result) -> str:
    rows = []
    for (load, with_training), breakdown in sorted(result.breakdowns.items()):
        label = "Inf+Train" if with_training else "Inf"
        rows.append(
            (
                f"{load * 100:.0f}%",
                label,
                *(f"{breakdown[c] * 100:.1f}%" for c in CYCLE_CATEGORIES),
                f"{result.training_top_s[(load, with_training)]:.1f}",
            )
        )
    return render_table(
        "Figure 8: Equinox_500us MMU cycle breakdown",
        ["load", "services", *CYCLE_CATEGORIES, "train TOp/s"],
        rows,
    )
