"""Figure 9: training throughput vs inference load.

Each Equinox configuration hosts the LSTM inference service at a swept
offered load while an LSTM training service (batch 128) harvests the
remaining cycles. The reference line is the dedicated training
accelerator that saturates compute and HBM (the paper's "maximum
achievable" throughput). Shapes to check: the relaxed designs harvest
close to the DRAM-bound maximum at low load and decline as load rises;
Equinox_min stays under ~20 % of the maximum throughout.
"""

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.dse.table1 import equinox_configuration
from repro.eval.report import render_series
from repro.eval.runner import (
    build_accelerator,
    contribute_capture_state,
    simulate_load_point,
)
from repro.models.lstm import deepbench_lstm
from repro.models.training import build_training_plan

DEFAULT_LOADS = (0.2, 0.4, 0.6, 0.8, 0.95)
DEFAULT_CLASSES = ("min", "none", "50us", "500us")


@dataclass(frozen=True)
class Fig9Result:
    loads: List[float]
    #: class -> training TOp/s per load.
    curves: Dict[str, List[float]]
    dedicated_top_s: float

    def fraction_of_max(self, latency_class: str, load: float) -> float:
        index = self.loads.index(load)
        return self.curves[latency_class][index] / self.dedicated_top_s


def run(
    loads: Sequence[float] = DEFAULT_LOADS,
    classes: Sequence[str] = DEFAULT_CLASSES,
    batches: int = 12,
    seed: int = 0,
    executor: Optional[Any] = None,
    shards: int = 1,
) -> Fig9Result:
    """With an ``executor`` each (class, load) point fans out as an
    ``eval.load_point`` job with ``training`` set; with ``shards > 1``
    every point runs as a W=``shards`` snapshot-sharded simulation
    (:mod:`repro.exec.shard`) — these are the heaviest single
    simulations in the repo, so they are where window-parallel replay
    pays off most."""
    dedicated = build_training_plan(
        deepbench_lstm(), equinox_configuration("none")
    ).dedicated_throughput_top_s()
    if shards > 1:
        from repro.exec.shard import run_load_point_sharded

        curves = {
            latency_class: [
                run_load_point_sharded(
                    latency_class, "hbfp8", load, batches, shards,
                    seed=seed, executor=executor, training=True,
                )["training_top_s"]
                for load in loads
            ]
            for latency_class in classes
        }
        return Fig9Result(
            loads=list(loads), curves=curves, dedicated_top_s=dedicated
        )
    if executor is not None:
        return _run_jobs(loads, classes, batches, seed, executor, dedicated)
    curves = {}
    for latency_class in classes:
        series = []
        for load in loads:
            acc = build_accelerator(
                latency_class, training_model=deepbench_lstm()
            )
            report = simulate_load_point(acc, load, batches=batches, seed=seed)
            series.append(report.training_top_s)
        curves[latency_class] = series
    return Fig9Result(loads=list(loads), curves=curves, dedicated_top_s=dedicated)


def _run_jobs(
    loads: Sequence[float],
    classes: Sequence[str],
    batches: int,
    seed: int,
    executor: Any,
    dedicated: float,
) -> Fig9Result:
    from repro.exec.jobs import Job

    jobs = [
        Job(
            "eval.load_point",
            {
                "latency_class": latency_class,
                "encoding": "hbfp8",
                "load": load,
                "batches": batches,
                "training": True,
            },
            seed=seed,
        )
        for latency_class in classes
        for load in loads
    ]
    results = iter(executor.map(jobs))
    curves: Dict[str, List[float]] = {}
    for latency_class in classes:
        series = []
        for _ in loads:
            result = next(results)
            contribute_capture_state(result["capture"])
            series.append(result["training_top_s"])
        curves[latency_class] = series
    return Fig9Result(loads=list(loads), curves=curves, dedicated_top_s=dedicated)


def render(result: Fig9Result) -> str:
    body = render_series(
        "Figure 9: training throughput (TOp/s) vs inference load",
        "load",
        result.loads,
        result.curves,
    )
    summary = (
        f"dedicated training accelerator reference: "
        f"{result.dedicated_top_s:.1f} TOp/s; at 60% load Equinox_500us "
        f"reaches {result.fraction_of_max('500us', 0.6) * 100:.0f}% of it "
        f"(paper: 78%), Equinox_min "
        f"{result.fraction_of_max('min', 0.6) * 100:.0f}% (paper: 19%)"
        if 0.6 in result.loads and "500us" in result.curves
        else f"dedicated reference: {result.dedicated_top_s:.1f} TOp/s"
    )
    return body + "\n\n" + summary
