"""Plain-text rendering of tables and series for the harness output."""

from typing import List, Sequence


def render_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width table with a title rule, like the paper's tables."""
    cells = [[str(h) for h in headers]] + [
        [_fmt(value) for value in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = [title, "=" * len(title)]
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    xs: Sequence[float],
    columns: "dict[str, Sequence[float]]",
) -> str:
    """One x column against named y series — a figure as text."""
    headers = [x_label] + list(columns)
    rows: List[List[object]] = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[i] for series in columns.values()])
    return render_table(title, headers, rows)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)
