"""Shared simulation plumbing for the per-figure experiments.

Besides building accelerators and running load points, this module
hosts the experiment-level observability capture: wrap an experiment in
:func:`capture_run` and every :func:`simulate_load_point` inside it
feeds one shared :class:`ExperimentCapture`, which aggregates latency
(into a bounded-memory quantile sketch), throughput, the Figure-8 cycle
breakdown and fault counters across *all* the accelerators the
experiment builds — that aggregate becomes the experiment's
:class:`repro.obs.RunReport` artifact.
"""

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from repro.analysis.annotations import audited
from repro.core.equinox import EquinoxAccelerator, SimulationReport
from repro.dse.table1 import equinox_configuration
from repro.hw.config import AcceleratorConfig
from repro.models.graph import ModelSpec
from repro.models.lstm import deepbench_lstm
from repro.obs.report import RunReport
from repro.obs.sketch import QuantileSketch
from repro.sim.stats import CYCLE_CATEGORIES

#: Batches of measurement per load point; enough for a stable p99 at
#: batch sizes in the hundreds while keeping sweeps interactive.
DEFAULT_BATCHES = 12

#: The paper's service-level objective: p99 at 10× the mean service
#: time of the workload on Equinox_500µs.
SLO_MULTIPLE = 10.0


def build_accelerator(
    latency_class: str = "500us",
    encoding: str = "hbfp8",
    inference_model: Optional[ModelSpec] = None,
    training_model: Optional[ModelSpec] = None,
    scheduler: str = "priority",
    batching: str = "adaptive",
    batch_timeout_x: float = 2.0,
    chunk_us: float = 2.0,
    config: Optional[AcceleratorConfig] = None,
) -> EquinoxAccelerator:
    """Build an Equinox instance for one named design point."""
    if config is None:
        config = equinox_configuration(latency_class, encoding)
    return EquinoxAccelerator(
        config,
        inference_model or deepbench_lstm(),
        training_model=training_model,
        scheduler=scheduler if training_model is not None else "inference_only",
        batching=batching,
        batch_timeout_x=batch_timeout_x,
        chunk_us=chunk_us,
    )


def simulate_load_point(
    accelerator: EquinoxAccelerator,
    load: float,
    batches: int = DEFAULT_BATCHES,
    seed: int = 0,
) -> SimulationReport:
    """Run one offered-load point for ``batches`` worth of requests."""
    requests = max(500, batches * accelerator.batch_slots)
    report = accelerator.run(load=load, requests=requests, seed=seed)
    if _ACTIVE_CAPTURE is not None:
        _ACTIVE_CAPTURE.observe(accelerator)
    return report


class ExperimentCapture:
    """Aggregates measurements across every accelerator an experiment
    drives, producing one :class:`RunReport` for the whole sweep.

    Accelerators are frequently reused across load points, so all
    cumulative collectors (latency samples, op meters, cycle
    accounting) are read as *deltas* keyed by accelerator identity —
    observing the same accelerator twice never double-counts.
    """

    def __init__(self, name: str):
        self.name = name
        self.latency_us = QuantileSketch()
        self.duration_cycles = 0.0
        self.frequency_hz: Optional[float] = None
        self.ops: Dict[str, float] = {"inference": 0.0, "training": 0.0}
        self.busy: Dict[str, float] = {
            c: 0.0 for c in CYCLE_CATEGORIES if c != "idle"
        }
        self.windows = 0
        self._accel_state: Dict[int, Dict[str, float]] = {}
        self._fault_totals: Dict[int, Dict[str, float]] = {}
        #: Fault-counter baselines set by :meth:`prime` — a restored
        #: accelerator carries cumulative counters whose history belongs
        #: to earlier windows, so its observation must subtract them.
        self._fault_base: Dict[int, Dict[str, float]] = {}
        self._remote_serial = 0

    @audited(
        "id_value",
        reason="id(accelerator) keys per-accelerator delta state only; "
        "the identity never reaches captured values, so the fold is a "
        "deterministic function of the observed accelerators",
    )
    def prime(self, accelerator: EquinoxAccelerator) -> None:
        """Seed delta baselines from an accelerator's *current* state
        without folding anything.

        The window-replay path of :mod:`repro.exec.shard` restores an
        accelerator mid-run: its cumulative collectors (latency history,
        op meters, cycle accounting, fault counters) already contain
        every earlier window's work, which belongs to the earlier
        windows' captures. Priming records those totals as the
        observation baseline, so the next :meth:`observe` folds exactly
        the one window this process replays.
        """
        state = self._accel_state.setdefault(id(accelerator), {})
        state["latency_idx"] = float(accelerator.engine.latency.count)
        state["now"] = accelerator.sim.now
        for context in self.ops:
            meter = accelerator.mmu.throughput_by_context.get(context)
            state[f"ops_{context}"] = (
                meter.total_ops if meter is not None else 0.0
            )
        for category, cycles in (
            accelerator.mmu.accounting.busy_cycles().items()
        ):
            state[f"busy_{category}"] = cycles
        self._fault_base[id(accelerator)] = {
            str(k): float(v)
            for k, v in accelerator.fault_counters.as_dict().items()
        }

    @audited(
        "id_value",
        reason="id(accelerator) keys per-accelerator delta state only; "
        "the identity never reaches captured values, so the fold is a "
        "deterministic function of the observed accelerators",
    )
    def observe(self, accelerator: EquinoxAccelerator) -> None:
        """Fold one accelerator's state since its last observation."""
        state = self._accel_state.setdefault(id(accelerator), {})
        config = accelerator.config

        latency = accelerator.engine.latency
        since = int(state.get("latency_idx", 0))
        for sample in latency.samples_since(since):
            self.latency_us.observe(config.cycles_to_us(sample))
        state["latency_idx"] = float(latency.count)

        now = accelerator.sim.now
        self.duration_cycles += now - state.get("now", 0.0)
        state["now"] = now

        for context in self.ops:
            meter = accelerator.mmu.throughput_by_context.get(context)
            total = meter.total_ops if meter is not None else 0.0
            key = f"ops_{context}"
            self.ops[context] += total - state.get(key, 0.0)
            state[key] = total

        for category, cycles in accelerator.mmu.accounting.busy_cycles().items():
            key = f"busy_{category}"
            self.busy[category] += cycles - state.get(key, 0.0)
            state[key] = cycles

        self.frequency_hz = config.frequency_hz
        base = self._fault_base.get(id(accelerator), {})
        self._fault_totals[id(accelerator)] = {
            str(k): float(v) - base.get(str(k), 0.0)
            for k, v in accelerator.fault_counters.as_dict().items()
        }
        self.windows += 1

    def state_dict(self) -> Dict[str, Any]:
        """The capture as JSON-able, lossless, mergeable state.

        Workers running load points in other processes return this
        through the execution engine; the parent folds each one in with
        :meth:`merge_state`, in submission order, so a fanned-out
        experiment aggregates exactly like a serial one.
        """
        return {
            "latency": self.latency_us.to_state(),
            "duration_cycles": self.duration_cycles,
            "frequency_hz": self.frequency_hz,
            "ops": dict(self.ops),
            "busy": dict(self.busy),
            "windows": self.windows,
            "fault_totals": list(self._fault_totals.values()),
        }

    def merge_state(self, state: Dict[str, Any]) -> None:
        """Fold another capture's :meth:`state_dict` into this one."""
        self.latency_us.merge_state(state["latency"])
        self.duration_cycles += float(state["duration_cycles"])
        if state.get("frequency_hz") is not None:
            self.frequency_hz = float(state["frequency_hz"])
        for context, total in state["ops"].items():
            self.ops[context] = self.ops.get(context, 0.0) + float(total)
        for category, cycles in state["busy"].items():
            self.busy[category] = self.busy.get(category, 0.0) + float(cycles)
        self.windows += int(state["windows"])
        for totals in state["fault_totals"]:
            # Remote accelerators are not objects here; give each a
            # synthetic identity so build_report sums them like locals.
            self._remote_serial += 1
            self._fault_totals[-self._remote_serial] = {
                str(key): float(value) for key, value in totals.items()
            }

    def to_state(self) -> Dict[str, Any]:
        """Snapshot-contract spelling of :meth:`state_dict`, plus the
        capture's name so :meth:`from_state` reconstructs it whole."""
        return {"name": self.name, **self.state_dict()}

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "ExperimentCapture":
        """Inverse of :meth:`to_state` — query-identical reconstruction."""
        capture = cls(str(state["name"]))
        capture.latency_us = QuantileSketch.from_state(state["latency"])
        capture.duration_cycles = float(state["duration_cycles"])
        if state.get("frequency_hz") is not None:
            capture.frequency_hz = float(state["frequency_hz"])
        capture.ops = {
            str(k): float(v) for k, v in state["ops"].items()
        }
        capture.busy = {
            str(k): float(v) for k, v in state["busy"].items()
        }
        capture.windows = int(state["windows"])
        for totals in state["fault_totals"]:
            capture._remote_serial += 1
            capture._fault_totals[-capture._remote_serial] = {
                str(key): float(value) for key, value in totals.items()
            }
        return capture

    def build_report(
        self, kind: str = "experiment", config: Optional[Dict[str, Any]] = None
    ) -> RunReport:
        """The aggregate artifact (latency ``None`` when nothing ran)."""
        if self.latency_us.count > 0:
            latency = self.latency_us.to_dict()
            latency_us: Dict[str, Optional[float]] = {
                "p50": latency["p50"],
                "p99": latency["p99"],
                "mean": latency["mean"],
                "max": latency["max"],
            }
        else:
            latency_us = {"p50": None, "p99": None, "mean": None, "max": None}

        throughput: Dict[str, float] = {}
        breakdown: Dict[str, float] = {}
        if self.duration_cycles > 0 and self.frequency_hz:
            to_top_s = self.frequency_hz / 1e12 / self.duration_cycles
            throughput = {
                context: self.ops[context] * to_top_s for context in self.ops
            }
            busy_total = 0.0
            for category, cycles in self.busy.items():
                fraction = min(1.0, cycles / self.duration_cycles)
                breakdown[category] = fraction
                busy_total += fraction
            breakdown["idle"] = max(0.0, 1.0 - busy_total)

        faults: Dict[str, float] = {}
        for totals in self._fault_totals.values():
            for key, value in totals.items():
                faults[key] = faults.get(key, 0.0) + value

        full_config = {"windows": self.windows}
        if config:
            full_config.update(config)
        return RunReport(
            name=self.name,
            kind=kind,
            config=full_config,
            latency_us=latency_us,
            throughput_top_s=throughput,
            cycle_breakdown=breakdown,
            faults={key: faults[key] for key in sorted(faults)},
            metrics={
                "latency_us": self.latency_us.to_dict()
                if self.latency_us.count else {},
                "duration_cycles": self.duration_cycles,
            },
        )


#: The capture every ``simulate_load_point`` inside :func:`capture_run`
#: reports into (module-global because the experiment modules call the
#: runner free functions, not methods on some context object).
_ACTIVE_CAPTURE: Optional[ExperimentCapture] = None


@contextmanager
def capture_run(name: str) -> Iterator[ExperimentCapture]:
    """Collect every load point run inside the block into one capture."""
    global _ACTIVE_CAPTURE
    if _ACTIVE_CAPTURE is not None:
        raise RuntimeError("experiment captures do not nest")
    capture = ExperimentCapture(name)
    _ACTIVE_CAPTURE = capture
    try:
        yield capture
    finally:
        _ACTIVE_CAPTURE = None


def contribute_capture_state(state: Dict[str, Any]) -> None:
    """Fold a worker-side capture state into the active capture.

    The parallel twin of the ``_ACTIVE_CAPTURE`` hook inside
    :func:`simulate_load_point`: experiments that fan load points out
    through :mod:`repro.exec` call this with each job's returned
    ``capture`` state, in submission order. No-op outside
    :func:`capture_run`, mirroring the serial hook.
    """
    if _ACTIVE_CAPTURE is not None:
        _ACTIVE_CAPTURE.merge_state(state)


def latency_target_us(encoding: str = "hbfp8") -> float:
    """The paper's SLO: 10× the mean LSTM service time on the 500 µs
    configuration (applied to every configuration of that encoding)."""
    reference = build_accelerator("500us", encoding)
    return SLO_MULTIPLE * reference.batch_service_us()
