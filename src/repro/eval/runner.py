"""Shared simulation plumbing for the per-figure experiments."""

from typing import Optional

from repro.core.equinox import EquinoxAccelerator, SimulationReport
from repro.dse.table1 import equinox_configuration
from repro.hw.config import AcceleratorConfig
from repro.models.graph import ModelSpec
from repro.models.lstm import deepbench_lstm

#: Batches of measurement per load point; enough for a stable p99 at
#: batch sizes in the hundreds while keeping sweeps interactive.
DEFAULT_BATCHES = 12

#: The paper's service-level objective: p99 at 10× the mean service
#: time of the workload on Equinox_500µs.
SLO_MULTIPLE = 10.0


def build_accelerator(
    latency_class: str = "500us",
    encoding: str = "hbfp8",
    inference_model: Optional[ModelSpec] = None,
    training_model: Optional[ModelSpec] = None,
    scheduler: str = "priority",
    batching: str = "adaptive",
    batch_timeout_x: float = 2.0,
    chunk_us: float = 2.0,
    config: Optional[AcceleratorConfig] = None,
) -> EquinoxAccelerator:
    """Build an Equinox instance for one named design point."""
    if config is None:
        config = equinox_configuration(latency_class, encoding)
    return EquinoxAccelerator(
        config,
        inference_model or deepbench_lstm(),
        training_model=training_model,
        scheduler=scheduler if training_model is not None else "inference_only",
        batching=batching,
        batch_timeout_x=batch_timeout_x,
        chunk_us=chunk_us,
    )


def simulate_load_point(
    accelerator: EquinoxAccelerator,
    load: float,
    batches: int = DEFAULT_BATCHES,
    seed: int = 0,
) -> SimulationReport:
    """Run one offered-load point for ``batches`` worth of requests."""
    requests = max(500, batches * accelerator.batch_slots)
    return accelerator.run(load=load, requests=requests, seed=seed)


def latency_target_us(encoding: str = "hbfp8") -> float:
    """The paper's SLO: 10× the mean LSTM service time on the 500 µs
    configuration (applied to every configuration of that encoding)."""
    reference = build_accelerator("500us", encoding)
    return SLO_MULTIPLE * reference.batch_service_us()
