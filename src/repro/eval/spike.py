"""Spike response: the priority guard in the time domain.

An extension experiment beyond the paper's steady-state figures: a
single continuous simulation replays a load step (base → spike → base)
and reports, per time bucket, how the spike guard trades training for
inference headroom and how quickly the harvest recovers — the transient
behaviour §3.2's "round-robin scheduling resumes when the inference
load spike subsides" describes.
"""

from dataclasses import dataclass
from typing import List

from repro.core.equinox import SimulationReport
from repro.eval import runner
from repro.eval.report import render_table
from repro.eval.runner import build_accelerator, latency_target_us
from repro.models.lstm import deepbench_lstm
from repro.workload.scenarios import spike_load_profile


@dataclass(frozen=True)
class SpikeResult:
    profile: List[float]
    reports: List[SimulationReport]
    latency_target_ms: float

    @property
    def spike_buckets(self) -> List[int]:
        peak = max(self.profile)
        return [i for i, v in enumerate(self.profile) if v == peak]

    def training_drop(self) -> float:
        """Harvest during the spike relative to the base before it."""
        first_spike = self.spike_buckets[0]
        base = self.reports[first_spike - 1].training_top_s
        spike = min(self.reports[i].training_top_s for i in self.spike_buckets)
        if base <= 0:
            return 0.0
        return 1.0 - spike / base

    def recovers(self, tolerance: float = 0.25) -> bool:
        """Whether the harvest returns to (1-tolerance)x base after."""
        first_spike = self.spike_buckets[0]
        last_spike = self.spike_buckets[-1]
        base = self.reports[first_spike - 1].training_top_s
        after = max(
            (r.training_top_s for r in self.reports[last_spike + 1 :]),
            default=0.0,
        )
        return after >= (1.0 - tolerance) * base

    def latency_always_under_target(self) -> bool:
        return all(
            r.p99_latency_us <= self.latency_target_ms * 1e3
            for r in self.reports
            if r.requests_completed > 0
        )


def run(
    base: float = 0.3,
    spike: float = 0.95,
    buckets: int = 8,
    spike_start: int = 3,
    spike_len: int = 2,
    dwell_s: float = 0.004,
    latency_class: str = "500us",
    seed: int = 1,
) -> SpikeResult:
    profile = spike_load_profile(
        points=buckets, base=base, spike=spike,
        spike_start=spike_start, spike_len=spike_len,
    )
    acc = build_accelerator(latency_class, training_model=deepbench_lstm())
    reports = acc.run_profile(profile, dwell_s=dwell_s, seed=seed)
    if runner._ACTIVE_CAPTURE is not None:
        # run_profile bypasses simulate_load_point; feed the capture the
        # accelerator's cumulative state once, at the end.
        runner._ACTIVE_CAPTURE.observe(acc)
    return SpikeResult(
        profile=profile,
        reports=reports,
        latency_target_ms=latency_target_us() / 1e3,
    )


def render(result: SpikeResult) -> str:
    rows = []
    for bucket, (load, report) in enumerate(zip(result.profile, result.reports)):
        rows.append(
            (
                bucket,
                f"{load:.2f}",
                f"{report.inference_top_s:.1f}",
                f"{report.training_top_s:.1f}",
                f"{report.p99_latency_us / 1e3:.2f}",
            )
        )
    table = render_table(
        f"Spike response (target {result.latency_target_ms:.2f} ms)",
        ["bucket", "load", "inf TOp/s", "train TOp/s", "p99 ms"],
        rows,
    )
    summary = (
        f"training throttled {result.training_drop() * 100:.0f}% during the "
        f"spike; harvest recovered: {result.recovers()}; latency target "
        f"held throughout: {result.latency_always_under_target()}"
    )
    return table + "\n\n" + summary
