"""Table 1: Pareto-optimal designs under latency constraints.

Renders the reproduced table next to the paper's published values so
the shape comparison (ratios, frequency choices, batching degrees) is
immediate.
"""

from dataclasses import dataclass
from typing import Dict

from repro.dse.explorer import DesignPoint
from repro.dse.table1 import EQUINOX_LATENCY_CLASSES, pareto_table
from repro.eval.report import render_table

#: Published values: class -> (n, MHz, service µs, TOp/s).
PAPER_HBFP8 = {
    "min": (1, 532, 15.6, 60.2),
    "50us": (16, 532, 49.2, 333.0),
    "500us": (143, 610, 381.0, 390.0),
    "none": (191, 610, 509.0, 400.0),
}
PAPER_BFLOAT16 = {
    "min": (1, 532, 37.3, 23.9),
    "50us": (1, 532, 37.3, 23.9),  # merged row: bfloat16 cannot batch <50µs
    "500us": (29, 610, 386.0, 63.3),
    "none": (39, 610, 510.0, 66.7),
}
PAPER = {"hbfp8": PAPER_HBFP8, "bfloat16": PAPER_BFLOAT16}


@dataclass(frozen=True)
class Table1Result:
    designs: Dict[str, Dict[str, DesignPoint]]  # encoding -> class -> point

    def throughput_ratio(self, encoding: str, latency_class: str) -> float:
        """Throughput gain of a relaxed class over the min-latency
        design — the paper's 5.53×/6.67× headline numbers."""
        table = self.designs[encoding]
        return (
            table[latency_class].throughput_top_s / table["min"].throughput_top_s
        )


def run(encodings=("hbfp8", "bfloat16")) -> Table1Result:
    return Table1Result(designs={enc: pareto_table(enc) for enc in encodings})


def render(result: Table1Result) -> str:
    parts = []
    for encoding, table in result.designs.items():
        rows = []
        for name, _bound in EQUINOX_LATENCY_CLASSES:
            point = table[name]
            paper = PAPER[encoding][name]
            rows.append(
                (
                    name, point.n, f"{point.frequency_mhz:.0f}",
                    f"{point.service_time_us:.1f}",
                    f"{point.throughput_top_s:.1f}",
                    paper[0], paper[1], paper[2], paper[3],
                )
            )
        parts.append(
            render_table(
                f"Table 1 ({encoding}): ours vs paper",
                [
                    "class", "n", "MHz", "svc_us", "TOp/s",
                    "paper_n", "paper_MHz", "paper_svc", "paper_TOp/s",
                ],
                rows,
            )
        )
    parts.append(
        "throughput gain over latency-optimal (hbfp8): "
        f"50us {result.throughput_ratio('hbfp8', '50us'):.2f}x (paper 5.53x), "
        f"500us {result.throughput_ratio('hbfp8', '500us'):.2f}x (paper 6.67x)"
    )
    return "\n\n".join(parts)
