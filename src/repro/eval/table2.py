"""Table 2: workload sensitivity (LSTM, GRU, ResNet50) on Equinox_500µs.

Per model: training throughput at 60 % inference load, maximum
inference throughput, and unloaded inference latency. Shapes to check:
LSTM and GRU deliver the same inference and training throughput despite
two orders of magnitude difference in service time; ResNet50 runs at a
fraction of peak because its lowered-convolution GEMMs tile poorly on
the large MMU.
"""

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.eval.report import render_table
from repro.eval.runner import build_accelerator, simulate_load_point
from repro.models.graph import ModelSpec
from repro.models.gru import deepbench_gru
from repro.models.lstm import deepbench_lstm
from repro.models.resnet import resnet50

#: Paper values: model -> (train TOp/s @60%, max inf TOp/s, latency ms).
PAPER = {
    "lstm": (83.4, 319.0, 0.5),
    "gru": (83.4, 319.0, 36.6),
    "resnet50": (18.0, 67.0, 1.32),
}


@dataclass(frozen=True)
class Table2Result:
    #: model key -> (train TOp/s @60% load, max inf TOp/s, latency ms).
    rows: Dict[str, Tuple[float, float, float]]

    def recurrent_throughputs_match(self, tolerance: float = 0.15) -> bool:
        """LSTM and GRU should deliver near-identical throughput."""
        lstm, gru = self.rows["lstm"], self.rows["gru"]
        return (
            abs(lstm[0] - gru[0]) <= tolerance * max(lstm[0], 1e-9)
            and abs(lstm[1] - gru[1]) <= tolerance * max(lstm[1], 1e-9)
        )


def _models(
    gru_steps: int, resnet_side: int
) -> "dict[str, tuple[ModelSpec, float, int]]":
    """model key -> (spec, compiler chunk µs, measurement batches)."""
    return {
        "lstm": (deepbench_lstm(), 2.0, 8),
        "gru": (deepbench_gru(steps=gru_steps), 20.0, 2),
        "resnet50": (resnet50(image_size=resnet_side), 4.0, 4),
    }


def run(
    latency_class: str = "500us",
    load: float = 0.6,
    gru_steps: int = 1500,
    resnet_side: int = 224,
    seed: int = 0,
) -> Table2Result:
    rows: Dict[str, Tuple[float, float, float]] = {}
    for key, (spec, chunk_us, batches) in _models(gru_steps, resnet_side).items():
        # Unloaded latency: the analytic batch service time.
        probe = build_accelerator(
            latency_class, inference_model=spec, chunk_us=chunk_us
        )
        latency_ms = probe.batch_service_us() / 1e3

        # Max inference throughput: saturating offered load, no training.
        acc = build_accelerator(latency_class, inference_model=spec, chunk_us=chunk_us)
        saturated = simulate_load_point(acc, load=1.2, batches=batches, seed=seed)
        max_inference = saturated.inference_top_s

        # Training throughput at 60 % load, same model training.
        acc = build_accelerator(
            latency_class, inference_model=spec, training_model=spec,
            chunk_us=chunk_us,
        )
        report = simulate_load_point(acc, load=load, batches=batches, seed=seed)
        rows[key] = (report.training_top_s, max_inference, latency_ms)
    return Table2Result(rows=rows)


def render(result: Table2Result) -> str:
    rows = []
    for key, (train, inf, latency) in result.rows.items():
        paper = PAPER.get(key, (float("nan"),) * 3)
        rows.append(
            (
                key, f"{train:.1f}", f"{inf:.1f}", f"{latency:.2f}",
                paper[0], paper[1], paper[2],
            )
        )
    return render_table(
        "Table 2: workload sensitivity on Equinox_500us (ours vs paper)",
        [
            "model", "train TOp/s", "max inf TOp/s", "latency ms",
            "paper_train", "paper_inf", "paper_lat",
        ],
        rows,
    )
