"""Table 3: Equinox_500µs component area and power.

Renders the synthesis proxy's component table against the published
values, plus the two headline overheads: dispatcher (controller) logic
under 1 % and the uniform-encoding (SIMD unit) overhead around 4 %
area / 13 % power.
"""

from dataclasses import dataclass
from typing import Dict

from repro.dse.table1 import equinox_configuration
from repro.eval.report import render_table
from repro.synth.report import SynthesisReport, encoding_overhead, synthesize

#: Published Table 3: component -> (area mm², power W).
PAPER = {
    "MMU": (185.60, 36.84),
    "DRAM Interface": (46.90, 28.60),
    "SIMD Unit": (13.43, 10.97),
    "Weight Buffer": (45.96, 4.28),
    "Activation Buffer": (18.27, 1.07),
    "Request Dispatcher": (0.79, 0.20),
    "Instruction Dispatcher": (0.49, 0.14),
    "Others": (6.39, 3.77),
}
PAPER_TOTAL = (313.85, 85.91)


@dataclass(frozen=True)
class Table3Result:
    report: SynthesisReport
    overheads: Dict[str, float]


def run(latency_class: str = "500us", encoding: str = "hbfp8") -> Table3Result:
    config = equinox_configuration(latency_class, encoding)
    return Table3Result(
        report=synthesize(config),
        overheads=encoding_overhead(config),
    )


def render(result: Table3Result) -> str:
    rows = []
    for comp in result.report.components:
        paper = PAPER.get(comp.name, (float("nan"), float("nan")))
        rows.append(
            (
                comp.name, f"{comp.area_mm2:.2f}", f"{comp.power_w:.2f}",
                paper[0], paper[1],
            )
        )
    rows.append(
        (
            "Total",
            f"{result.report.total_area_mm2:.2f}",
            f"{result.report.total_power_w:.2f}",
            PAPER_TOTAL[0],
            PAPER_TOTAL[1],
        )
    )
    table = render_table(
        f"Table 3: {result.report.config_name} area/power (ours vs paper)",
        ["component", "mm2", "W", "paper_mm2", "paper_W"],
        rows,
    )
    o = result.overheads
    summary = (
        f"controller overhead: {o['controller_area_overhead'] * 100:.2f}% area / "
        f"{o['controller_power_overhead'] * 100:.2f}% power (paper: <1%); "
        f"encoding overhead: {o['encoding_area_overhead'] * 100:.1f}% area / "
        f"{o['encoding_power_overhead'] * 100:.1f}% power (paper: 4% / 13%)"
    )
    return table + "\n\n" + summary
