"""repro.exec — parallel, cache-aware experiment execution.

Turns every experiment into a pure, hashable :class:`Job` and runs job
batches through a worker pool with deterministic ordered aggregation
and a content-addressed on-disk result cache:

* :mod:`repro.exec.canonical` — the one config/result serializer
  (sorted keys, numpy coercion, the obs inf/nan policy) plus the
  source-tree ``code_fingerprint`` that keys cache invalidation;
* :mod:`repro.exec.jobs` — ``Job(fn_id, config, seed, code_version)``
  and the fn_id registry workers resolve functions through;
* :mod:`repro.exec.cache` — byte-verified, schema-checked, self-
  evicting :class:`ResultCache`;
* :mod:`repro.exec.scheduler` — :class:`ProcessPoolScheduler` (worker
  reuse, bounded in-flight window, per-job timeout, bounded crash
  retries) and the :class:`JobRunner` facade experiments accept;
* :mod:`repro.exec.bench` — the pinned perf-trajectory suite behind
  ``python -m repro bench`` and its ``BENCH_<rev>.json`` schema.

The determinism guarantee: for any job batch, results are aggregated
in submission order and normalized through the canonical JSON round
trip, so ``--jobs 8``, ``--jobs 1`` and a cache replay produce
bit-identical artifacts.
"""

from repro.exec.cache import CacheStats, ResultCache, open_cache
from repro.exec.canonical import (
    canonical_json,
    code_fingerprint,
    config_digest,
)
from repro.exec.jobs import Job, available_jobs, register_job, resolve_job
from repro.exec.scheduler import (
    JobExecutionError,
    JobRunner,
    ProcessPoolScheduler,
    resolve_jobs,
    run_jobs,
)

__all__ = [
    "CacheStats",
    "Job",
    "JobExecutionError",
    "JobRunner",
    "ProcessPoolScheduler",
    "ResultCache",
    "available_jobs",
    "canonical_json",
    "code_fingerprint",
    "config_digest",
    "open_cache",
    "register_job",
    "resolve_job",
    "resolve_jobs",
    "run_jobs",
]
