"""The perf-trajectory bench harness behind ``python -m repro bench``.

Times a pinned suite of kernels — one per hot layer of the codebase —
and appends the result to the repo's performance record as a
schema-validated ``BENCH_<rev>.json``. The kernels are *pinned*: their
shapes and seeds never change between revisions, so two BENCH files
differ only by code speed (plus host noise), and "make a hot path
measurably faster" (ROADMAP) has a measurement to move.

Wall-clock timing is inherently nondeterministic, so bench results are
never cached and never enter a :class:`~repro.obs.report.RunReport`;
each kernel instead returns a deterministic *work proof* (a count or a
checksum of what it computed) that IS recorded — a kernel that got
faster by silently doing less work is visible in the proof column.
"""

import gc
import json
import os
import platform
import sys
import time
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exec.canonical import code_fingerprint

__all__ = [
    "BENCH_SCHEMA",
    "DEFAULT_DIFF_TOLERANCE",
    "default_bench_path",
    "diff_benches",
    "latest_bench_path",
    "pinned_kernels",
    "run_suite",
    "validate_bench",
    "write_bench",
]

#: Schema tag every BENCH artifact carries.
BENCH_SCHEMA = "repro.exec/bench/v1"

#: Default repeats per kernel (after one untimed warmup).
DEFAULT_REPEATS = 3

#: Default ``--diff`` regression ratio: a kernel must be slower than
#: the committed baseline by this factor before the gate fails. Wall
#: time across CI hosts is noisy, so the tolerance is deliberately
#: generous — the gate catches order-of-magnitude regressions (an
#: accidentally quadratic loop, a dropped fast path), not 10% drift.
DEFAULT_DIFF_TOLERANCE = 2.0


# ----------------------------------------------------------------------
# Pinned kernels
# ----------------------------------------------------------------------


def _kernel_dse_sweep() -> float:
    """Analytic design-space sweep: n 1..96 x full frequency/width grid
    on a fresh explorer (no memo carry-over between repeats)."""
    from repro.dse.explorer import DesignSpaceExplorer

    explorer = DesignSpaceExplorer("hbfp8", n_values=range(1, 97))
    return float(len(explorer.sweep()))


def _kernel_load_point() -> float:
    """One Figure-7 load point: Equinox_500us at 50 % offered load."""
    from repro.eval.runner import build_accelerator, simulate_load_point

    accelerator = build_accelerator("500us", "hbfp8")
    report = simulate_load_point(accelerator, 0.5, batches=2, seed=1)
    return float(report.requests_completed)


#: Pinned ``serve.route`` shape: fleet/tenant mix, request count and
#: chip-relative service time are frozen so two BENCH files time the
#: same placement + fair-share + failover traffic.
_SERVE_FLEET = 8
_SERVE_SLOTS = 8
_SERVE_SERVICE_CYCLES = 1000.0
_SERVE_REQUESTS = 4000


def _kernel_serve_route() -> float:
    """Fleet-router hot path: p2c placement, WDRR batch formation and
    one mid-run chip-kill failover over a 3-tenant SLO mix."""
    from repro.faults.plan import FaultPlan, WorkerFaultSpec
    from repro.serve.classes import TenantSpec
    from repro.serve.router import FleetRouter
    from repro.sim.engine import Simulator
    from repro.workload.loadgen import MixedArrivals, PoissonArrivals

    tenants = [
        TenantSpec("interactive", "latency-critical", 0.25),
        TenantSpec("bulk", "best-effort", 1.0),
        TenantSpec("trainer", "batch-training", 0.35),
    ]
    shares = [
        spec.slo.share(spec.name, _SERVE_SLOTS, _SERVE_SERVICE_CYCLES)
        for spec in tenants
    ]
    sim = Simulator()
    router = FleetRouter(
        sim,
        shares,
        fleet_size=_SERVE_FLEET,
        batch_slots=_SERVE_SLOTS,
        batch_service_cycles=_SERVE_SERVICE_CYCLES,
        seed=7,
        fault_plan=FaultPlan(seed=7, workers=WorkerFaultSpec(crashed=(1,))),
    )
    capacity = _SERVE_SLOTS / _SERVE_SERVICE_CYCLES
    rates = [
        spec.load_fraction * capacity * _SERVE_FLEET for spec in tenants
    ]
    mixed = MixedArrivals(
        [PoissonArrivals(rate, seed=[7, index]) for index, rate in enumerate(rates)]
    )
    remaining = _SERVE_REQUESTS

    def _schedule() -> None:
        gap, source = mixed.next_tagged()

        def _fire(source: int = source) -> None:
            nonlocal remaining
            router.submit(tenants[source].name)
            remaining -= 1
            if remaining:
                _schedule()

        sim.after(gap, _fire)

    _schedule()
    router.schedule_kills(_SERVE_REQUESTS / sum(rates))
    sim.run()
    for _ in range(8):
        if not router.outstanding_requests:
            break
        router.flush()
        sim.run()
    return float(
        sum(router.completed_by_tenant.values())
        + router.failover_redispatched
    )


def _kernel_chaos_scenario() -> float:
    """One fault-injected accelerator run (HBM ECC retries)."""
    from repro.core.equinox import EquinoxAccelerator
    from repro.dse.table1 import equinox_configuration
    from repro.faults.plan import FaultPlan, HBMFaultSpec
    from repro.models.lstm import deepbench_lstm

    model = deepbench_lstm()
    accelerator = EquinoxAccelerator(
        equinox_configuration("500us"),
        model,
        training_model=model,
        fault_plan=FaultPlan(
            seed=7, hbm=HBMFaultSpec(error_rate=0.05, max_retries=3)
        ),
    )
    report = accelerator.run(load=0.6, requests=96, seed=7)
    return float(
        report.requests_completed + report.faults.faults_injected
    )


# ----------------------------------------------------------------------
# Simulator drain-loop bench (sim.drain.reference vs sim.drain.batched)
#
# The event-loop microbench: a deterministic soup shaped like one
# Figure-7 load point's traffic — a Poisson admission process plus two
# fire-and-forget completions per arrival. The completion offsets are
# the systolic closed form's two phases for a deep tile (wavefront
# fill ~n + rows ≈ 120 cycles to issue-complete, result streaming
# ~n·w ≈ 1200 cycles to pipeline-drain), so at rate 1/8 the pending
# set sits ~180 deep — the regime a high-load Figure-7 point runs in.
# Both arms fire the same events at the same times (``next_gaps`` is
# stream-equal to scalar draws; completion offsets are constants), so
# the work proofs are identical by construction; they differ only in
# which engine scheme runs them:
#
# * ``reference`` — the pre-rewrite engine, preserved verbatim in
#   ``repro.sim.legacy``: an object heap ordered by interpreted
#   ``Event.__lt__``, one scalar RNG draw per arrival, every event
#   allocating a keyed handle, peek-then-pop scalar drain;
# * ``batched`` — the production scheme: block admission via
#   ``next_gaps`` + bulk ``at_calls`` timeline scheduling (the whole
#   block's arrivals and closed-form completions pushed at admission,
#   the per-tile stream-batching pattern), tuple-entry heap, anonymous
#   lane, batch-drained loop.
#
# Callbacks are shared module-level functions on purpose: the bench
# isolates the loop, not closure construction.
# ----------------------------------------------------------------------

_DRAIN_ARRIVALS = 2000
_DRAIN_BLOCK = 32
_DRAIN_OCCUPANCY = 120.0
_DRAIN_PIPELINE = 1200.0


def _kernel_sim_drain(batched: bool) -> float:
    from repro.workload.loadgen import PoissonArrivals

    arrivals = PoissonArrivals(rate_per_cycle=0.125, seed=50)
    counters = [0, 0, 0]  # arrivals, issues, dones

    def _issue() -> None:
        counters[1] += 1

    def _done() -> None:
        counters[2] += 1

    if batched:
        from repro.sim.engine import LOOP_BATCHED, Simulator

        sim = Simulator()

        def _submit() -> None:
            counters[0] += 1

        admitted = [1]  # arrivals scheduled so far (the seed _tail below)

        def _admit_block() -> None:
            to_admit = min(_DRAIN_BLOCK, _DRAIN_ARRIVALS - admitted[0])
            if to_admit <= 0:
                return
            admitted[0] += to_admit
            gaps = arrivals.next_gaps(to_admit)
            times = []
            t = sim.now
            for gap in gaps:
                t += gap
                times.append(t)
            sim.at_calls(times[:-1], _submit)
            sim.at_call(times[-1], _tail)
            sim.at_calls([t + _DRAIN_OCCUPANCY for t in times], _issue)
            sim.at_calls([t + _DRAIN_PIPELINE for t in times], _done)

        def _tail() -> None:
            _submit()
            _admit_block()

        seed_t = arrivals.next_gap()
        sim.at_call(seed_t, _tail)
        sim.at_call(seed_t + _DRAIN_OCCUPANCY, _issue)
        sim.at_call(seed_t + _DRAIN_PIPELINE, _done)
        sim.run(loop=LOOP_BATCHED)
    else:
        from repro.sim.legacy import Simulator as LegacySimulator

        sim = LegacySimulator()

        def _arrive() -> None:
            counters[0] += 1
            sim.after(_DRAIN_OCCUPANCY, _issue)
            sim.after(_DRAIN_PIPELINE, _done)
            if counters[0] < _DRAIN_ARRIVALS:
                sim.after(arrivals.next_gap(), _arrive)

        sim.after(arrivals.next_gap(), _arrive)
        sim.run()

    return (
        float(sim.events_processed)
        + float(counters[0] + counters[1] + counters[2])
        + round(sim.now, 6)
    )


# ----------------------------------------------------------------------
# Sharded-execution bench (sim.shard.reference vs sim.shard.fast)
#
# Prices the snapshot-sharded executor's headline: splitting one big
# simulation across W workers cuts wall-clock to the critical-path
# window. The pinned workload is one Figure-9 load point (training
# variant, Equinox_500us at 60 % load) cut into W=8 request windows.
# The forward pass and the non-critical window results are memoized at
# warmup; the timed arms differ only in how much replay work sits on
# the measured path:
#
# * ``reference`` — the serial oracle: replay every window in boundary
#   order, then merge. This is the wall-clock a one-worker run pays.
# * ``fast`` — the 8-worker makespan model: replay only the
#   critical-path window (the argmax of the forward pass's per-window
#   event counts — its honest cost signal), take the other windows'
#   results as delivered by the rest of the fleet, then do the same
#   ordered merge. Single-process CI can't time a real 8-wide fleet,
#   so the bench times exactly the serial fraction Amdahl leaves:
#   slowest window plus merge.
#
# Both arms fold byte-identical window results through the same merge,
# so their work proofs — a checksum of the merged artifact — are equal
# by construction, and a "speedup" obtained by skipping merge work or
# diverging from the digest chain is visible in the proof column.
# ----------------------------------------------------------------------

_SHARD_WINDOWS = 8
_SHARD_BATCHES = 2
_SHARD_SEED = 1
_SHARD_POINT = {
    "latency_class": "500us",
    "encoding": "hbfp8",
    "load": 0.6,
    "windows": _SHARD_WINDOWS,
    "training": True,
}


@lru_cache(maxsize=None)
def _shard_forward() -> Dict[str, Any]:
    """The memoized phase-1 pass: boundary checkpoints, the digest
    chain, and the per-window event counts (built once, at warmup)."""
    from repro.exec.shard import shard_load_forward

    return shard_load_forward(
        {**_SHARD_POINT, "batches": _SHARD_BATCHES}, _SHARD_SEED
    )


def _shard_window_config(index: int) -> Dict[str, Any]:
    forward = _shard_forward()
    return {
        **_SHARD_POINT,
        "requests": forward["requests"],
        "index": index,
        "boundary_sha": (
            None if index == 0 else forward["digests"][index - 1]
        ),
        "resume": (
            None if index == 0 else forward["checkpoints"][index - 1]
        ),
    }


@lru_cache(maxsize=None)
def _shard_cached_windows() -> Tuple[Dict[str, Any], ...]:
    """Every window replayed once at warmup — the results the fast
    arm's peer workers deliver off the measured path."""
    from repro.exec.shard import shard_load_window

    return tuple(
        shard_load_window(_shard_window_config(index), _SHARD_SEED)
        for index in range(_SHARD_WINDOWS)
    )


def _kernel_sim_shard(critical_only: bool) -> float:
    """One sharded Figure-9 load point; replay cost on the timed path
    is all W windows (reference) or just the critical one (fast)."""
    from repro.eval.runner import ExperimentCapture
    from repro.exec.canonical import config_digest
    from repro.exec.shard import ShardError, shard_load_window

    forward = _shard_forward()
    if critical_only:
        events = forward["events"]
        critical = max(range(_SHARD_WINDOWS), key=lambda i: events[i])
        results = list(_shard_cached_windows())
        results[critical] = shard_load_window(
            _shard_window_config(critical), _SHARD_SEED
        )
    else:
        results = [
            shard_load_window(_shard_window_config(index), _SHARD_SEED)
            for index in range(_SHARD_WINDOWS)
        ]

    # The same ordered merge the orchestrator performs: digest-chain
    # verification, capture fold, headline report from the last window.
    for index, result in enumerate(results):
        if result["sha_out"] != forward["digests"][index]:
            raise ShardError(f"bench window {index} broke the chain")
    merged = ExperimentCapture("load_point")
    for result in results:
        merged.merge_state(result["capture"])
    artifact = {**results[-1]["report"], "capture": merged.state_dict()}
    return float(int(config_digest(artifact)[:12], 16))


def _kernel_gemm() -> float:
    """HBFP8 datapath GEMM, 192x192 seeded operands."""
    import numpy as np

    from repro.arith.hbfp import hbfp_gemm

    rng = np.random.default_rng(42)
    a = rng.standard_normal((192, 192), dtype=np.float32)
    b = rng.standard_normal((192, 192), dtype=np.float32)
    out = hbfp_gemm(a, b)
    return float(np.abs(np.asarray(out, dtype=np.float32)).sum())


def _kernel_hbfp_quantize() -> float:
    """Block-floating-point round trip of a 512x512 seeded tensor."""
    import numpy as np

    from repro.arith.hbfp import HBFP8, hbfp_quantization_noise

    rng = np.random.default_rng(43)
    values = rng.standard_normal((512, 512), dtype=np.float32)
    return hbfp_quantization_noise(values, HBFP8)


# ----------------------------------------------------------------------
# Kernel-pair benches (repro.kernels reference vs fast)
#
# Each registered kernel pair gets two pinned entries differing only in
# the pinned backend, so every BENCH file records the reference/fast
# speedup trajectory. Operands are built once per process (memoized)
# and quantization happens outside the timed region — the entries time
# the kernel itself. Work proofs are checksums of the outputs; the
# bit-exactness contract makes the reference and fast proofs of a pair
# identical, which is itself a visible invariant in the artifact.
# ----------------------------------------------------------------------


@lru_cache(maxsize=None)
def _bfp_matmul_operands():
    import numpy as np

    from repro.arith.bfp import BFP8, BlockFloatTensor

    rng = np.random.default_rng(44)
    a = BlockFloatTensor.from_float(rng.standard_normal((256, 512)), BFP8)
    b = BlockFloatTensor.from_float(rng.standard_normal((512, 256)), BFP8)
    return a, b


def _kernel_pair_bfp_matmul(backend: str) -> float:
    """Tile-lattice BFP matmul at a Figure-2-scale shape (256x512x256)."""
    import numpy as np

    from repro.arith.bfp import bfp_matmul

    a, b = _bfp_matmul_operands()
    out = bfp_matmul(a, b, backend=backend)
    return float(np.abs(out).sum())


@lru_cache(maxsize=None)
def _quantize_operand():
    import numpy as np

    return np.random.default_rng(45).standard_normal((768, 768))


def _kernel_pair_quantize(backend: str) -> float:
    """Stochastic BFP quantization of a 768x768 tensor (seeded RNG)."""
    import numpy as np

    from repro.arith.bfp import BFP8, BlockFloatTensor

    tensor = BlockFloatTensor.from_float(
        _quantize_operand(),
        BFP8,
        rounding="stochastic",
        rng=np.random.default_rng(46),
        backend=backend,
    )
    return float(tensor.mantissas.sum()) + float(tensor.exponents.sum())


@lru_cache(maxsize=None)
def _systolic_setup():
    import numpy as np

    from repro.hw.systolic import SystolicArray

    rng = np.random.default_rng(47)
    n, w, rows = 8, 4, 32
    array = SystolicArray(n, w, rng.standard_normal((n * w, n)))
    x = rng.standard_normal((rows, n * w))
    return array, x


def _kernel_pair_systolic(backend: str) -> float:
    """Weight-stationary systolic model, n=8 w=4, 32 activation rows."""
    array, x = _systolic_setup()
    outputs, last_cycle, completion = array.run(x, backend=backend)
    return float(outputs.sum()) + float(last_cycle) + float(completion.sum())


@lru_cache(maxsize=None)
def _im2col_operand():
    import numpy as np

    return np.random.default_rng(48).standard_normal(
        (8, 16, 32, 32)
    ).astype(np.float32)


def _kernel_pair_im2col(backend: str) -> float:
    """im2col lowering of an 8x16x32x32 batch, 3x3 kernel, pad 1."""
    from repro.hw.im2col import im2col

    cols = im2col(_im2col_operand(), kernel=3, stride=1, padding=1,
                  backend=backend)
    return float(abs(cols).sum())


def _pair_entries() -> Dict[str, Tuple[str, Callable[[], float]]]:
    pairs: Dict[str, Tuple[str, Callable[[str], float]]] = {
        "kernels.bfp_matmul": (
            "BFP tile matmul 256x512x256 (fig2 scale)",
            _kernel_pair_bfp_matmul,
        ),
        "kernels.quantize": (
            "BFP stochastic quantize 768x768", _kernel_pair_quantize,
        ),
        "kernels.systolic": (
            "systolic model n=8 w=4 rows=32", _kernel_pair_systolic,
        ),
        "kernels.im2col": (
            "im2col 8x16x32x32 k3 p1", _kernel_pair_im2col,
        ),
    }
    entries: Dict[str, Tuple[str, Callable[[], float]]] = {}
    for base, (description, fn) in pairs.items():
        for backend in ("reference", "fast"):
            entries[f"{base}.{backend}"] = (
                f"{description} [{backend}]",
                (lambda fn=fn, backend=backend: fn(backend)),
            )
    return entries


def pinned_kernels() -> Dict[str, Tuple[str, Callable[[], float]]]:
    """``name -> (description, zero-arg kernel)`` in canonical order."""
    suite = {
        "dse.sweep": (
            "design-space sweep, n 1..96, full f/w grid", _kernel_dse_sweep,
        ),
        "eval.load_point": (
            "fig7 load point, Equinox_500us @ 0.5 load", _kernel_load_point,
        ),
        "sim.drain.reference": (
            f"event soup {_DRAIN_ARRIVALS} arrivals, keyed lane + "
            "reference loop",
            lambda: _kernel_sim_drain(False),
        ),
        "sim.drain.batched": (
            f"event soup {_DRAIN_ARRIVALS} arrivals, anonymous lane + "
            "batched loop",
            lambda: _kernel_sim_drain(True),
        ),
        "sim.shard.reference": (
            f"fig9 load point, W={_SHARD_WINDOWS} windows, serial "
            "replay + merge",
            lambda: _kernel_sim_shard(False),
        ),
        "sim.shard.fast": (
            f"fig9 load point, W={_SHARD_WINDOWS} windows, "
            "critical-path window + merge",
            lambda: _kernel_sim_shard(True),
        ),
        "chaos.scenario": (
            "fault-injected run, HBM ECC 5% err", _kernel_chaos_scenario,
        ),
        "serve.route": (
            f"fleet router, {_SERVE_FLEET} chips x {_SERVE_REQUESTS} "
            "reqs, 3-tenant mix + chip kill",
            _kernel_serve_route,
        ),
        "arith.gemm": (
            "hbfp8 GEMM 192x192", _kernel_gemm,
        ),
        "arith.hbfp_quantize": (
            "BFP round trip 512x512", _kernel_hbfp_quantize,
        ),
    }
    suite.update(_pair_entries())
    return suite


# ----------------------------------------------------------------------
# Checkpoint overhead
#
# The ``checkpoint`` section prices the crash-consistency machinery:
# the same executor-backed design-space sweep is timed twice — once
# bare, once with the journal + periodic checkpoint barrier at the
# default ``--checkpoint-every`` — and the committed artifact records
# the ratio. The acceptance budget is < 5% overhead: every journal
# append is an fsync, so this entry is what keeps the barrier honest
# as job granularity or journal format evolve.
# ----------------------------------------------------------------------

#: Pinned checkpoint workload: a Figure-7 load curve — the
#: simulation-heavy experiment jobs the checkpoint machinery targets.
#: Load grid and batch count are frozen so two BENCH files price the
#: same journal traffic.
_CHECKPOINT_LOADS = 12
_CHECKPOINT_BATCHES = 8


def _checkpoint_jobs() -> List[Any]:
    from repro.exec.jobs import Job

    return [
        Job(
            "eval.load_point",
            {
                "latency_class": "500us",
                "encoding": "hbfp8",
                "load": round(0.08 * (index + 1), 2),
                "batches": _CHECKPOINT_BATCHES,
            },
            seed=1,
        )
        for index in range(_CHECKPOINT_LOADS)
    ]


def _checkpoint_run(checkpoint_dir: Optional[str] = None) -> float:
    """One executor-backed load curve; checkpointed iff a dir is given.

    Mirrors the real ``--checkpoint-dir`` path: journal append (flush +
    fsync) per job, checkpoint save every ``DEFAULT_CHECKPOINT_EVERY``
    executed jobs.
    """
    from repro.exec.cli import DEFAULT_CHECKPOINT_EVERY
    from repro.exec.scheduler import JobRunner

    runner = JobRunner(
        jobs=1,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=(
            DEFAULT_CHECKPOINT_EVERY if checkpoint_dir is not None else 0
        ),
    )
    if runner.checkpoint_store is not None:
        store, scheduler = runner.checkpoint_store, runner.scheduler
        runner.set_checkpoint_cb(lambda: store.save(
            "bench", {"executed": scheduler.counters["executed"]},
            step=scheduler.counters["executed"],
        ))
    results = runner.map(_checkpoint_jobs())
    return float(sum(r["requests_completed"] for r in results))


#: The barrier price is a ratio of two ~600 ms walls, judged against a
#: 5% budget — ~30 ms of signal. Shared CI boxes drift more than that
#: between adjacent runs, so the section always takes at least this
#: many interleaved pairs and lets best-of-N find the floor of each
#: arm, whatever ``--repeats`` the kernel sections use.
_CHECKPOINT_MIN_REPEATS = 5


def _checkpoint_overhead(repeats: int) -> Dict[str, Any]:
    """Time the pinned load curve bare vs checkpointed
    (best-of-repeats, interleaved so drift hits both arms equally)."""
    import shutil
    import tempfile

    from repro.exec.cli import DEFAULT_CHECKPOINT_EVERY

    repeats = max(repeats, _CHECKPOINT_MIN_REPEATS)
    work = _checkpoint_run()  # warmup: imports, simulator caches
    tmp = tempfile.mkdtemp(prefix="bench-ckpt-")
    try:
        _checkpoint_run(tmp)  # warmup the journal/store path too —
        # its first run pays one-time import and file-creation costs
        # that belong to neither arm's steady state
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    plain: List[float] = []
    checkpointed: List[float] = []
    for _ in range(repeats):
        started = time.perf_counter()
        _checkpoint_run()
        plain.append(time.perf_counter() - started)
        tmp = tempfile.mkdtemp(prefix="bench-ckpt-")
        try:
            started = time.perf_counter()
            _checkpoint_run(tmp)
            checkpointed.append(time.perf_counter() - started)
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
    plain_s = min(plain)
    checkpointed_s = min(checkpointed)
    return {
        "description": (
            f"fig7 load curve, {_CHECKPOINT_LOADS} jobs, journal + "
            f"checkpoint every {DEFAULT_CHECKPOINT_EVERY}"
        ),
        "jobs": _CHECKPOINT_LOADS,
        "checkpoint_every": DEFAULT_CHECKPOINT_EVERY,
        "repeats": repeats,
        "plain_s": plain_s,
        "checkpointed_s": checkpointed_s,
        "overhead": checkpointed_s / plain_s - 1.0,
        "work": work,
    }


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------


def run_suite(
    repeats: int = DEFAULT_REPEATS,
    kernels: Optional[List[str]] = None,
) -> Dict[str, Any]:
    """Time the pinned suite; returns the BENCH document (unwritten)."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    suite = pinned_kernels()
    selected = list(suite) if kernels is None else list(kernels)
    unknown = [name for name in selected if name not in suite]
    if unknown:
        raise KeyError(
            f"unknown bench kernels {unknown}; available: {sorted(suite)}"
        )
    timed: Dict[str, Any] = {}
    for name in selected:
        description, kernel = suite[name]
        kernel()  # warmup: imports, lazy sweep caches, numpy dispatch
        samples: List[float] = []
        work = 0.0
        for _ in range(repeats):
            started = time.perf_counter()
            work = kernel()
            samples.append(time.perf_counter() - started)
        timed[name] = {
            "description": description,
            "repeats": repeats,
            "wall_s": {
                "min": min(samples),
                "mean": sum(samples) / len(samples),
                "max": max(samples),
            },
            "per_repeat_s": samples,
            "work": work,
        }
    document = {
        "schema": BENCH_SCHEMA,
        "code_version": code_fingerprint(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "created_unix": int(time.time()),
        "kernels": timed,
    }
    speedups = _speedups(timed)
    if speedups:
        document["speedups"] = speedups
    if kernels is None:  # full-suite runs also price the checkpoint barrier
        # The sim.shard arms memoize a full forward pass plus eight
        # replayed windows; that retained state makes every gen-2 GC
        # pass expensive and would taint the barrier price (the
        # checkpointed run allocates more, so it pays more). Release
        # it first — the barrier workload owns a quiet heap.
        _shard_forward.cache_clear()
        _shard_cached_windows.cache_clear()
        gc.collect()
        document["checkpoint"] = _checkpoint_overhead(repeats)
    return document


def _speedups(timed: Dict[str, Any]) -> Dict[str, Any]:
    """Per-pair reference/fast ratios (best-of-repeats, noise-robust).

    ``<base>.reference`` pairs with ``<base>.fast`` (the kernel pairs)
    or ``<base>.batched`` (the simulator drain loops); either way the
    record's ``fast_s`` is the non-reference arm.
    """
    out: Dict[str, Any] = {}
    for name in timed:
        if not name.endswith(".reference"):
            continue
        base = name[: -len(".reference")]
        fast_name = base + ".fast"
        if fast_name not in timed:
            fast_name = base + ".batched"
        if fast_name not in timed:
            continue
        reference_s = timed[name]["wall_s"]["min"]
        fast_s = timed[fast_name]["wall_s"]["min"]
        out[base] = {
            "reference_s": reference_s,
            "fast_s": fast_s,
            "speedup": reference_s / fast_s,
        }
    return out


def validate_bench(data: Any) -> List[str]:
    """Schema-validate one BENCH document (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(data, dict):
        return ["bench document must be a JSON object"]
    if data.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema must be {BENCH_SCHEMA!r}, got {data.get('schema')!r}"
        )
    if not isinstance(data.get("code_version"), str) or not data.get("code_version"):
        problems.append("code_version must be a non-empty string")
    kernels = data.get("kernels")
    if not isinstance(kernels, dict) or not kernels:
        return problems + ["kernels must be a non-empty object"]
    for name, record in kernels.items():
        if not isinstance(record, dict):
            problems.append(f"kernels.{name} must be an object")
            continue
        wall = record.get("wall_s")
        if not isinstance(wall, dict):
            problems.append(f"kernels.{name}.wall_s must be an object")
            continue
        values = [wall.get(k) for k in ("min", "mean", "max")]
        if not all(
            isinstance(v, (int, float)) and v == v and 0 < v < float("inf")
            for v in values
        ):
            problems.append(
                f"kernels.{name}.wall_s needs finite positive min/mean/max"
            )
        elif not wall["min"] <= wall["mean"] <= wall["max"]:
            problems.append(
                f"kernels.{name}.wall_s min/mean/max out of order"
            )
        repeats = record.get("repeats")
        if not isinstance(repeats, int) or repeats < 1:
            problems.append(f"kernels.{name}.repeats must be a positive int")
    speedups = data.get("speedups")
    if speedups is not None:  # optional section, additive to schema v1
        if not isinstance(speedups, dict):
            problems.append("speedups must be an object when present")
        else:
            for name, record in speedups.items():
                if not isinstance(record, dict):
                    problems.append(f"speedups.{name} must be an object")
                    continue
                values = [
                    record.get(k) for k in ("reference_s", "fast_s", "speedup")
                ]
                if not all(
                    isinstance(v, (int, float))
                    and v == v
                    and 0 < v < float("inf")
                    for v in values
                ):
                    problems.append(
                        f"speedups.{name} needs finite positive "
                        "reference_s/fast_s/speedup"
                    )
    checkpoint = data.get("checkpoint")
    if checkpoint is not None:  # optional section, additive to schema v1
        if not isinstance(checkpoint, dict):
            problems.append("checkpoint must be an object when present")
        else:
            values = [
                checkpoint.get(k) for k in ("plain_s", "checkpointed_s")
            ]
            if not all(
                isinstance(v, (int, float)) and v == v and 0 < v < float("inf")
                for v in values
            ):
                problems.append(
                    "checkpoint needs finite positive plain_s/checkpointed_s"
                )
            overhead = checkpoint.get("overhead")
            if not (
                isinstance(overhead, (int, float))
                and overhead == overhead
                and -1.0 < overhead < float("inf")
            ):
                problems.append(
                    "checkpoint.overhead must be a finite ratio > -1"
                )
            every = checkpoint.get("checkpoint_every")
            if not isinstance(every, int) or every < 1:
                problems.append(
                    "checkpoint.checkpoint_every must be a positive int"
                )
    return problems


# ----------------------------------------------------------------------
# Regression diff (``python -m repro bench --diff <dir>``)
# ----------------------------------------------------------------------


def latest_bench_path(
    directory: "str | os.PathLike[str]",
) -> Optional[str]:
    """Newest valid ``BENCH_*.json`` under ``directory`` (None if none).

    "Newest" is by the document's own ``created_unix`` stamp, not file
    mtime — a fresh checkout resets every mtime, but the stamp travels
    with the artifact. Unreadable or schema-invalid files are skipped:
    the diff gate must not be defeatable by committing a corrupt
    baseline.
    """
    import glob

    best: Optional[Tuple[int, str]] = None
    pattern = os.path.join(os.fspath(directory), "BENCH_*.json")
    for path in sorted(glob.glob(pattern)):
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, ValueError):
            continue
        if validate_bench(data):
            continue
        stamp = data.get("created_unix")
        if not isinstance(stamp, int):
            continue
        if best is None or stamp >= best[0]:
            best = (stamp, path)
    return None if best is None else best[1]


def diff_benches(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    tolerance: float = DEFAULT_DIFF_TOLERANCE,
) -> Tuple[List[str], List[str]]:
    """Compare a fresh BENCH document against a committed baseline.

    Returns ``(regressions, notes)``. A regression is a shared kernel
    whose best-of-repeats wall time grew by more than ``tolerance``×;
    notes are informational (kernels only present on one side, work-
    proof drift) and never fail the gate on their own.
    """
    if tolerance <= 1.0:
        raise ValueError(f"tolerance must be > 1.0, got {tolerance}")
    regressions: List[str] = []
    notes: List[str] = []
    base_kernels = baseline.get("kernels", {})
    cur_kernels = current.get("kernels", {})
    for name in sorted(set(base_kernels) | set(cur_kernels)):
        if name not in cur_kernels:
            notes.append(f"{name}: in baseline only (kernel removed?)")
            continue
        if name not in base_kernels:
            notes.append(f"{name}: new kernel, no baseline to compare")
            continue
        base_min = base_kernels[name]["wall_s"]["min"]
        cur_min = cur_kernels[name]["wall_s"]["min"]
        ratio = cur_min / base_min
        if ratio > tolerance:
            regressions.append(
                f"{name}: {cur_min * 1e3:.2f} ms vs baseline "
                f"{base_min * 1e3:.2f} ms ({ratio:.2f}x > "
                f"{tolerance:.2f}x tolerance)"
            )
        base_work = base_kernels[name].get("work")
        cur_work = cur_kernels[name].get("work")
        if base_work != cur_work:
            notes.append(
                f"{name}: work proof changed {base_work!r} -> "
                f"{cur_work!r} (kernel does different work than the "
                "baseline revision)"
            )
    return regressions, notes


def default_bench_path(
    out_dir: "str | os.PathLike[str]" = ".", rev: Optional[str] = None
) -> str:
    """``<out_dir>/BENCH_<rev>.json``; rev defaults to the code
    fingerprint's first 12 hex digits."""
    if rev is None:
        rev = code_fingerprint()[:12]
    return os.path.join(os.fspath(out_dir), f"BENCH_{rev}.json")


def write_bench(document: Dict[str, Any], path: str) -> str:
    """Validate and write one BENCH document; raises on schema error."""
    problems = validate_bench(document)
    if problems:
        raise ValueError(
            "refusing to write invalid BENCH document: " + "; ".join(problems)
        )
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def render_suite(document: Dict[str, Any]) -> str:
    """Human-readable table of one BENCH document."""
    lines = [
        f"bench suite @ {document['code_version'][:12]} "
        f"(python {document['python']}, {document['cpu_count']} cpus, "
        f"repeats={next(iter(document['kernels'].values()))['repeats']})",
        "",
        f"{'kernel':<28} {'min (ms)':>10} {'mean (ms)':>10} "
        f"{'max (ms)':>10} {'work':>14}",
    ]
    lines.append("-" * len(lines[-1]))
    for name, record in document["kernels"].items():
        wall = record["wall_s"]
        lines.append(
            f"{name:<28} {wall['min'] * 1e3:>10.2f} "
            f"{wall['mean'] * 1e3:>10.2f} {wall['max'] * 1e3:>10.2f} "
            f"{record['work']:>14.4g}"
        )
    speedups = document.get("speedups")
    if speedups:
        lines.append("")
        lines.append(
            f"{'kernel pair':<28} {'ref (ms)':>10} {'fast (ms)':>10} "
            f"{'speedup':>10}"
        )
        lines.append("-" * len(lines[-1]))
        for name, record in speedups.items():
            lines.append(
                f"{name:<28} {record['reference_s'] * 1e3:>10.2f} "
                f"{record['fast_s'] * 1e3:>10.2f} "
                f"{record['speedup']:>9.1f}x"
            )
    checkpoint = document.get("checkpoint")
    if checkpoint:
        lines.append("")
        lines.append(
            f"checkpoint overhead: {checkpoint['overhead'] * 100:+.2f}% "
            f"({checkpoint['plain_s'] * 1e3:.2f} ms bare vs "
            f"{checkpoint['checkpointed_s'] * 1e3:.2f} ms with journal + "
            f"checkpoint every {checkpoint['checkpoint_every']}, "
            f"{checkpoint['jobs']} jobs)"
        )
    return "\n".join(lines)
