"""The perf-trajectory bench harness behind ``python -m repro bench``.

Times a pinned suite of kernels — one per hot layer of the codebase —
and appends the result to the repo's performance record as a
schema-validated ``BENCH_<rev>.json``. The kernels are *pinned*: their
shapes and seeds never change between revisions, so two BENCH files
differ only by code speed (plus host noise), and "make a hot path
measurably faster" (ROADMAP) has a measurement to move.

Wall-clock timing is inherently nondeterministic, so bench results are
never cached and never enter a :class:`~repro.obs.report.RunReport`;
each kernel instead returns a deterministic *work proof* (a count or a
checksum of what it computed) that IS recorded — a kernel that got
faster by silently doing less work is visible in the proof column.
"""

import json
import os
import platform
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exec.canonical import code_fingerprint

__all__ = [
    "BENCH_SCHEMA",
    "default_bench_path",
    "pinned_kernels",
    "run_suite",
    "validate_bench",
    "write_bench",
]

#: Schema tag every BENCH artifact carries.
BENCH_SCHEMA = "repro.exec/bench/v1"

#: Default repeats per kernel (after one untimed warmup).
DEFAULT_REPEATS = 3


# ----------------------------------------------------------------------
# Pinned kernels
# ----------------------------------------------------------------------


def _kernel_dse_sweep() -> float:
    """Analytic design-space sweep: n 1..96 x full frequency/width grid
    on a fresh explorer (no memo carry-over between repeats)."""
    from repro.dse.explorer import DesignSpaceExplorer

    explorer = DesignSpaceExplorer("hbfp8", n_values=range(1, 97))
    return float(len(explorer.sweep()))


def _kernel_load_point() -> float:
    """One Figure-7 load point: Equinox_500us at 50 % offered load."""
    from repro.eval.runner import build_accelerator, simulate_load_point

    accelerator = build_accelerator("500us", "hbfp8")
    report = simulate_load_point(accelerator, 0.5, batches=2, seed=1)
    return float(report.requests_completed)


def _kernel_chaos_scenario() -> float:
    """One fault-injected accelerator run (HBM ECC retries)."""
    from repro.core.equinox import EquinoxAccelerator
    from repro.dse.table1 import equinox_configuration
    from repro.faults.plan import FaultPlan, HBMFaultSpec
    from repro.models.lstm import deepbench_lstm

    model = deepbench_lstm()
    accelerator = EquinoxAccelerator(
        equinox_configuration("500us"),
        model,
        training_model=model,
        fault_plan=FaultPlan(
            seed=7, hbm=HBMFaultSpec(error_rate=0.05, max_retries=3)
        ),
    )
    report = accelerator.run(load=0.6, requests=96, seed=7)
    return float(
        report.requests_completed + report.faults.faults_injected
    )


def _kernel_gemm() -> float:
    """HBFP8 datapath GEMM, 192x192 seeded operands."""
    import numpy as np

    from repro.arith.hbfp import hbfp_gemm

    rng = np.random.default_rng(42)
    a = rng.standard_normal((192, 192), dtype=np.float32)
    b = rng.standard_normal((192, 192), dtype=np.float32)
    out = hbfp_gemm(a, b)
    return float(np.abs(np.asarray(out, dtype=np.float32)).sum())


def _kernel_hbfp_quantize() -> float:
    """Block-floating-point round trip of a 512x512 seeded tensor."""
    import numpy as np

    from repro.arith.hbfp import HBFP8, hbfp_quantization_noise

    rng = np.random.default_rng(43)
    values = rng.standard_normal((512, 512), dtype=np.float32)
    return hbfp_quantization_noise(values, HBFP8)


def pinned_kernels() -> Dict[str, Tuple[str, Callable[[], float]]]:
    """``name -> (description, zero-arg kernel)`` in canonical order."""
    return {
        "dse.sweep": (
            "design-space sweep, n 1..96, full f/w grid", _kernel_dse_sweep,
        ),
        "eval.load_point": (
            "fig7 load point, Equinox_500us @ 0.5 load", _kernel_load_point,
        ),
        "chaos.scenario": (
            "fault-injected run, HBM ECC 5% err", _kernel_chaos_scenario,
        ),
        "arith.gemm": (
            "hbfp8 GEMM 192x192", _kernel_gemm,
        ),
        "arith.hbfp_quantize": (
            "BFP round trip 512x512", _kernel_hbfp_quantize,
        ),
    }


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------


def run_suite(
    repeats: int = DEFAULT_REPEATS,
    kernels: Optional[List[str]] = None,
) -> Dict[str, Any]:
    """Time the pinned suite; returns the BENCH document (unwritten)."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    suite = pinned_kernels()
    selected = list(suite) if kernels is None else list(kernels)
    unknown = [name for name in selected if name not in suite]
    if unknown:
        raise KeyError(
            f"unknown bench kernels {unknown}; available: {sorted(suite)}"
        )
    timed: Dict[str, Any] = {}
    for name in selected:
        description, kernel = suite[name]
        kernel()  # warmup: imports, lazy sweep caches, numpy dispatch
        samples: List[float] = []
        work = 0.0
        for _ in range(repeats):
            started = time.perf_counter()
            work = kernel()
            samples.append(time.perf_counter() - started)
        timed[name] = {
            "description": description,
            "repeats": repeats,
            "wall_s": {
                "min": min(samples),
                "mean": sum(samples) / len(samples),
                "max": max(samples),
            },
            "per_repeat_s": samples,
            "work": work,
        }
    return {
        "schema": BENCH_SCHEMA,
        "code_version": code_fingerprint(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count() or 1,
        "created_unix": int(time.time()),
        "kernels": timed,
    }


def validate_bench(data: Any) -> List[str]:
    """Schema-validate one BENCH document (empty list = valid)."""
    problems: List[str] = []
    if not isinstance(data, dict):
        return ["bench document must be a JSON object"]
    if data.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema must be {BENCH_SCHEMA!r}, got {data.get('schema')!r}"
        )
    if not isinstance(data.get("code_version"), str) or not data.get("code_version"):
        problems.append("code_version must be a non-empty string")
    kernels = data.get("kernels")
    if not isinstance(kernels, dict) or not kernels:
        return problems + ["kernels must be a non-empty object"]
    for name, record in kernels.items():
        if not isinstance(record, dict):
            problems.append(f"kernels.{name} must be an object")
            continue
        wall = record.get("wall_s")
        if not isinstance(wall, dict):
            problems.append(f"kernels.{name}.wall_s must be an object")
            continue
        values = [wall.get(k) for k in ("min", "mean", "max")]
        if not all(
            isinstance(v, (int, float)) and v == v and 0 < v < float("inf")
            for v in values
        ):
            problems.append(
                f"kernels.{name}.wall_s needs finite positive min/mean/max"
            )
        elif not wall["min"] <= wall["mean"] <= wall["max"]:
            problems.append(
                f"kernels.{name}.wall_s min/mean/max out of order"
            )
        repeats = record.get("repeats")
        if not isinstance(repeats, int) or repeats < 1:
            problems.append(f"kernels.{name}.repeats must be a positive int")
    return problems


def default_bench_path(
    out_dir: "str | os.PathLike[str]" = ".", rev: Optional[str] = None
) -> str:
    """``<out_dir>/BENCH_<rev>.json``; rev defaults to the code
    fingerprint's first 12 hex digits."""
    if rev is None:
        rev = code_fingerprint()[:12]
    return os.path.join(os.fspath(out_dir), f"BENCH_{rev}.json")


def write_bench(document: Dict[str, Any], path: str) -> str:
    """Validate and write one BENCH document; raises on schema error."""
    problems = validate_bench(document)
    if problems:
        raise ValueError(
            "refusing to write invalid BENCH document: " + "; ".join(problems)
        )
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def render_suite(document: Dict[str, Any]) -> str:
    """Human-readable table of one BENCH document."""
    lines = [
        f"bench suite @ {document['code_version'][:12]} "
        f"(python {document['python']}, {document['cpu_count']} cpus, "
        f"repeats={next(iter(document['kernels'].values()))['repeats']})",
        "",
        f"{'kernel':<22} {'min (ms)':>10} {'mean (ms)':>10} "
        f"{'max (ms)':>10} {'work':>14}",
    ]
    lines.append("-" * len(lines[-1]))
    for name, record in document["kernels"].items():
        wall = record["wall_s"]
        lines.append(
            f"{name:<22} {wall['min'] * 1e3:>10.2f} "
            f"{wall['mean'] * 1e3:>10.2f} {wall['max'] * 1e3:>10.2f} "
            f"{record['work']:>14.4g}"
        )
    return "\n".join(lines)
