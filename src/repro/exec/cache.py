"""Content-addressed on-disk result cache.

One entry per job, addressed by the job's sha256 digest (over the
canonical serialization of ``fn_id + config + seed + code_version``) in
a two-level fan-out directory. Every entry is written atomically
(temp file + rename) and carries a checksum of its own payload, so a
hit is **byte-verified** before it is trusted:

* payload bytes must re-hash to the stored ``payload_sha256``;
* the stored key material must match the requesting job (a collision
  or a hand-edited file can never alias another job's result);
* any :class:`repro.obs.RunReport`-shaped dict embedded in the payload
  must still pass :func:`repro.obs.report.validate_report`.

A verification failure is not an error: the entry is *evicted* and the
caller recomputes — a corrupt cache can cost time, never correctness.
"""

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.exec.canonical import config_digest, decode, encode
from repro.exec.jobs import Job
from repro.obs.report import SCHEMA_ID, validate_report

__all__ = ["CacheStats", "ResultCache", "open_cache"]

#: Schema tag of one cache entry file.
ENTRY_SCHEMA = "repro.exec/cache-entry/v1"

#: Sentinel distinguishing "miss" from a legitimately-``None`` result.
_MISS = object()


class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    __slots__ = ("hits", "misses", "evictions", "writes")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writes = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "writes": self.writes,
        }

    def __repr__(self) -> str:
        return (
            f"CacheStats(hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions}, writes={self.writes})"
        )


def _iter_reports(payload: Any) -> Iterator[Dict[str, Any]]:
    """Every RunReport-shaped dict embedded anywhere in a payload."""
    if isinstance(payload, dict):
        if payload.get("schema") == SCHEMA_ID:
            yield payload
            return
        for value in payload.values():
            yield from _iter_reports(value)
    elif isinstance(payload, (list, tuple)):
        for value in payload:
            yield from _iter_reports(value)


class ResultCache:
    """Content-addressed job-result store under one directory.

    Args:
        directory: Cache root; created on first write.
    """

    def __init__(self, directory: "str | os.PathLike[str]"):
        self.directory = Path(directory)
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def path_for(self, job: Job) -> Path:
        digest = job.digest()
        return self.directory / digest[:2] / f"{digest}.json"

    # ------------------------------------------------------------------
    # Read
    # ------------------------------------------------------------------

    def get(self, job: Job) -> Tuple[bool, Any]:
        """``(hit, result)`` — verified result on hit, else ``(False,
        None)`` with the entry evicted if it existed but failed
        verification."""
        value = self._load_verified(job)
        if value is _MISS:
            self.stats.misses += 1
            return False, None
        self.stats.hits += 1
        return True, value

    def _load_verified(self, job: Job) -> Any:
        path = self.path_for(job)
        try:
            raw = path.read_bytes()
        except (FileNotFoundError, OSError):
            return _MISS
        try:
            entry = json.loads(raw)
        except ValueError:
            return self._evict(path, "entry is not valid JSON")
        if not isinstance(entry, dict) or entry.get("schema") != ENTRY_SCHEMA:
            return self._evict(path, "entry schema mismatch")
        payload_text = entry.get("payload_json")
        if not isinstance(payload_text, str):
            return self._evict(path, "entry has no payload")
        if config_digest(payload_text) != entry.get("payload_sha256"):
            return self._evict(path, "payload checksum mismatch")
        if entry.get("key") != job.key_material():
            return self._evict(path, "key material mismatch")
        try:
            payload = json.loads(payload_text)
        except ValueError:
            return self._evict(path, "payload is not valid JSON")
        for report in _iter_reports(payload):
            problems = validate_report(report)
            if problems:
                return self._evict(
                    path, f"embedded RunReport invalid: {problems[0]}"
                )
        return decode(payload_text)

    def _evict(self, path: Path, reason: str) -> Any:
        """Drop a corrupt entry; the caller recomputes.

        Guarded by an exclusive-create lock file so two processes
        sharing a cache directory cannot race: without it, a slow
        evictor could unlink an entry a concurrent writer *just*
        recomputed and stored (classic check-then-act). The loser of
        the ``O_CREAT | O_EXCL`` race skips the unlink and simply
        reports a miss — recomputing costs time, never correctness.
        No staleness timeout is kept on the lock (``repro`` never reads
        the wall clock on these paths); an orphaned lock from a killed
        process only suppresses future evictions of that one corrupt
        entry, and the entry's verified read path still misses.
        """
        self.stats.evictions += 1
        lock_path = path.with_suffix(".evict.lock")
        try:
            fd = os.open(str(lock_path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            # Another process holds the eviction; treat as a miss.
            return _MISS
        except OSError:
            return _MISS
        try:
            os.close(fd)
            try:
                path.unlink()
            except OSError:
                pass
        finally:
            try:
                lock_path.unlink()
            except OSError:
                pass
        return _MISS

    # ------------------------------------------------------------------
    # Write
    # ------------------------------------------------------------------

    def put(self, job: Job, result: Any) -> Path:
        """Store one (already canonical-normalized) job result."""
        payload_text = encode(result)
        entry = {
            "schema": ENTRY_SCHEMA,
            "fn_id": job.fn_id,
            "seed": job.seed,
            "code_version": job.resolved_code_version(),
            "key": job.key_material(),
            "payload_json": payload_text,
            "payload_sha256": config_digest(payload_text),
        }
        path = self.path_for(job)
        path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(entry, sort_keys=True, indent=1)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=path.parent, prefix=".tmp-", suffix=".json",
            delete=False, encoding="utf-8",
        )
        try:
            with handle:
                handle.write(text)
            os.replace(handle.name, path)
        except OSError:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self.stats.writes += 1
        return path

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def clear(self) -> int:
        """Remove every entry; returns the number removed."""
        removed = 0
        for path in self.directory.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


def open_cache(directory: Optional["str | os.PathLike[str]"]) -> Optional[ResultCache]:
    """``ResultCache`` for a directory, or ``None`` for ``None``."""
    if directory is None:
        return None
    return ResultCache(directory)
