"""Canonical config/result serialization and the code fingerprint.

Everything the execution engine hashes or stores flows through this
module, and through nothing else — ad-hoc ``json.dumps`` of a config is
a lint error (EQX307) precisely because two serializations of the same
config must never disagree. The canonical form is:

* keys sorted, compact separators (no whitespace ambiguity),
* numpy scalars collapsed to Python numbers via ``item()``,
* non-finite floats encoded as the strings ``"inf"``/``"-inf"``/
  ``"nan"`` (JSON has no literal for them) — the exact policy of
  :mod:`repro.obs.report`, shared by importing its ``jsonable`` /
  ``from_jsonable`` pair rather than re-implementing it.

``encode``/``decode`` round-trip a value through that form, which is
also how the scheduler *normalizes* every job result: serial, parallel
and cached executions all hand back ``decode(encode(result))``, so the
execution mode can never leak through result types (tuples become
lists, numpy scalars become floats) and byte-level artifact determinism
follows structurally.

``code_fingerprint`` hashes the ``repro`` source tree itself; it is the
default ``code_version`` of every job, so editing any module under
``src/repro`` invalidates cached results without any manual epoch bump.
"""

import hashlib
import json
import sys
from pathlib import Path
from typing import Any, Optional

from repro.obs.report import from_jsonable, jsonable

__all__ = [
    "canonical_json",
    "code_fingerprint",
    "config_digest",
    "decode",
    "encode",
]


def canonical_json(value: Any) -> str:
    """The canonical serialization of one JSON-able value."""
    return json.dumps(
        jsonable(value), sort_keys=True, separators=(",", ":"),
        allow_nan=False, ensure_ascii=True,
    )


def encode(value: Any) -> str:
    """Alias of :func:`canonical_json` (the cache's storage form)."""
    return canonical_json(value)


def decode(text: str) -> Any:
    """Parse canonical JSON, restoring inf/nan sentinel strings."""
    return from_jsonable(json.loads(text))


def config_digest(value: Any) -> str:
    """sha256 hex digest of a value's canonical serialization."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


#: Process-wide memo: the tree is immutable for the life of a run.
_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """One sha256 over every ``*.py`` file of the installed ``repro``
    package, in sorted relative-path order.

    Cached per process — the fingerprint is read once per job key, and
    hashing ~100 small files costs a few milliseconds.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode("utf-8"))
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        digest.update(f"py{sys.version_info[0]}.{sys.version_info[1]}".encode())
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT
