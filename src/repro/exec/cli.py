"""CLI glue for the execution engine.

Three pieces, all consumed by ``python -m repro``:

* :func:`add_executor_arguments` / :func:`runner_from_args` — the
  shared ``--jobs N|auto`` / ``--cache-dir`` flags every experiment
  subcommand grows, resolved into one :class:`JobRunner`;
* the ``sweep`` subcommand — the Figure 6 design-space sweep fanned
  out through the engine, with a byte-deterministic ``sweep.json``
  RunReport artifact (identical for any ``--jobs`` value);
* the ``bench`` subcommand — the pinned perf-trajectory suite writing
  ``BENCH_<rev>.json`` (see :mod:`repro.exec.bench`).
"""

import argparse
import json
import sys
from typing import Any, Optional

from repro.exec.scheduler import JobRunner

__all__ = [
    "DEFAULT_CHECKPOINT_EVERY",
    "add_bench_arguments",
    "add_executor_arguments",
    "add_sweep_arguments",
    "apply_kernel_backend",
    "run_bench",
    "run_sweep",
    "runner_from_args",
]

#: Default ``--checkpoint-every`` period (executed jobs between
#: progress checkpoints). Chosen so checkpoint overhead stays well
#: under the 5% budget the bench suite's ``checkpoint.overhead`` entry
#: enforces, while a preempted sweep loses at most a few jobs' work.
DEFAULT_CHECKPOINT_EVERY = 8


# ----------------------------------------------------------------------
# Shared executor flags
# ----------------------------------------------------------------------


def add_executor_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", default=None, metavar="N",
        help="fan independent work units out over N worker processes "
        "('auto' = CPU count); results are bit-identical to --jobs 1",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result cache: identical (config, seed, "
        "code) jobs are replayed from disk instead of recomputed",
    )
    parser.add_argument(
        "--kernel-backend", choices=("reference", "fast"), default=None,
        help="pin the repro.kernels backend (default: fast, or "
        "REPRO_KERNEL_BACKEND); backends are bit-identical by contract, "
        "so this changes speed, never results",
    )
    parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="crash-consistent run state: a completed-work journal "
        "(fsynced per job) plus periodic checkpoint files; a killed run "
        "restarted with --resume skips journaled jobs and converges to "
        "the byte-identical artifact",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=DEFAULT_CHECKPOINT_EVERY,
        metavar="N",
        help="write a progress checkpoint every N executed jobs "
        f"(default {DEFAULT_CHECKPOINT_EVERY}; 0 disables the periodic "
        "barrier — the journal is still written per job)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="replay completed jobs from the --checkpoint-dir journal "
        "instead of re-running them (without it, a fresh run discards "
        "the previous journal)",
    )
    parser.add_argument(
        "--kill-after", type=int, default=None, metavar="N",
        help="crash-recovery drill: SIGKILL this process after exactly "
        "N completed (journaled) jobs — CI uses it to prove --resume "
        "converges to the byte-identical artifact",
    )
    parser.add_argument(
        "--shards", type=int, default=1, metavar="W",
        help="snapshot-sharded execution: split each big simulation "
        "into W quiesce-aligned windows (forward state pass, then "
        "window replay as cache-sound jobs, then bit-exact ordered "
        "merge); the artifact is byte-identical for any --jobs value, "
        "cache state or kill/resume at a fixed W",
    )


def apply_kernel_backend(args: argparse.Namespace) -> None:
    """Make ``--kernel-backend`` the ambient backend for this process.

    Worker processes spawned by the executor inherit it through the
    job payload's environment, not this call — the engine re-imports
    repro there — so experiments that must pin workers too should pass
    ``kernel_backend=`` through their entry points instead.
    """
    backend = getattr(args, "kernel_backend", None)
    if backend is not None:
        from repro import kernels

        kernels.set_backend(backend)


def runner_from_args(
    args: argparse.Namespace, shutdown: Optional[Any] = None
) -> Optional[JobRunner]:
    """A runner when ``--jobs``/``--cache-dir``/``--checkpoint-dir``
    was given, else None (experiments keep their historical in-process
    path).

    ``shutdown`` is the CLI's :class:`repro.state.GracefulShutdown`
    instance; its ``check`` is polled between jobs so a SIGINT/SIGTERM
    unwinds at a journal-consistent boundary. ``--kill-after`` arms a
    :class:`repro.faults.killswitch.KillSwitch` on the same boundary
    (the drill dies *after* the Nth journal append, never mid-write).
    """
    jobs = getattr(args, "jobs", None)
    cache_dir = getattr(args, "cache_dir", None)
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    if jobs is None and cache_dir is None and checkpoint_dir is None:
        return None
    kill_after = getattr(args, "kill_after", None)
    on_unit_done = None
    if kill_after is not None:
        from repro.faults.killswitch import KillSwitch

        on_unit_done = KillSwitch(kill_after).note_unit_done
    return JobRunner(
        jobs=jobs if jobs is not None else 1,
        cache_dir=cache_dir,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=getattr(
            args, "checkpoint_every", DEFAULT_CHECKPOINT_EVERY
        ),
        resume=bool(getattr(args, "resume", False)),
        shutdown_check=shutdown.check if shutdown is not None else None,
        on_unit_done=on_unit_done,
    )


# ----------------------------------------------------------------------
# sweep
# ----------------------------------------------------------------------


def add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--encodings", nargs="+", default=["hbfp8", "bfloat16"],
        help="datapath encodings to sweep",
    )
    parser.add_argument(
        "--n-max", type=int, default=256,
        help="largest systolic-array side n to sweep (grid is 1..n-max)",
    )
    parser.add_argument(
        "--chunk", type=int, default=8,
        help="n-values per job (job granularity, not results: the "
        "artifact is identical for any chunking)",
    )
    parser.add_argument(
        "--report-dir", default=None,
        help="write the structured sweep RunReport artifact "
        "(<dir>/sweep.json)",
    )
    add_executor_arguments(parser)


def run_sweep(
    args: argparse.Namespace, shutdown: Optional[Any] = None
) -> int:
    from repro.dse.explorer import DesignSpaceExplorer
    from repro.dse.pareto import pareto_frontier
    from repro.eval.fig6 import Fig6Result, render
    from repro.exec.canonical import code_fingerprint, config_digest

    if args.n_max < 1:
        print(f"--n-max must be >= 1, got {args.n_max}", file=sys.stderr)
        return 2
    runner = runner_from_args(args, shutdown=shutdown) or JobRunner(jobs=1)
    if runner.checkpoint_store is not None:
        # Periodic barrier: persist sweep progress next to the journal.
        # The journal alone carries the resume contract; the checkpoint
        # is the cheap observable marker (how far did the run get?).
        def _sweep_checkpoint() -> None:
            counters = runner.counters
            runner.checkpoint_store.save(
                "sweep", {"counters": counters},
                step=counters["executed"],
            )

        runner.set_checkpoint_cb(_sweep_checkpoint)
    clouds = {}
    frontiers = {}
    for encoding in args.encodings:
        explorer = DesignSpaceExplorer(
            encoding, n_values=range(1, args.n_max + 1)
        )
        clouds[encoding] = explorer.sweep(executor=runner, chunk=args.chunk)
        frontiers[encoding] = pareto_frontier(clouds[encoding])
    result = Fig6Result(clouds=clouds, frontiers=frontiers)
    print(render(result))
    counters = runner.counters
    print(
        f"\n[exec: jobs={runner.jobs} executed={counters['executed']} "
        f"cache_hits={counters['cache_hits']} "
        f"journal_hits={counters['journal_hits']} "
        f"retries={counters['retries']}]",
        file=sys.stderr,
    )
    if args.report_dir is not None:
        report = _sweep_report(args, result, code_fingerprint, config_digest)
        _write_report(report, args.report_dir)
    return 0


def _sweep_report(args, result, code_fingerprint, config_digest):
    """The sweep artifact. Every field is a function of the sweep
    *results* and grid — never of --jobs/--chunk/--cache-dir — which is
    what makes the byte-identity guarantee checkable with cmp(1)."""
    from dataclasses import asdict

    from repro.obs.report import RunReport

    metrics = {}
    checksums = {}
    for encoding in args.encodings:
        cloud = result.clouds[encoding]
        front = result.frontiers[encoding]
        metrics[encoding] = {
            "cloud_points": len(cloud),
            "frontier_points": len(front),
            "knee_top_s": result.knee_throughput(encoding),
            "max_top_s": result.max_throughput(encoding),
            "min_service_us": min(p.service_time_us for p in front),
        }
        checksums[encoding] = config_digest([asdict(p) for p in cloud])
    return RunReport(
        name="sweep",
        kind="experiment",
        config={
            "encodings": list(args.encodings),
            "n_max": args.n_max,
            "code_version": code_fingerprint(),
            "cloud_sha256": checksums,
        },
        metrics=metrics,
    )


def _write_report(report, directory: str) -> None:
    import os

    from repro.obs.report import validate_report

    text = report.to_json()
    for problem in validate_report(json.loads(text)):
        print(f"invalid artifact {report.name}: {problem}", file=sys.stderr)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{report.name}.json")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print(f"[artifact] {path}")


# ----------------------------------------------------------------------
# bench
# ----------------------------------------------------------------------


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="timed repeats per kernel (default 3, after one warmup)",
    )
    parser.add_argument(
        "--kernels", nargs="+", default=None,
        help="subset of pinned kernels to run (default: all)",
    )
    parser.add_argument(
        "--out-dir", default=".",
        help="directory for the BENCH_<rev>.json artifact",
    )
    parser.add_argument(
        "--rev", default=None,
        help="revision label in the filename (default: code fingerprint)",
    )
    parser.add_argument(
        "--validate-only", default=None, metavar="PATH",
        help="validate an existing BENCH file instead of running",
    )
    parser.add_argument(
        "--kernel-backend", choices=("reference", "fast"), default=None,
        help="ambient repro.kernels backend while benching (the "
        "kernels.* pair entries pin their own backend regardless)",
    )
    parser.add_argument(
        "--diff", default=None, metavar="DIR",
        help="after benching, compare against the newest committed "
        "BENCH_*.json in DIR and exit non-zero on any kernel slower "
        "than the tolerance ratio",
    )
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help="--diff regression ratio (default 2.0: fail only when a "
        "kernel doubles its best wall time — CI hosts are noisy)",
    )


def run_bench(args: argparse.Namespace) -> int:
    from repro.exec import bench

    if args.validate_only is not None:
        with open(args.validate_only) as handle:
            data = json.load(handle)
        problems = bench.validate_bench(data)
        for problem in problems:
            print(f"invalid bench file: {problem}", file=sys.stderr)
        print(
            f"{args.validate_only}: "
            + ("ok" if not problems else f"{len(problems)} problem(s)")
        )
        return 1 if problems else 0

    apply_kernel_backend(args)
    # Resolve the baseline BEFORE writing the new artifact, so a
    # --diff directory that doubles as --out-dir never compares the
    # fresh run against itself.
    baseline_path = None
    if args.diff is not None:
        baseline_path = bench.latest_bench_path(args.diff)
    repeats = args.repeats if args.repeats is not None else bench.DEFAULT_REPEATS
    document = bench.run_suite(repeats=repeats, kernels=args.kernels)
    print(bench.render_suite(document))
    path = bench.default_bench_path(args.out_dir, rev=args.rev)
    bench.write_bench(document, path)
    print(f"\n[bench] {path}")
    regressions = []
    if args.diff is not None:
        tolerance = (
            args.tolerance if args.tolerance is not None
            else bench.DEFAULT_DIFF_TOLERANCE
        )
        if baseline_path is None:
            print(f"[bench-diff] no baseline BENCH_*.json in {args.diff}; "
                  "nothing to gate against")
        else:
            with open(baseline_path) as handle:
                baseline = json.load(handle)
            regressions, notes = bench.diff_benches(
                baseline, document, tolerance=tolerance
            )
            print(f"[bench-diff] baseline {baseline_path} "
                  f"(tolerance {tolerance:.2f}x)")
            for note in notes:
                print(f"[bench-diff] note: {note}")
            for regression in regressions:
                print(f"[bench-diff] REGRESSION {regression}",
                      file=sys.stderr)
            if not regressions:
                print("[bench-diff] ok: no kernel regressed past "
                      "tolerance")
    from repro.obs.profile import kernel_dispatch_summary

    dispatches = kernel_dispatch_summary()
    if dispatches:
        summary = ", ".join(
            f"{key.removeprefix('kernels.dispatch.')}={int(count)}"
            for key, count in dispatches.items()
        )
        print(f"[kernels] {summary}", file=sys.stderr)
    return 1 if regressions else 0
