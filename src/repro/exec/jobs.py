"""The pure-job abstraction: ``Job(fn_id, config, seed, code_version)``.

A job is the engine's unit of work and of caching. The contract every
registered job function signs:

* **pure** — the result is a function of ``(config, seed)`` and the
  code identified by ``code_version`` only. No wall clock, no global
  RNG, no reads of mutable process state. (The simulator's own
  determinism guarantees — EQX302 — are what make experiment jobs
  pure.)
* **JSON-able** — the result round-trips through
  :func:`repro.exec.canonical.encode`; anything that does not is a
  ``TypeError`` at execution time, never a corrupt cache entry later.

Functions are addressed by a stable ``fn_id`` resolved through a
registry of dotted import paths, not by pickling callables: worker
processes (including ``spawn``-started ones) import the target module
themselves, and a cache entry written by one process is meaningful to
every other.
"""

from dataclasses import dataclass, field
from importlib import import_module
from typing import Any, Callable, Dict, Optional

from repro.exec.canonical import canonical_json, code_fingerprint, config_digest

__all__ = ["Job", "available_jobs", "register_job", "resolve_job", "run_job"]

#: fn_id -> "module:function". Static so every process (fork or spawn)
#: resolves the same table without import-order games. Third parties
#: extend it via :func:`register_job`.
_REGISTRY: Dict[str, str] = {
    "dse.points": "repro.exec.tasks:dse_points",
    "eval.load_point": "repro.exec.tasks:eval_load_point",
    "chaos.scenario": "repro.exec.tasks:chaos_scenario",
    "serve.fleet_scenario": "repro.exec.tasks:serve_fleet_scenario",
    "exec.probe": "repro.exec.tasks:exec_probe",
    "shard.load_forward": "repro.exec.shard:shard_load_forward",
    "shard.load_window": "repro.exec.shard:shard_load_window",
    "shard.train_forward": "repro.exec.shard:shard_train_forward",
    "shard.train_window": "repro.exec.shard:shard_train_window",
    "shard.serve_forward": "repro.exec.shard:shard_serve_forward",
    "shard.serve_window": "repro.exec.shard:shard_serve_window",
}


def register_job(fn_id: str, target: str) -> None:
    """Register ``fn_id`` as ``"package.module:function"``.

    Re-registering an id to a *different* target raises — cache keys
    embed fn_ids, so silently rebinding one would alias two different
    computations under the same key space.
    """
    if ":" not in target:
        raise ValueError(
            f"target must be 'module:function', got {target!r}"
        )
    existing = _REGISTRY.get(fn_id)
    if existing is not None and existing != target:
        raise ValueError(
            f"job id {fn_id!r} already registered to {existing!r}"
        )
    _REGISTRY[fn_id] = target


def available_jobs() -> Dict[str, str]:
    """A copy of the registry (diagnostics, tests)."""
    return dict(_REGISTRY)


def resolve_job(fn_id: str) -> Callable[[Any, int], Any]:
    """Import and return the function behind ``fn_id``."""
    try:
        target = _REGISTRY[fn_id]
    except KeyError:
        raise KeyError(
            f"unknown job id {fn_id!r}; registered: {sorted(_REGISTRY)}"
        ) from None
    module_name, _, attribute = target.partition(":")
    return getattr(import_module(module_name), attribute)


@dataclass(frozen=True, eq=False)
class Job:
    """One hashable, cacheable unit of work.

    Attributes:
        fn_id: Registry id of the job function.
        config: JSON-able parameters (the function's sole input besides
            the seed). Hashing uses the *canonical* serialization, so
            dict key order never matters.
        seed: RNG seed threaded to the function; part of the cache key.
        code_version: Fingerprint of the code the result depends on.
            ``None`` (the default) means "the current source tree" and
            resolves through :func:`code_fingerprint` lazily.
    """

    fn_id: str
    config: Any
    seed: int = 0
    code_version: Optional[str] = field(default=None)

    def resolved_code_version(self) -> str:
        if self.code_version is not None:
            return self.code_version
        return code_fingerprint()

    def key_material(self) -> str:
        """The canonical serialization the cache key is derived from."""
        return canonical_json({
            "fn_id": self.fn_id,
            "config": self.config,
            "seed": self.seed,
            "code_version": self.resolved_code_version(),
        })

    def digest(self) -> str:
        """The content-addressed cache key (sha256 hex)."""
        return config_digest({
            "fn_id": self.fn_id,
            "config": self.config,
            "seed": self.seed,
            "code_version": self.resolved_code_version(),
        })

    def __hash__(self) -> int:
        return hash(self.digest())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Job):
            return NotImplemented
        return self.digest() == other.digest()

    def __repr__(self) -> str:
        return (
            f"Job({self.fn_id!r}, seed={self.seed}, "
            f"key={self.digest()[:12]})"
        )


def run_job(fn_id: str, config: Any, seed: int) -> Any:
    """Execute one job in this process and normalize its result.

    This is the function worker processes run: resolve, call, then
    round-trip the result through the canonical form so serial,
    parallel and cached executions return structurally identical
    values.
    """
    from repro.exec.canonical import decode, encode

    fn = resolve_job(fn_id)
    result = fn(config, seed)
    try:
        return decode(encode(result))
    except (TypeError, ValueError) as exc:
        raise TypeError(
            f"job {fn_id!r} returned a non-JSON-able result: {exc}"
        ) from exc
