"""Job execution: serial fast path and the process-pool scheduler.

Design goals, in priority order:

1. **Determinism** — results are aggregated in *submission order*
   regardless of completion order, and every result (serial, parallel
   or cached) is normalized through the canonical JSON round-trip, so
   ``--jobs 8`` is bit-identical to ``--jobs 1``.
2. **Isolation** — a worker crash (``BrokenProcessPool``) or a per-job
   wall-clock timeout poisons only the in-flight window: the pool is
   respawned and the affected jobs re-queued under a *bounded* retry
   budget (the same philosophy as :mod:`repro.faults`' ``max_retries``
   — recovery always terminates). A job function *raising* is
   deterministic by the purity contract and therefore never retried.
3. **Bounded memory** — at most ``max_in_flight`` jobs are submitted at
   once, so a million-point sweep never materializes a million futures.

Workers are reused across jobs (one ``ProcessPoolExecutor`` for the
whole run); each worker imports the job function through the registry,
so nothing but ``(fn_id, config, seed)`` ever crosses the pipe.
"""

import os
from collections import deque
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence

from repro.exec.cache import ResultCache
from repro.exec.jobs import Job, run_job

if TYPE_CHECKING:
    # Only for annotations: a module-level runtime import would close a
    # cycle (repro.exec.__init__ -> scheduler; repro.state.checkpoint ->
    # repro.exec.canonical). JobRunner imports it lazily instead.
    from repro.state.checkpoint import CompletionJournal

__all__ = [
    "JobExecutionError",
    "JobRunner",
    "ProcessPoolScheduler",
    "resolve_jobs",
    "run_jobs",
]

#: Default per-job retry budget for *infrastructure* failures (worker
#: crash, timeout). Deterministic job exceptions are never retried.
DEFAULT_MAX_RETRIES = 2


class JobExecutionError(RuntimeError):
    """A job failed beyond recovery (raised, or exhausted its budget)."""

    def __init__(self, job: Job, reason: str):
        super().__init__(f"{job!r} failed: {reason}")
        self.job = job
        self.reason = reason


def resolve_jobs(value: "str | int | None") -> int:
    """Parse a ``--jobs`` value: int, ``"auto"`` (CPU count) or None."""
    if value is None:
        return 1
    if isinstance(value, str):
        if value.strip().lower() == "auto":
            return max(1, os.cpu_count() or 1)
        value = int(value)
    if value < 1:
        raise ValueError(f"--jobs must be >= 1 or 'auto', got {value}")
    return value


def _execute(fn_id: str, config: Any, seed: int) -> Any:
    """Worker-side entry point (module-level: picklable under spawn)."""
    return run_job(fn_id, config, seed)


class ProcessPoolScheduler:
    """Runs job batches on a reusable worker pool.

    Args:
        workers: Pool size; ``1`` short-circuits to in-process serial
            execution (no pool, no pickling — but the same canonical
            result normalization).
        cache: Optional :class:`ResultCache` consulted before and
            written after every execution (single-writer: only the
            parent process touches the cache directory).
        timeout_s: Per-job wall-clock budget once the job's future is
            the oldest in flight; ``None`` disables. On expiry the pool
            is torn down (hung workers are killed) and the in-flight
            window is re-queued within the retry budget.
        max_retries: Infrastructure-failure budget *per job*.
        max_in_flight: Submission window (default ``4 × workers``).
        journal: Optional completion journal
            (:class:`repro.state.CompletionJournal`, duck-typed here to
            keep the import graph acyclic). Consulted *before* the
            cache — a journaled result is this exact run's durably
            fsynced output — and appended after every execution, which
            is the crash-consistency barrier: a job whose result made
            the journal is never re-run on ``--resume``.
        checkpoint_every: Invoke ``checkpoint_cb`` after every N
            completed (executed, not cached/journaled) jobs; 0 disables.
        checkpoint_cb: The periodic checkpoint barrier hook (e.g. flush
            a partial RunReport).
        shutdown_check: Polled between jobs; expected to raise (e.g.
            :class:`repro.state.ShutdownRequested`) to stop cleanly at
            a job boundary, after the journal append.
        on_unit_done: Called once per completed job *after* its journal
            append — the hook the crash-recovery drill's kill switch
            counts work units on, so a SIGKILL always lands on a
            journal-consistent state.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: Optional[ResultCache] = None,
        timeout_s: Optional[float] = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        max_in_flight: Optional[int] = None,
        journal: Optional["CompletionJournal"] = None,
        checkpoint_every: int = 0,
        checkpoint_cb: Optional[Callable[[], None]] = None,
        shutdown_check: Optional[Callable[[], None]] = None,
        on_unit_done: Optional[Callable[[], None]] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        self.workers = workers
        self.cache = cache
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.max_in_flight = (
            max_in_flight if max_in_flight is not None else 4 * workers
        )
        if self.max_in_flight < 1:
            raise ValueError("max_in_flight must be >= 1")
        self.journal = journal
        self.checkpoint_every = checkpoint_every
        self.checkpoint_cb = checkpoint_cb
        self.shutdown_check = shutdown_check
        self.on_unit_done = on_unit_done
        self._since_checkpoint = 0
        #: Faults-style counters: how the run degraded, never hidden.
        self.counters: Dict[str, int] = {
            "executed": 0, "cache_hits": 0, "journal_hits": 0,
            "crashes": 0, "timeouts": 0, "retries": 0,
        }

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def run(self, jobs: Sequence[Job]) -> List[Any]:
        """Execute ``jobs``, returning results in submission order."""
        jobs = list(jobs)
        results: List[Any] = [None] * len(jobs)
        todo: List[int] = []
        for index, job in enumerate(jobs):
            if self.journal is not None:
                key = job.digest()
                if key in self.journal:
                    results[index] = self.journal.get(key)
                    self.counters["journal_hits"] += 1
                    continue
            if self.cache is not None:
                hit, value = self.cache.get(job)
                if hit:
                    results[index] = value
                    self.counters["cache_hits"] += 1
                    continue
            todo.append(index)
        if not todo:
            return results
        if self.workers <= 1:
            self._run_serial(jobs, todo, results)
        else:
            self._run_pool(jobs, todo, results)
        return results

    def _complete(self, job: Job, value: Any) -> None:
        """Post-execution barrier, in crash-consistency order: journal
        (durable) first, then cache (advisory), then the work-unit and
        checkpoint hooks — so any interruption after this method began
        either left no journal line (job re-runs) or a complete one
        (job is skipped on resume)."""
        self.counters["executed"] += 1
        if self.journal is not None:
            self.journal.append(job.digest(), value)
        if self.cache is not None:
            self.cache.put(job, value)
        if self.on_unit_done is not None:
            self.on_unit_done()
        if self.checkpoint_every and self.checkpoint_cb is not None:
            self._since_checkpoint += 1
            if self._since_checkpoint >= self.checkpoint_every:
                self._since_checkpoint = 0
                self.checkpoint_cb()

    # ------------------------------------------------------------------
    # Serial fast path
    # ------------------------------------------------------------------

    def _run_serial(
        self, jobs: Sequence[Job], todo: Sequence[int], results: List[Any]
    ) -> None:
        for index in todo:
            if self.shutdown_check is not None:
                self.shutdown_check()
            job = jobs[index]
            try:
                value = _execute(job.fn_id, job.config, job.seed)
            except Exception as exc:
                raise JobExecutionError(job, f"raised {exc!r}") from exc
            results[index] = value
            self._complete(job, value)

    # ------------------------------------------------------------------
    # Pool path
    # ------------------------------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.workers)

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down even if a worker is wedged."""
        processes = list((getattr(pool, "_processes", None) or {}).values())
        for process in processes:
            try:
                process.terminate()
            except Exception:  # eqx: ignore[EQX303] — best-effort kill
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def _run_pool(
        self, jobs: Sequence[Job], todo: Sequence[int], results: List[Any]
    ) -> None:
        queue = deque(todo)
        attempts = {index: 0 for index in todo}
        inflight: "deque[tuple[int, Any]]" = deque()
        pool = self._new_pool()
        try:
            while queue or inflight:
                if self.shutdown_check is not None:
                    self.shutdown_check()
                while queue and len(inflight) < self.max_in_flight:
                    index = queue.popleft()
                    job = jobs[index]
                    inflight.append(
                        (index, pool.submit(
                            _execute, job.fn_id, job.config, job.seed
                        ))
                    )
                # Wait on the *oldest* future: aggregation is ordered
                # anyway, so nothing is gained by racing completions.
                index, future = inflight.popleft()
                try:
                    value = future.result(timeout=self.timeout_s)
                except FutureTimeoutError:
                    self.counters["timeouts"] += 1
                    pool = self._recover(
                        pool, jobs, queue, inflight, attempts,
                        index, "timed out",
                    )
                    continue
                except BrokenProcessPool:
                    self.counters["crashes"] += 1
                    pool = self._recover(
                        pool, jobs, queue, inflight, attempts,
                        index, "worker crashed",
                    )
                    continue
                except Exception as exc:
                    # Deterministic failure: the job itself raised.
                    raise JobExecutionError(
                        jobs[index], f"raised {exc!r}"
                    ) from exc
                results[index] = value
                self._complete(jobs[index], value)
        finally:
            self._kill_pool(pool)

    def _recover(
        self,
        pool: ProcessPoolExecutor,
        jobs: Sequence[Job],
        queue: "deque[int]",
        inflight: "deque[tuple[int, Any]]",
        attempts: Dict[int, int],
        failed_index: int,
        reason: str,
    ) -> ProcessPoolExecutor:
        """Respawn the pool and re-queue the in-flight window.

        A crash/timeout cannot always be attributed to one job (a
        broken pool fails every outstanding future), so the whole
        window is charged one attempt — the budget still bounds total
        respawns per job, and innocent victims complete on the next
        pass.
        """
        self._kill_pool(pool)
        window = [failed_index] + [index for index, _ in inflight]
        inflight.clear()
        for index in reversed(window):
            attempts[index] += 1
            if attempts[index] > self.max_retries:
                raise JobExecutionError(
                    jobs[index],
                    f"{reason}; retry budget of {self.max_retries} "
                    "exhausted",
                )
            self.counters["retries"] += 1
            queue.appendleft(index)
        return self._new_pool()


class JobRunner:
    """The executor handle experiment code passes around.

    Thin, picklable-free facade binding a worker count, an optional
    cache directory and the timeout/retry policy; ``map`` runs one
    batch. ``JobRunner(jobs=1)`` is the always-available serial engine
    — experiment code never branches on "parallel or not", it just
    builds jobs and maps them.
    """

    def __init__(
        self,
        jobs: "str | int | None" = 1,
        cache_dir: "str | os.PathLike[str] | None" = None,
        timeout_s: Optional[float] = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        checkpoint_dir: "str | os.PathLike[str] | None" = None,
        checkpoint_every: int = 0,
        checkpoint_cb: Optional[Callable[[], None]] = None,
        resume: bool = False,
        shutdown_check: Optional[Callable[[], None]] = None,
        on_unit_done: Optional[Callable[[], None]] = None,
    ):
        self.jobs = resolve_jobs(jobs)
        self.cache = ResultCache(cache_dir) if cache_dir is not None else None
        self.journal = None
        self.checkpoint_store = None
        if checkpoint_dir is not None:
            # Imported here, not at module level: repro.state.checkpoint
            # imports repro.exec.canonical, whose package init imports
            # this module — a top-level import would close the cycle.
            from repro.state.checkpoint import CheckpointStore, CompletionJournal

            journal_path = os.path.join(
                os.fspath(checkpoint_dir), "journal.jsonl"
            )
            if not resume and os.path.exists(journal_path):
                # A fresh (non-resuming) run must not silently reuse a
                # previous campaign's completions.
                os.unlink(journal_path)
            self.journal = CompletionJournal(journal_path)
            self.checkpoint_store = CheckpointStore(checkpoint_dir)
        self.scheduler = ProcessPoolScheduler(
            workers=self.jobs,
            cache=self.cache,
            timeout_s=timeout_s,
            max_retries=max_retries,
            journal=self.journal,
            checkpoint_every=checkpoint_every,
            checkpoint_cb=checkpoint_cb,
            shutdown_check=shutdown_check,
            on_unit_done=on_unit_done,
        )

    def map(self, jobs: Sequence[Job]) -> List[Any]:
        return self.scheduler.run(jobs)

    def set_checkpoint_cb(self, cb: Optional[Callable[[], None]]) -> None:
        """(Re)bind the periodic checkpoint barrier hook.

        Callers that only learn what to snapshot *after* building the
        runner (e.g. an experiment's capture context) install the hook
        here; it fires every ``checkpoint_every`` completed jobs.
        """
        self.scheduler.checkpoint_cb = cb

    @property
    def counters(self) -> Dict[str, int]:
        return dict(self.scheduler.counters)

    def __repr__(self) -> str:
        cache = (
            str(self.cache.directory) if self.cache is not None else None
        )
        return f"JobRunner(jobs={self.jobs}, cache_dir={cache!r})"


def run_jobs(
    jobs: Sequence[Job],
    n_jobs: "str | int | None" = 1,
    cache_dir: "str | os.PathLike[str] | None" = None,
    timeout_s: Optional[float] = None,
    max_retries: int = DEFAULT_MAX_RETRIES,
) -> List[Any]:
    """One-shot convenience: build a runner, map, return results."""
    return JobRunner(
        jobs=n_jobs, cache_dir=cache_dir, timeout_s=timeout_s,
        max_retries=max_retries,
    ).map(jobs)
