"""Snapshot-sharded execution: one huge simulation, many workers,
byte-identical artifacts.

The three-phase protocol
------------------------

1. **Forward pass** (``shard.*_forward`` jobs): run the experiment's
   own window function sequentially, snapshotting a ``repro.state``
   boundary payload at each of W window boundaries. Boundaries snap to
   quiesce points, so every payload is a complete, JSON-able state.
   The forward pass emits the W-1 interior checkpoints plus the sha256
   digest of *every* window's end state — the checksum chain.
2. **Parallel replay** (``shard.*_window`` jobs): worker ``k`` restores
   checkpoint ``k-1`` and replays window ``k`` at full fidelity. Each
   window is an ordinary cache-sound :class:`repro.exec.jobs.Job`: the
   config embeds the boundary payload and its digest, so the cache key
   covers ``(config digest, window index, boundary-state checksum)``
   and a stale checkpoint can never alias a fresh result.
3. **Ordered merge**: the parent folds the per-window measurement
   deltas (:class:`repro.eval.runner.ExperimentCapture` states, latency
   sketches, curve segments) in window order through the existing
   ``merge_state`` machinery, verifying at each step that the replayed
   window's end-state digest matches the forward chain. The merged
   artifact is byte-identical to the serial windowed run — across
   worker counts, cache hits and kill/resume.

Both phases execute the *same* window function on freshly constructed
objects (:meth:`repro.core.equinox.EquinoxAccelerator.run_window`,
:meth:`repro.train.trainer.Trainer.run_epochs`,
:func:`repro.serve.scenarios.simulate_scenario_window`), which is what
makes forward and replay agree by construction; the digest chain turns
that argument into a machine-checked invariant.

The window count W is part of the canonical experiment spec: the
serial oracle for a sharded run is the same windowed pipeline executed
with one worker, and CI compares the two artifacts with ``cmp``.
"""

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.exec.canonical import config_digest
from repro.exec.jobs import Job, run_job

__all__ = [
    "ShardError",
    "boundary_digest",
    "run_convergence_sharded",
    "run_load_point_sharded",
    "run_scenario_sharded",
    "shard_load_forward",
    "shard_load_window",
    "shard_serve_forward",
    "shard_serve_window",
    "shard_train_forward",
    "shard_train_window",
]


class ShardError(RuntimeError):
    """A sharded run broke its checksum chain or merge cross-check."""


def boundary_digest(payload: Dict[str, Any]) -> str:
    """Content digest of a window-boundary payload (sha256 hex over the
    canonical JSON form — the same digest function job cache keys use,
    so both speak the same content-address language)."""
    return config_digest(payload)


def _map_jobs(
    jobs: Sequence[Job], executor: Optional[Any]
) -> List[Any]:
    """Run jobs through the executor, or inline exactly as a worker
    would (``run_job`` normalizes results through the canonical codec,
    so serial and parallel executions are structurally identical)."""
    if executor is not None:
        return list(executor.map(list(jobs)))
    return [run_job(job.fn_id, job.config, job.seed) for job in jobs]


# ---------------------------------------------------------------------------
# Load points (Figures 7 and 9)
# ---------------------------------------------------------------------------


def _build_point_accelerator(config: Dict[str, Any]) -> Any:
    """The accelerator variant a load-point shard job runs — identical
    construction in the forward pass and every replay worker."""
    from repro.eval.runner import build_accelerator

    training_model = None
    if config.get("training"):
        from repro.models.lstm import deepbench_lstm

        training_model = deepbench_lstm()
    return build_accelerator(
        latency_class=str(config["latency_class"]),
        encoding=str(config["encoding"]),
        training_model=training_model,
    )


def shard_load_forward(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Phase 1 for one load point: the state-forwarding pass.

    Config: ``latency_class``, ``encoding``, ``load``, ``batches``,
    ``windows``, optional ``training``. Runs the windowed schedule
    start to finish on one fresh accelerator per window, keeping only
    the boundary payloads. Returns::

        {"requests": int,             # total request budget
         "checkpoints": [payload...], # W-1 interior boundary payloads
         "digests": [sha256...],      # all W end-state digests
         "events": [int...]}          # per-window simulator events

    ``events`` is the honest per-window cost signal the benchmark uses
    to pick the critical-path window.
    """
    windows = int(config["windows"])
    accelerator = _build_point_accelerator(config)
    requests = max(500, int(config["batches"]) * accelerator.batch_slots)
    load = float(config["load"])

    checkpoints: List[Dict[str, Any]] = []
    digests: List[str] = []
    events: List[int] = []
    resume: Optional[Dict[str, Any]] = None
    for index in range(windows):
        accelerator = (
            accelerator if index == 0 else _build_point_accelerator(config)
        )
        payload, _ = accelerator.run_window(
            load, requests, windows, index, seed=seed, resume=resume
        )
        digests.append(boundary_digest(payload))
        events.append(int(accelerator.sim.events_processed))
        if index < windows - 1:
            checkpoints.append(payload)
        resume = payload
    return {
        "requests": requests,
        "checkpoints": checkpoints,
        "digests": digests,
        "events": events,
    }


def shard_load_window(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Phase 2 for one load point: replay window ``index`` at full
    observability.

    Config: the forward config minus ``batches`` plus ``requests``,
    ``index``, ``boundary_sha`` and ``resume`` (``None`` for window 0).
    The boundary payload is *part of the job config*, so the cache key
    is keyed by the boundary-state checksum. Returns the window's
    end-state digest, its capture delta, and — from the final window —
    the headline report measurements.
    """
    from repro.eval.runner import ExperimentCapture

    windows = int(config["windows"])
    index = int(config["index"])
    resume = config["resume"]
    if resume is not None:
        sha_in = boundary_digest(resume)
        if sha_in != config["boundary_sha"]:
            raise ShardError(
                f"window {index} handed a corrupt boundary payload: "
                f"digest {sha_in[:12]} != expected "
                f"{str(config['boundary_sha'])[:12]}"
            )

    accelerator = _build_point_accelerator(config)
    capture = ExperimentCapture("load_window")
    payload, report = accelerator.run_window(
        float(config["load"]),
        int(config["requests"]),
        windows,
        index,
        seed=seed,
        resume=resume,
        on_restore=lambda: capture.prime(accelerator),
    )
    capture.observe(accelerator)

    result: Dict[str, Any] = {
        "sha_out": boundary_digest(payload),
        "capture": capture.state_dict(),
    }
    if report is not None:
        result["report"] = {
            "inference_top_s": report.inference_top_s,
            "training_top_s": report.training_top_s,
            "p50_latency_us": report.p50_latency_us,
            "p99_latency_us": report.p99_latency_us,
            "mean_latency_us": report.mean_latency_us,
            "requests_completed": report.requests_completed,
        }
    return result


def _window_job_config(
    base: Dict[str, Any],
    index: int,
    digests: Sequence[str],
    checkpoints: Sequence[Dict[str, Any]],
) -> Dict[str, Any]:
    """The per-window job config: base spec + window index + boundary
    payload + boundary checksum (the three cache-key ingredients)."""
    return {
        **base,
        "index": index,
        "boundary_sha": None if index == 0 else digests[index - 1],
        "resume": None if index == 0 else checkpoints[index - 1],
    }


def _verify_chain(
    kind: str,
    results: Sequence[Dict[str, Any]],
    digests: Sequence[str],
) -> None:
    """Every replayed window must land on the forward pass's end-state
    digest — the windows provably partition the one serial run."""
    for index, result in enumerate(results):
        if result["sha_out"] != digests[index]:
            raise ShardError(
                f"{kind} window {index} diverged from the forward pass: "
                f"replay end-state digest {result['sha_out'][:12]} != "
                f"forward {digests[index][:12]}"
            )


def run_load_point_sharded(
    latency_class: str,
    encoding: str,
    load: float,
    batches: int,
    shards: int,
    seed: int = 0,
    executor: Optional[Any] = None,
    training: bool = False,
) -> Dict[str, Any]:
    """Execute one load point as a W=``shards`` sharded run.

    Returns the same shape as the ``eval.load_point`` job — headline
    measurements plus a mergeable ``capture`` state — built by the
    forward/replay/merge protocol. With ``executor`` the window jobs
    fan out across workers; without one they run inline, in order
    (the serial oracle).
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    from repro.eval.runner import ExperimentCapture

    base = {
        "latency_class": latency_class,
        "encoding": encoding,
        "load": load,
        "windows": shards,
    }
    if training:
        base["training"] = True

    forward = _map_jobs(
        [Job("shard.load_forward", {**base, "batches": batches}, seed=seed)],
        executor,
    )[0]
    digests = forward["digests"]

    window_base = {**base, "requests": forward["requests"]}
    results = _map_jobs(
        [
            Job(
                "shard.load_window",
                _window_job_config(
                    window_base, index, digests, forward["checkpoints"]
                ),
                seed=seed,
            )
            for index in range(shards)
        ],
        executor,
    )
    _verify_chain("load", results, digests)

    merged = ExperimentCapture("load_point")
    for result in results:
        merged.merge_state(result["capture"])
    report = results[-1].get("report")
    if report is None:
        raise ShardError("final load window returned no report")
    return {**report, "capture": merged.state_dict()}


# ---------------------------------------------------------------------------
# Training convergence (Figure 2)
# ---------------------------------------------------------------------------

#: Figure 2 experiment name -> setup builder. Window splits are epoch
#: ranges; the trainer state round-trips bit-exactly, so this tier of
#: sharding is byte-identical even to the *unwindowed* serial run.
_TRAIN_SETUPS: Dict[str, str] = {
    "classification": "classification_setup",
    "language_model": "language_model_setup",
}


def _train_setup(config: Dict[str, Any]) -> Tuple[Any, Any, Any]:
    from repro.train import convergence

    experiment = str(config["experiment"])
    try:
        builder: Callable[..., Any] = getattr(
            convergence, _TRAIN_SETUPS[experiment]
        )
    except KeyError:
        raise ValueError(
            f"unknown training experiment {experiment!r}; "
            f"known: {sorted(_TRAIN_SETUPS)}"
        ) from None
    return builder(str(config["encoding"]))


def _epoch_boundary(epochs: int, windows: int, index: int) -> int:
    """Cumulative epoch count after window ``index`` (same integer
    split rule as the request quotas: ``epochs·(k+1) // windows``)."""
    return (epochs * (index + 1)) // windows


def shard_train_forward(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Phase 1 for one Figure 2 curve: train straight through without
    per-epoch evaluation (evaluation only reads transient forward
    caches, so skipping it cannot perturb the parameter trajectory),
    snapshotting the trainer at each epoch-window boundary.

    Config: ``experiment`` (``classification``/``language_model``),
    ``encoding``, ``epochs``, ``windows``. The seed is carried in the
    cache key only — data and init seeds are part of the experiment
    definition.
    """
    windows = int(config["windows"])
    epochs = int(config["epochs"])
    trainer, train, valid = _train_setup(config)

    checkpoints: List[Dict[str, Any]] = []
    digests: List[str] = []
    previous = 0
    for index in range(windows):
        boundary = _epoch_boundary(epochs, windows, index)
        if boundary > previous:
            trainer.run_epochs(
                train, valid, previous + 1, boundary, evaluate=False
            )
        payload = trainer.to_state()
        digests.append(boundary_digest(payload))
        if index < windows - 1:
            checkpoints.append(payload)
        previous = boundary
    return {"checkpoints": checkpoints, "digests": digests}


def shard_train_window(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Phase 2 for one Figure 2 curve: replay epoch window ``index``
    with per-epoch evaluation, producing that window's curve segment.

    Config: forward config plus ``index``, ``boundary_sha``,
    ``resume``. Returns the window's end-state digest and its curve
    segment (possibly empty when W exceeds the epoch count).
    """
    windows = int(config["windows"])
    epochs = int(config["epochs"])
    index = int(config["index"])
    resume = config["resume"]
    if resume is not None:
        sha_in = boundary_digest(resume)
        if sha_in != config["boundary_sha"]:
            raise ShardError(
                f"train window {index} handed a corrupt boundary payload: "
                f"digest {sha_in[:12]} != expected "
                f"{str(config['boundary_sha'])[:12]}"
            )

    trainer, train, valid = _train_setup(config)
    if resume is not None:
        trainer.from_state(resume)

    first = _epoch_boundary(epochs, windows, index - 1) + 1 if index else 1
    last = _epoch_boundary(epochs, windows, index)
    if last >= first:
        curve = trainer.run_epochs(
            train, valid, first, last, str(config["encoding"])
        )
        segment = {
            "epochs": curve.epochs,
            "validation_error": curve.validation_error,
            "validation_loss": curve.validation_loss,
        }
    else:
        segment = {"epochs": [], "validation_error": [], "validation_loss": []}
    return {"sha_out": boundary_digest(trainer.to_state()), "curve": segment}


def run_convergence_sharded(
    experiment: str,
    encodings: Sequence[str],
    epochs: int,
    shards: int,
    seed: int = 0,
    executor: Optional[Any] = None,
) -> Dict[str, Any]:
    """Execute one Figure 2 experiment sharded over epoch windows.

    Returns ``{encoding: TrainingCurve}`` **bit-identical** to the
    serial :func:`repro.train.convergence.convergence_experiment` /
    ``perplexity_experiment`` output: the batch order is seeded per
    epoch and evaluation is dynamics-transparent, so the epoch-window
    split is exact, not merely windowed-canonical.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    from repro.train.trainer import TrainingCurve

    curves: Dict[str, Any] = {}
    for encoding in encodings:
        base = {
            "experiment": experiment,
            "encoding": encoding,
            "epochs": int(epochs),
            "windows": shards,
        }
        forward = _map_jobs(
            [Job("shard.train_forward", base, seed=seed)], executor
        )[0]
        digests = forward["digests"]
        results = _map_jobs(
            [
                Job(
                    "shard.train_window",
                    _window_job_config(
                        base, index, digests, forward["checkpoints"]
                    ),
                    seed=seed,
                )
                for index in range(shards)
            ],
            executor,
        )
        _verify_chain("train", results, digests)

        curve = TrainingCurve(encoding=encoding)
        for result in results:
            segment = result["curve"]
            curve.epochs.extend(int(e) for e in segment["epochs"])
            curve.validation_error.extend(
                float(v) for v in segment["validation_error"]
            )
            curve.validation_loss.extend(
                float(v) for v in segment["validation_loss"]
            )
        if curve.epochs != list(range(1, int(epochs) + 1)):
            raise ShardError(
                f"merged {encoding} curve does not cover epochs "
                f"1..{epochs}: {curve.epochs}"
            )
        curves[encoding] = curve
    return curves


# ---------------------------------------------------------------------------
# Fleet serving scenarios
# ---------------------------------------------------------------------------


def shard_serve_forward(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Phase 1 for one fleet scenario: fold the windowed schedule
    forward, keeping only boundary payloads and the digest chain.

    Config: a ``serve.fleet_scenario`` spec plus ``windows``.
    """
    from repro.serve.scenarios import simulate_scenario_window

    windows = int(config["windows"])
    checkpoints: List[Dict[str, Any]] = []
    digests: List[str] = []
    resume: Optional[Dict[str, Any]] = None
    for index in range(windows):
        step = simulate_scenario_window(
            config, seed, index=index, windows=windows, resume=resume
        )
        payload = step["payload"]
        digests.append(boundary_digest(payload))
        if index < windows - 1:
            checkpoints.append(payload)
        resume = payload
    return {"checkpoints": checkpoints, "digests": digests}


def shard_serve_window(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Phase 2 for one fleet scenario: replay arrival window ``index``
    collecting that window's per-tenant latency deltas.

    Returns the end-state digest, the window's sketch states, and —
    from the final window — the scenario summary plus the cumulative
    sketches the merge cross-checks against.
    """
    from repro.serve.scenarios import simulate_scenario_window

    windows = int(config["windows"])
    index = int(config["index"])
    resume = config["resume"]
    if resume is not None:
        sha_in = boundary_digest(resume)
        if sha_in != config["boundary_sha"]:
            raise ShardError(
                f"serve window {index} handed a corrupt boundary payload: "
                f"digest {sha_in[:12]} != expected "
                f"{str(config['boundary_sha'])[:12]}"
            )

    step = simulate_scenario_window(
        config,
        seed,
        index=index,
        windows=windows,
        resume=resume,
        collect_window_sketches=True,
    )
    result: Dict[str, Any] = {
        "sha_out": boundary_digest(step["payload"]),
        "window_sketches": step["window_sketches"],
    }
    if step["summary"] is not None:
        result["summary"] = step["summary"]
        result["cumulative_sketches"] = step["cumulative_sketches"]
    return result


def _sketch_query_surface(sketch: Any) -> Tuple[Any, ...]:
    """The query-visible identity of a sketch: count, exact sum,
    extrema, buckets. (The exact-sum accumulator's internal expansion
    is not a unique representation of its value, so equality is
    defined on what queries can see.)"""
    state = sketch.to_state()
    return (
        sketch.count,
        sketch.sum,
        sketch.min,
        sketch.max,
        tuple(sorted(state["buckets"].items())),
        state["zero_count"],
        state["inf_count"],
    )


def run_scenario_sharded(
    spec: Dict[str, Any],
    seed: int,
    shards: int,
    executor: Optional[Any] = None,
) -> Dict[str, Any]:
    """Execute one fleet scenario as a W=``shards`` sharded run.

    Returns a ``serve.fleet_scenario``-shaped curve point. The
    ``reproducible`` flag is the sharded replacement for the monolithic
    double-run self-check: it asserts (a) every replayed window closed
    the forward digest chain — enforced, a break raises — and (b) the
    ordered merge of per-window latency sketches is query-identical to
    the final window's cumulative sketches.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    from repro.obs.sketch import QuantileSketch
    from repro.serve.classes import TenantSpec

    base = {**spec, "windows": shards}
    forward = _map_jobs(
        [Job("shard.serve_forward", base, seed=seed)], executor
    )[0]
    digests = forward["digests"]
    results = _map_jobs(
        [
            Job(
                "shard.serve_window",
                _window_job_config(
                    base, index, digests, forward["checkpoints"]
                ),
                seed=seed,
            )
            for index in range(shards)
        ],
        executor,
    )
    _verify_chain("serve", results, digests)

    summary = results[-1].get("summary")
    if summary is None:
        raise ShardError("final serve window returned no summary")

    tenants = [TenantSpec.from_dict(entry) for entry in spec["tenants"]]
    merge_ok = True
    for tenant in tenants:
        merged = QuantileSketch()
        for result in results:
            merged.merge_state(result["window_sketches"][tenant.name])
        cumulative = QuantileSketch.from_state(
            results[-1]["cumulative_sketches"][tenant.name]
        )
        if _sketch_query_surface(merged) != _sketch_query_surface(cumulative):
            merge_ok = False
    summary["reproducible"] = merge_ok
    return summary
