"""The registered job functions behind the engine's ``fn_id``s.

Each function takes ``(config, seed)`` — a JSON-able parameter dict and
an integer seed — and returns a JSON-able result, per the purity
contract in :mod:`repro.exec.jobs`. Heavy packages are imported inside
the functions: a worker that only runs design-space jobs never pays for
the simulator, and importing this module stays instant for registry
resolution.

``exec_probe`` is deliberately impure *on request* (crash, sleep,
env-echo): it exists so the scheduler's isolation machinery — crash
respawn, timeouts, retry budgets — can be exercised by tests and CI
smoke runs without sacrificing a real workload.
"""

import os
import time
from dataclasses import asdict
from typing import Any, Dict, List

from repro.analysis.annotations import audited

__all__ = [
    "chaos_scenario",
    "dse_points",
    "eval_load_point",
    "exec_probe",
    "serve_fleet_scenario",
]


def dse_points(config: Dict[str, Any], seed: int) -> List[Dict[str, Any]]:
    """A slice of the Figure 6 design-space sweep.

    Config: ``encoding``, ``n_values``, ``frequencies_hz``,
    ``w_values``. Returns the feasible points of the slice in sweep
    order (n outer, frequency inner, width innermost) as plain dicts.
    The seed is unused — the sweep is analytic — but remains part of
    the cache key like every job's.
    """
    from repro.dse.explorer import DesignSpaceExplorer

    explorer = DesignSpaceExplorer(
        str(config["encoding"]),
        n_values=[int(n) for n in config["n_values"]],
        frequencies_hz=[float(f) for f in config["frequencies_hz"]],
        w_values=[int(w) for w in config["w_values"]],
    )
    return [asdict(point) for point in explorer.sweep()]


def eval_load_point(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One inference load point on one accelerator variant (Figure 7).

    Config: ``latency_class``, ``encoding``, ``load``, ``batches``,
    plus optional ``training`` (default false; when true the variant
    carries the DeepBench LSTM training workload, the Figure 9 shape —
    the key is optional so pre-existing Figure 7 cache digests are
    untouched). Returns the headline measurements plus the full
    observability capture state, so the parent process can fold the
    point into its :class:`repro.eval.runner.ExperimentCapture` exactly
    as a serial run would have.
    """
    from repro.eval.runner import ExperimentCapture, build_accelerator

    training_model = None
    if config.get("training"):
        from repro.models.lstm import deepbench_lstm

        training_model = deepbench_lstm()
    accelerator = build_accelerator(
        latency_class=str(config["latency_class"]),
        encoding=str(config["encoding"]),
        training_model=training_model,
    )
    batches = int(config["batches"])
    requests = max(500, batches * accelerator.batch_slots)
    report = accelerator.run(
        load=float(config["load"]), requests=requests, seed=seed
    )
    capture = ExperimentCapture("load_point")
    capture.observe(accelerator)
    return {
        "inference_top_s": report.inference_top_s,
        "training_top_s": report.training_top_s,
        "p50_latency_us": report.p50_latency_us,
        "p99_latency_us": report.p99_latency_us,
        "mean_latency_us": report.mean_latency_us,
        "requests_completed": report.requests_completed,
        "capture": capture.state_dict(),
    }


def chaos_scenario(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One chaos-matrix scenario (run twice: determinism self-check)."""
    from repro.faults import chaos

    return chaos.run_scenario(config, seed)


def serve_fleet_scenario(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One fleet-size serving scenario (run twice: determinism
    self-check) — a curve point of ``repro.serve/fleet-report/v1``."""
    from repro.serve import scenarios

    return scenarios.run_scenario(config, seed)


@audited(
    "wall_clock", "process",
    reason="isolation probe: crash/sleep modes exist to exercise the "
    "scheduler's timeout and BrokenProcessPool recovery; its cacheable "
    "echo mode is pure, and tests never cache the impure modes",
)
def exec_probe(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Scheduler-infrastructure probe (tests and CI smoke).

    Modes (``config["mode"]``):

    * ``echo`` (default) — return pid-independent deterministic data;
    * ``sleep`` — sleep ``config["seconds"]`` first (timeout tests);
    * ``crash`` — hard-kill the worker (``os._exit``), exercising
      ``BrokenProcessPool`` recovery;
    * ``raise`` — raise ``ValueError`` (deterministic-failure path).
    """
    mode = str(config.get("mode", "echo"))
    if mode == "crash":
        os._exit(13)
    if mode == "raise":
        raise ValueError(f"probe asked to fail (seed={seed})")
    if mode == "sleep":
        time.sleep(float(config.get("seconds", 0.1)))
    payload = config.get("payload")
    return {"payload": payload, "seed": seed, "mode": mode}
