"""Deterministic fault injection and graceful degradation.

The Equinox pitch — harvest training from idle inference cycles
*without violating the inference p99 SLO* — is only credible if it
survives the faults a real serving fleet sees: transient HBM ECC
errors, stalled tiles, lossy front-end networks, overload, stragglers
and crashed workers. This package supplies

* **fault models** — declarative, seeded specs (:class:`FaultPlan`)
  that the datapath (:mod:`repro.hw.dram`, :mod:`repro.hw.mmu`), the
  load generator (:mod:`repro.workload.loadgen`) and the fleet
  (:mod:`repro.cluster.fleet`) sample through one
  :class:`FaultInjector`, so any chaos run is byte-for-byte
  reproducible from its seed;
* **recovery mechanisms** — bounded admission queues with load
  shedding and request deadline timeouts with retry/backoff
  (:class:`AdmissionControl`, consumed by
  :class:`repro.core.dispatcher.RequestDispatcher`), an SLO guard that
  degrades gracefully under backlog (:class:`SLOGuard`), and
  straggler-tolerant synchronous rounds with partial aggregation and
  round checkpoint/restore in :mod:`repro.cluster`;
* **reporting** — every fault seen and every recovery taken lands in
  :class:`FaultCounters`, carried by ``SimulationReport`` and
  ``FleetReport`` so experiments quantify their degradation.

``python -m repro chaos`` runs a scenario matrix over these models and
prints a degradation table (see :mod:`repro.faults.chaos`).
"""

from repro.faults.admission import AdmissionControl
from repro.faults.counters import FaultCounters
from repro.faults.guard import SLOGuard
from repro.faults.injector import FaultInjector, WorkerCrashError
from repro.faults.plan import (
    FaultPlan,
    HBMFaultSpec,
    MMUFaultSpec,
    RequestFaultSpec,
    WorkerFaultSpec,
)

__all__ = [
    "AdmissionControl",
    "FaultCounters",
    "FaultInjector",
    "FaultPlan",
    "HBMFaultSpec",
    "MMUFaultSpec",
    "RequestFaultSpec",
    "SLOGuard",
    "WorkerCrashError",
    "WorkerFaultSpec",
]
