"""Admission control for the inference request queue.

Overload is the one fault no retry fixes: when offered load exceeds
capacity the formation buffer grows without bound and every request's
latency diverges. :class:`AdmissionControl` bounds the damage with the
two standard levers — a bounded admission queue that *sheds* arrivals
once full (counted, never silently), and a per-request deadline after
which a still-queued request is either re-admitted with exponential
backoff (bounded retries) or abandoned as timed out.

The dispatcher (:class:`repro.core.dispatcher.RequestDispatcher`)
consumes this; a ``None`` admission control reproduces the historical
unbounded behaviour exactly.
"""

from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping, Optional


@dataclass(frozen=True)
class AdmissionControl:
    """Dispatcher-side overload and timeout policy.

    Attributes:
        max_queue_requests: Formation-buffer capacity; an arrival that
            finds the buffer full is shed (``rejected_requests``).
            ``None`` = unbounded.
        deadline_cycles: Maximum time a request may sit in the formation
            buffer before timing out. ``None`` = no timeout.
        max_retries: Re-admissions granted to a deadline-expired request
            before it is abandoned.
        backoff_cycles: Base re-admission delay; retry *k* waits
            ``backoff_cycles * 2**k`` (bounded exponential backoff).
    """

    max_queue_requests: Optional[int] = None
    deadline_cycles: Optional[float] = None
    max_retries: int = 0
    backoff_cycles: float = 0.0

    def __post_init__(self) -> None:
        if self.max_queue_requests is not None and self.max_queue_requests < 1:
            raise ValueError(
                f"max_queue_requests must be >= 1, got {self.max_queue_requests}"
            )
        if self.deadline_cycles is not None and self.deadline_cycles <= 0:
            raise ValueError(
                f"deadline_cycles must be positive, got {self.deadline_cycles}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_cycles < 0:
            raise ValueError(
                f"backoff_cycles must be >= 0, got {self.backoff_cycles}"
            )
        if self.max_retries > 0 and self.deadline_cycles is None:
            raise ValueError("retries require a deadline to expire from")

    @property
    def bounds_queue(self) -> bool:
        return self.max_queue_requests is not None

    @property
    def has_deadline(self) -> bool:
        return self.deadline_cycles is not None

    def retry_delay(self, attempt: int) -> float:
        """Backoff before re-admission number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return self.backoff_cycles * (2.0 ** (attempt - 1))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form, round-tripping through :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AdmissionControl":
        """Rebuild a policy from :meth:`to_dict` output (validation in
        ``__post_init__`` re-runs)."""
        return cls(**dict(data))

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract): the policy is frozen
        config, so its state *is* its dict form."""
        return self.to_dict()

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "AdmissionControl":
        return cls.from_dict(state)
