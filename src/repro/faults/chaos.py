"""The chaos scenario matrix behind ``python -m repro chaos``.

Each scenario is one seeded :class:`FaultPlan` (plus, where relevant,
an admission-control policy or a fleet round timeout) driven against
the same workload. Every scenario is executed **twice** and the two
reports compared by value — the printed table therefore doubles as a
determinism self-check: a ``FAIL`` in the ``repro`` column means fault
injection perturbed state outside its seeded substreams.

The table reports degradation relative to the fault-free control arm:
p99 latency and harvested training throughput for single-accelerator
scenarios, samples/s and surviving-worker counts for fleet scenarios.
"""

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.fleet import EquinoxFleet
from repro.core.equinox import EquinoxAccelerator
from repro.dse.table1 import equinox_configuration
from repro.faults.admission import AdmissionControl
from repro.faults.plan import (
    FaultPlan,
    HBMFaultSpec,
    MMUFaultSpec,
    RequestFaultSpec,
    WorkerFaultSpec,
)
from repro.models.lstm import deepbench_lstm

#: Design point and drive level for every scenario: modest load on the
#: default latency class keeps the whole matrix CI-friendly while still
#: queueing enough work for faults to matter.
LATENCY_CLASS = "500us"
DEFAULT_LOAD = 0.6
DEFAULT_REQUESTS = 320
FLEET_SIZE = 4
FLEET_BATCHES = 2
FLEET_MIN_WORKERS = 2
#: Fleet barrier timeout as a multiple of the fault-free iteration time
#: (self-calibrated from the fleet control arm each run).
ROUND_TIMEOUT_X = 2.0
#: Straggler slowdown in the fleet scenario — chosen to overshoot the
#: round timeout so partial aggregation actually triggers.
STRAGGLER_SLOWDOWN = 4.0


@dataclass(frozen=True)
class ChaosRow:
    """One scenario's outcome (single-accelerator or fleet)."""

    name: str
    description: str
    kind: str  # "accel" | "fleet"
    p99_latency_us: float
    training_top_s: float
    samples_per_s: float
    faults_injected: int
    recoveries: int
    notable: Dict[str, float]
    reproducible: bool
    workers_aggregated: int = 0
    workers_dropped: int = 0


def _accel_key(report) -> Tuple:
    return (
        report.p99_latency_us,
        report.mean_latency_us,
        report.training_top_s,
        report.inference_top_s,
        report.requests_completed,
        report.rejected_requests,
        report.request_timeouts,
        tuple(sorted(report.faults.as_dict().items())),
    )


def _fleet_key(report) -> Tuple:
    return (
        report.samples_per_s,
        report.fleet_training_top_s,
        report.round.workers_aggregated,
        report.round.workers_dropped,
        tuple(w.p99_latency_us for w in report.workers),
        tuple(sorted(report.faults.as_dict().items())),
    )


def _run_accel(
    plan: Optional[FaultPlan],
    admission: Optional[AdmissionControl],
    load: float,
    requests: int,
    seed: int,
):
    config = equinox_configuration(LATENCY_CLASS)
    model = deepbench_lstm()
    accelerator = EquinoxAccelerator(
        config,
        model,
        training_model=model,
        fault_plan=plan,
        admission=admission,
    )
    return accelerator.run(load=load, requests=requests, seed=seed), accelerator


def _run_fleet(
    plan: Optional[FaultPlan],
    round_timeout_s: Optional[float],
    load: float,
    seed: int,
):
    fleet = EquinoxFleet(
        FLEET_SIZE,
        latency_class=LATENCY_CLASS,
        fault_plan=plan,
        round_timeout_s=round_timeout_s,
        min_workers=FLEET_MIN_WORKERS,
    )
    report = fleet.train(
        [load] * FLEET_SIZE, batches=FLEET_BATCHES, seed=seed
    )
    return report, fleet


def _accel_row(
    name: str,
    description: str,
    plan: Optional[FaultPlan],
    admission: Optional[AdmissionControl],
    load: float,
    requests: int,
    seed: int,
) -> Tuple[ChaosRow, object]:
    first, accelerator = _run_accel(plan, admission, load, requests, seed)
    second, _ = _run_accel(plan, admission, load, requests, seed)
    row = ChaosRow(
        name=name,
        description=description,
        kind="accel",
        p99_latency_us=first.p99_latency_us,
        training_top_s=first.training_top_s,
        samples_per_s=0.0,
        faults_injected=first.faults.faults_injected,
        recoveries=first.faults.recoveries,
        notable=first.faults.nonzero(),
        reproducible=_accel_key(first) == _accel_key(second),
    )
    artifact = accelerator.run_report(first, f"chaos.{name}", kind="chaos")
    return row, artifact


def _fleet_row(
    name: str,
    description: str,
    plan: Optional[FaultPlan],
    round_timeout_s: Optional[float],
    load: float,
    seed: int,
) -> Tuple[ChaosRow, object, object]:
    first, fleet = _run_fleet(plan, round_timeout_s, load, seed)
    second, _ = _run_fleet(plan, round_timeout_s, load, seed)
    worst_p99 = max(w.p99_latency_us for w in first.workers)
    row = ChaosRow(
        name=name,
        description=description,
        kind="fleet",
        p99_latency_us=worst_p99,
        training_top_s=first.fleet_training_top_s,
        samples_per_s=first.samples_per_s,
        faults_injected=first.faults.faults_injected,
        recoveries=first.faults.recoveries,
        notable=first.faults.nonzero(),
        reproducible=_fleet_key(first) == _fleet_key(second),
        workers_aggregated=first.round.workers_aggregated,
        workers_dropped=first.round.workers_dropped,
    )
    artifact = fleet.run_report(first, f"chaos.{name}")
    return row, first, artifact


def run_scenario(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Execute one scenario from pure data — the ``chaos.scenario`` job.

    ``config`` carries everything but the seed: ``kind`` ("accel" |
    "fleet"), ``name``, ``description``, an optional ``plan``
    (:meth:`FaultPlan.to_dict`), and per-kind drive parameters
    (``load``/``requests``/``admission`` or ``load``/
    ``round_timeout_s``). Returns JSON-able ``row`` + ``artifact``
    dicts (plus ``round_compute_s`` for fleet scenarios, which
    calibrates the chaos round timeout).
    """
    plan = (
        FaultPlan.from_dict(config["plan"])
        if config.get("plan") is not None
        else None
    )
    kind = str(config["kind"])
    name = str(config["name"])
    description = str(config["description"])
    if kind == "accel":
        admission = (
            AdmissionControl.from_dict(config["admission"])
            if config.get("admission") is not None
            else None
        )
        row, artifact = _accel_row(
            name, description, plan, admission,
            float(config["load"]), int(config["requests"]), seed,
        )
        return {"row": asdict(row), "artifact": artifact.to_dict()}
    if kind == "fleet":
        timeout = config.get("round_timeout_s")
        row, report, artifact = _fleet_row(
            name, description, plan,
            float(timeout) if timeout is not None else None,
            float(config["load"]), seed,
        )
        return {
            "row": asdict(row),
            "artifact": artifact.to_dict(),
            "round_compute_s": report.round.compute_s,
        }
    raise ValueError(f"unknown scenario kind {kind!r}")


def _map_scenarios(
    specs: List[Dict[str, Any]], seed: int, executor: Optional[Any]
) -> List[Dict[str, Any]]:
    """Run scenario specs, in order — inline, or fanned out as
    ``chaos.scenario`` jobs. Both paths execute :func:`run_scenario`
    on identical data, so the matrix is the same either way."""
    if executor is None:
        return [run_scenario(spec, seed) for spec in specs]
    from repro.exec.jobs import Job

    return executor.map(
        [Job("chaos.scenario", spec, seed=seed) for spec in specs]
    )


def run(
    load: float = DEFAULT_LOAD,
    requests: int = DEFAULT_REQUESTS,
    seed: int = 7,
    executor: Optional[Any] = None,
) -> Dict:
    """Execute the chaos matrix and return the scenario rows.

    Args:
        load: Offered inference load (fraction of saturation) for every
            scenario.
        requests: Requests measured per single-accelerator scenario.
        seed: Base seed for both the arrival processes and the fault
            plans.
        executor: Optional :class:`repro.exec.JobRunner`; scenarios
            (independent by construction) fan out across workers, with
            one barrier where the fleet-chaos round timeout is
            calibrated from the fault-free fleet round.
    """
    config = equinox_configuration(LATENCY_CLASS)
    # One throwaway accelerator to express deadlines/queues in units of
    # the design point's own service time.
    probe = EquinoxAccelerator(config, deepbench_lstm())
    service_cycles = probe.batch_service_cycles()
    slots = probe.batch_slots

    specs: List[Dict[str, Any]] = [
        {
            "kind": "accel", "name": "baseline",
            "description": "fault-free control arm",
            "plan": None, "admission": None,
            "load": load, "requests": requests,
        },
        {
            "kind": "accel", "name": "hbm_ecc",
            "description": "transient HBM ECC errors, bounded retry",
            "plan": FaultPlan(
                seed=seed, hbm=HBMFaultSpec(error_rate=0.05, max_retries=3)
            ).to_dict(),
            "admission": None, "load": load, "requests": requests,
        },
        {
            "kind": "accel", "name": "tile_stalls",
            "description": "tile/PE stalls inflating MMU occupancy",
            "plan": FaultPlan(
                seed=seed,
                mmu=MMUFaultSpec(
                    stall_rate=0.10, stall_cycles=0.25 * service_cycles
                ),
            ).to_dict(),
            "admission": None, "load": load, "requests": requests,
        },
        {
            "kind": "accel", "name": "lossy_frontend",
            "description": "request drops and wire delays",
            "plan": FaultPlan(
                seed=seed,
                requests=RequestFaultSpec(
                    drop_rate=0.05,
                    delay_rate=0.10,
                    delay_cycles=0.5 * service_cycles,
                ),
            ).to_dict(),
            "admission": None, "load": load, "requests": requests,
        },
        {
            "kind": "accel", "name": "overload_shed",
            "description": "delay faults vs bounded queue + deadlines",
            "plan": FaultPlan(
                seed=seed,
                requests=RequestFaultSpec(
                    delay_rate=0.25, delay_cycles=2.0 * service_cycles
                ),
            ).to_dict(),
            "admission": AdmissionControl(
                max_queue_requests=4 * slots,
                deadline_cycles=8.0 * service_cycles,
                max_retries=1,
                backoff_cycles=0.5 * service_cycles,
            ).to_dict(),
            "load": load, "requests": requests,
        },
        {
            "kind": "fleet", "name": "fleet_baseline",
            "description": f"{FLEET_SIZE}-worker fleet, fault-free",
            "plan": None, "round_timeout_s": None, "load": load,
        },
    ]

    rows: List[ChaosRow] = []
    #: Per-scenario structured run artifacts (``RunReport``), keyed by
    #: scenario name — what ``python -m repro chaos --report-dir`` dumps.
    artifacts: Dict[str, object] = {}

    def _collect(result: Dict[str, Any]) -> ChaosRow:
        from repro.obs.report import RunReport

        row = ChaosRow(**result["row"])
        rows.append(row)
        artifacts[row.name] = RunReport.from_dict(result["artifact"])
        return row

    results = _map_scenarios(specs, seed, executor)
    for result in results:
        _collect(result)
    # Self-calibrate the barrier timeout off the fault-free round so the
    # chaos straggler (slowed STRAGGLER_SLOWDOWN×) lands beyond it —
    # the one sequencing barrier in the matrix.
    healthy_iteration_s = float(results[-1]["round_compute_s"])
    chaos_spec = {
        "kind": "fleet", "name": "fleet_chaos",
        "description": "HBM errors + 1 crash + 1 straggler, "
        "partial aggregation",
        "plan": FaultPlan(
            seed=seed,
            hbm=HBMFaultSpec(error_rate=0.005, max_retries=3),
            workers=WorkerFaultSpec(
                crashed=(FLEET_SIZE - 1,),
                stragglers=((1, STRAGGLER_SLOWDOWN),),
            ),
        ).to_dict(),
        "round_timeout_s": ROUND_TIMEOUT_X * healthy_iteration_s,
        "load": load,
    }
    _collect(_map_scenarios([chaos_spec], seed, executor)[0])
    return {
        "rows": rows,
        "artifacts": artifacts,
        "load": load,
        "requests": requests,
        "seed": seed,
    }


def _ratio(value: float, base: float) -> str:
    if base <= 0 or value != value or value == float("inf"):
        return "—" if value != value else "inf"
    return f"{value / base:5.2f}x"


def render(result: Dict) -> str:
    """Format the degradation table."""
    rows: List[ChaosRow] = result["rows"]
    base = {r.kind: r for r in rows if r.name.endswith("baseline")}
    lines = [
        "Chaos matrix "
        f"(load={result['load']:g}, requests={result['requests']}, "
        f"seed={result['seed']}) — degradation vs fault-free baseline",
        "",
        f"{'scenario':<16} {'p99 (us)':>10} {'vs base':>8} "
        f"{'train TOP/s':>12} {'vs base':>8} {'inj':>5} {'rec':>5} "
        f"{'workers':>8} {'repro':>6}",
    ]
    lines.append("-" * len(lines[-1]))
    for row in rows:
        baseline = base.get(row.kind)
        p99_ratio = (
            _ratio(row.p99_latency_us, baseline.p99_latency_us)
            if baseline and baseline is not row
            else "  1.00x"
        )
        top_ratio = (
            _ratio(row.training_top_s, baseline.training_top_s)
            if baseline and baseline is not row
            else "  1.00x"
        )
        workers = (
            f"{row.workers_aggregated}/{FLEET_SIZE}"
            if row.kind == "fleet"
            else "—"
        )
        lines.append(
            f"{row.name:<16} {row.p99_latency_us:>10.1f} {p99_ratio:>8} "
            f"{row.training_top_s:>12.3f} {top_ratio:>8} "
            f"{row.faults_injected:>5d} {row.recoveries:>5d} "
            f"{workers:>8} {'ok' if row.reproducible else 'FAIL':>6}"
        )
    lines.append("")
    for row in rows:
        if row.notable:
            detail = ", ".join(
                f"{k}={v:g}" for k, v in sorted(row.notable.items())
            )
            lines.append(f"  {row.name}: {detail}")
    bad = [r.name for r in rows if not r.reproducible]
    lines.append("")
    lines.append(
        "determinism self-check: every scenario ran twice from its seed — "
        + ("all reports identical" if not bad else f"MISMATCH in {bad}")
    )
    return "\n".join(lines)
