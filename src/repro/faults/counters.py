"""Fault and recovery counters carried by every report.

One mutable :class:`FaultCounters` instance is shared by all the
injection and recovery sites of a run (the injector, the dispatcher's
admission control, the SLO guard, the fleet). Reports embed a snapshot
so every experiment quantifies its degradation — and so determinism
tests can compare whole runs by value.
"""

from dataclasses import asdict, dataclass, replace
from typing import Dict


@dataclass
class FaultCounters:
    """Everything injected and everything recovered, by mechanism."""

    # --- injected faults --------------------------------------------------
    hbm_errors: int = 0  #: transfers that hit a transient ECC error
    mmu_stalls: int = 0  #: jobs that hit a tile/PE stall
    mmu_stall_cycles: float = 0.0  #: total extra MMU occupancy from stalls
    requests_dropped: int = 0  #: requests lost before the dispatcher
    requests_delayed: int = 0  #: requests delayed on the wire
    workers_crashed: int = 0  #: fleet workers lost mid-round

    # --- recovery actions -------------------------------------------------
    hbm_retries: int = 0  #: ECC retries issued (bounded per transfer)
    hbm_retry_exhausted: int = 0  #: transfers that used their whole budget
    rejected_requests: int = 0  #: requests shed by the admission queue
    request_timeouts: int = 0  #: requests abandoned at their deadline
    request_retries: int = 0  #: deadline-expired requests re-admitted
    degraded_intervals: int = 0  #: SLO-guard degraded-mode entries
    degraded_cycles: float = 0.0  #: cycles spent in degraded mode
    stragglers_dropped: int = 0  #: workers excluded by the round timeout
    rounds_partial: int = 0  #: rounds completed by partial aggregation
    round_restores: int = 0  #: rounds resumed from a checkpoint

    def as_dict(self) -> Dict[str, float]:
        return asdict(self)

    def snapshot(self) -> "FaultCounters":
        """A value copy for embedding in an immutable-ish report."""
        return replace(self)

    def merge(self, other: "FaultCounters") -> None:
        """Accumulate another run's counters into this one (fleet
        reports roll up each worker accelerator's counters)."""
        for name, value in other.as_dict().items():
            setattr(self, name, getattr(self, name) + value)

    @property
    def faults_injected(self) -> int:
        return (
            self.hbm_errors
            + self.mmu_stalls
            + self.requests_dropped
            + self.requests_delayed
            + self.workers_crashed
        )

    @property
    def recoveries(self) -> int:
        return (
            self.hbm_retries
            + self.rejected_requests
            + self.request_timeouts
            + self.request_retries
            + self.degraded_intervals
            + self.stragglers_dropped
            + self.rounds_partial
            + self.round_restores
        )

    def nonzero(self) -> Dict[str, float]:
        """Only the counters that fired (compact report rendering)."""
        return {k: v for k, v in self.as_dict().items() if v}

    def to_state(self) -> Dict[str, float]:
        """Snapshot (``repro.state`` contract): same shape as
        :meth:`as_dict`, named per the symmetric-pair convention."""
        return self.as_dict()

    def from_state(self, state: Dict[str, float]) -> None:
        """Overwrite every counter from a :meth:`to_state` snapshot."""
        for name in self.as_dict():
            setattr(self, name, type(getattr(self, name))(state[name]))

    def merge_state(self, state: Dict[str, float]) -> None:
        """Fold another window's :meth:`to_state` snapshot into this one
        (the sharded executor's ordered merge). Every counter is a sum,
        so the fold is symmetric: merging window snapshots in boundary
        order reproduces the serial run's counters exactly."""
        for name in self.as_dict():
            setattr(
                self,
                name,
                getattr(self, name)
                + type(getattr(self, name))(state[name]),
            )
