"""The SLO guard: graceful degradation under backlog.

The hardware spike guard (paper §3.2) already pauses training grants
while the inference queue is above its threshold — but it is stateless
and instantaneous. The SLO guard is the *service-level* layer above it:
it samples the inference backlog periodically and, when the backlog
crosses a degradation threshold (a fault is piling work up faster than
the datapath drains it), switches the whole front-end into degraded
mode:

* training is preempted outright (``SchedulingPolicy.degraded``), not
  just deprioritized — no training job is granted and no software
  block committed until recovery;
* adaptive batch formation shrinks (``BatchingPolicy.set_degraded``):
  batches issue on a halved timeout so queued requests stop paying
  full formation waits on top of queueing.

Every entry and the total cycles spent degraded are counted, so a
report shows *how long* the service ran in degraded mode, not just
that it survived. Hysteresis (a lower recovery threshold) prevents
flapping at the boundary.
"""

from typing import Any, Callable, Dict, Optional

from repro.faults.counters import FaultCounters
from repro.sim.engine import Simulator


class SLOGuard:
    """Periodic backlog monitor driving degraded mode.

    Args:
        sim: The simulator whose clock paces the checks.
        backlog_fn: The inference-backlog signal (requests queued or
            batched-but-not-started).
        degrade_threshold: Backlog at or above which degraded mode
            engages.
        check_interval_cycles: Sampling period (typically one batch
            service time).
        counters: Shared fault/recovery counters.
        recover_threshold: Backlog at or below which degraded mode
            disengages; defaults to half the degrade threshold.
        on_degrade / on_recover: Mode-transition hooks (the accelerator
            wires these to the scheduler and batching policy).
    """

    def __init__(
        self,
        sim: Simulator,
        backlog_fn: Callable[[], int],
        degrade_threshold: int,
        check_interval_cycles: float,
        counters: FaultCounters,
        recover_threshold: Optional[int] = None,
        on_degrade: Optional[Callable[[], None]] = None,
        on_recover: Optional[Callable[[], None]] = None,
    ):
        if degrade_threshold < 1:
            raise ValueError(
                f"degrade_threshold must be >= 1, got {degrade_threshold}"
            )
        if check_interval_cycles <= 0:
            raise ValueError(
                f"check_interval_cycles must be positive, "
                f"got {check_interval_cycles}"
            )
        if recover_threshold is None:
            recover_threshold = degrade_threshold // 2
        if recover_threshold >= degrade_threshold:
            raise ValueError(
                "recover_threshold must be below degrade_threshold "
                "(hysteresis), got "
                f"{recover_threshold} >= {degrade_threshold}"
            )
        self.sim = sim
        self.backlog_fn = backlog_fn
        self.degrade_threshold = degrade_threshold
        self.recover_threshold = recover_threshold
        self.check_interval_cycles = check_interval_cycles
        self.counters = counters
        self.on_degrade = on_degrade
        self.on_recover = on_recover
        self.degraded = False
        self._degraded_since = 0.0
        self._ticker = sim.every(check_interval_cycles, self._check)

    def _check(self) -> None:
        backlog = self.backlog_fn()
        if not self.degraded and backlog >= self.degrade_threshold:
            self.degraded = True
            self._degraded_since = self.sim.now
            self.counters.degraded_intervals += 1
            if self.on_degrade is not None:
                self.on_degrade()
        elif self.degraded and backlog <= self.recover_threshold:
            self.degraded = False
            self.counters.degraded_cycles += self.sim.now - self._degraded_since
            if self.on_recover is not None:
                self.on_recover()

    def flush(self) -> None:
        """Account cycles of a still-open degraded interval (so a report
        cut mid-degradation still shows the time spent degraded)."""
        if self.degraded:
            self.counters.degraded_cycles += self.sim.now - self._degraded_since
            self._degraded_since = self.sim.now

    def stop(self) -> None:
        """Cancel the periodic check (end of experiment)."""
        self.flush()
        self._ticker.cancel()

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract): the mode flag and the
        open interval's start. Thresholds and the check interval are
        constructor config; the counters are owned by whoever shares
        them."""
        return {
            "degraded": self.degraded,
            "degraded_since": self._degraded_since,
        }

    def from_state(self, state: Dict[str, Any]) -> None:
        """Restore mode state and **re-arm** the periodic check.

        A freshly constructed guard armed its ticker against the clock
        at construction time (zero); after the owning facade restores a
        later clock that pending firing would sit in the past, so the
        ticker is cancelled and re-armed one interval from the restored
        now. Sampling phase is therefore measured from the restore
        point — the guard is a monitor, not part of the bit-exact
        datapath contract.
        """
        self.degraded = bool(state["degraded"])
        self._degraded_since = float(state["degraded_since"])
        self._ticker.cancel()
        self._ticker = self.sim.every(self.check_interval_cycles, self._check)
