"""Runtime fault sampling bound to one :class:`FaultPlan`.

The injector is the only object that draws random numbers for fault
injection. Each component samples from its own substream
(:meth:`FaultPlan.rng`), in the deterministic order the discrete-event
simulator visits the injection sites — which makes every chaos run
reproducible from ``(plan, workload seed)`` alone.
"""

from typing import Any, Dict, Optional

from repro.faults.counters import FaultCounters
from repro.faults.plan import FaultPlan
from repro.state.protocol import restore_rng, rng_state


class WorkerCrashError(RuntimeError):
    """A fleet worker died mid-round (injected by a :class:`FaultPlan`)."""

    def __init__(self, worker_id: int):
        super().__init__(f"worker {worker_id} crashed during the round")
        self.worker_id = worker_id


class FaultInjector:
    """Samples a plan's fault specs and tallies what it injected.

    Components hold a reference and call the site-specific methods at
    their injection points; a ``None`` injector (the default everywhere)
    means the fault subsystem is entirely out of the picture.
    """

    def __init__(self, plan: FaultPlan, counters: Optional[FaultCounters] = None):
        self.plan = plan
        self.counters = counters if counters is not None else FaultCounters()
        self._hbm_rng = plan.rng("hbm")
        self._mmu_rng = plan.rng("mmu")

    # ------------------------------------------------------------------
    # hw.dram — transient ECC errors with bounded retry
    # ------------------------------------------------------------------

    @property
    def hbm_max_retries(self) -> int:
        return self.plan.hbm.max_retries

    def hbm_transfer_error(self) -> bool:
        """Whether this transfer completion carries an ECC error."""
        if not self.plan.hbm.enabled:
            return False
        if self._hbm_rng.random() >= self.plan.hbm.error_rate:
            return False
        self.counters.hbm_errors += 1
        return True

    def note_hbm_retry(self) -> None:
        self.counters.hbm_retries += 1

    def note_hbm_retry_exhausted(self) -> None:
        self.counters.hbm_retry_exhausted += 1

    # ------------------------------------------------------------------
    # hw.mmu — tile/PE stalls
    # ------------------------------------------------------------------

    def mmu_stall_cycles(self) -> float:
        """Extra occupancy for the job being granted (0.0 = no stall)."""
        spec = self.plan.mmu
        if not spec.enabled:
            return 0.0
        if self._mmu_rng.random() >= spec.stall_rate:
            return 0.0
        self.counters.mmu_stalls += 1
        self.counters.mmu_stall_cycles += spec.stall_cycles
        return spec.stall_cycles

    # ------------------------------------------------------------------
    # cluster.fleet — crashes and stragglers (spec-driven, no sampling:
    # fleet faults name their victims so scenarios stay composable)
    # ------------------------------------------------------------------

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract): both substream
        positions. The plan is immutable config (rebuilt from its own
        ``to_dict``), and the counters are owned by whoever shares
        them, so neither is captured here."""
        return {"hbm_rng": rng_state(self._hbm_rng),
                "mmu_rng": rng_state(self._mmu_rng)}

    def from_state(self, state: Dict[str, Any]) -> None:
        restore_rng(self._hbm_rng, state["hbm_rng"])
        restore_rng(self._mmu_rng, state["mmu_rng"])

    def check_worker_crash(self, worker_id: int) -> None:
        """Raise :class:`WorkerCrashError` if the plan kills this worker."""
        if self.plan.workers.is_crashed(worker_id):
            self.counters.workers_crashed += 1
            raise WorkerCrashError(worker_id)

    def worker_slowdown(self, worker_id: int) -> float:
        return self.plan.workers.slowdown_for(worker_id)
