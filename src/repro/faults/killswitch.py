"""Deterministic self-SIGKILL: the crash half of crash-recovery drills.

A :class:`KillSwitch` counts completed work units and, when the count
reaches its threshold, sends the *current process* an uncatchable
SIGKILL. Nothing between the count and the kill is probabilistic, so a
drill is reproducible: ``--kill-after 3`` dies after exactly three
completions every time, and CI can assert that a ``--resume`` of the
survivor converges to the byte-identical artifact.

The kill fires *after* the unit's completion has been journaled — the
point of the drill is to die with durable partial progress, mirroring
the real preemption the checkpoint layer defends against. SIGKILL (not
``sys.exit``/``os._exit``) is deliberate: no atexit hooks, no finally
blocks, no buffered flushes — the hardest crash the OS can deliver
short of pulling power.
"""

import os
import signal
from repro.analysis.annotations import audited

__all__ = ["KillSwitch"]


class KillSwitch:
    """Dies (SIGKILL) when ``note_unit_done`` has been called ``after``
    times. ``after=None`` disables the switch (every call no-ops)."""

    def __init__(self, after: "int | None"):
        if after is not None and after < 1:
            raise ValueError(f"--kill-after must be >= 1, got {after}")
        self.after = after
        self.units_done = 0

    @property
    def armed(self) -> bool:
        return self.after is not None

    @audited(
        "process",
        reason="crash-recovery drill: the deliberate SIGKILL that the "
        "checkpoint/resume machinery must survive; fires only when the "
        "operator passes --kill-after",
    )
    def note_unit_done(self) -> None:
        """Count one completed work unit; kill the process at the mark."""
        if self.after is None:
            return
        self.units_done += 1
        if self.units_done >= self.after:
            os.kill(os.getpid(), signal.SIGKILL)
