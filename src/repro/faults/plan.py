"""Declarative fault specifications and the seeded :class:`FaultPlan`.

A plan is pure data: per-component fault specs plus one seed. Runtime
sampling happens in :class:`repro.faults.injector.FaultInjector`, which
derives an *independent, deterministic* RNG stream per component from
the plan's seed — two runs of the same plan draw identical fault
sequences, and adding a fault model to one component never perturbs the
draws of another.
"""

import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

import numpy as np


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True)
class HBMFaultSpec:
    """Transient ECC errors on the HBM channel.

    Attributes:
        error_rate: Per-transfer probability that the transfer completes
            with an uncorrectable-on-the-fly ECC error and must be
            retried (the whole block stream re-crosses the channel).
        max_retries: Bounded retry budget per transfer. A transfer whose
            budget is exhausted is delivered through the slow host-side
            correction path and counted ``hbm_retry_exhausted``.
    """

    error_rate: float = 0.0
    max_retries: int = 3

    def __post_init__(self) -> None:
        _check_rate("error_rate", self.error_rate)
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")

    @property
    def enabled(self) -> bool:
        return self.error_rate > 0.0


@dataclass(frozen=True)
class MMUFaultSpec:
    """Tile/PE stall faults in the systolic arrays.

    A stalled job occupies the MMU for ``stall_cycles`` extra cycles
    (clock-gated PE column, ECC scrub of a weight tile, ...); the extra
    occupancy is attributed to Figure 8's "other" category.
    """

    stall_rate: float = 0.0
    stall_cycles: float = 0.0

    def __post_init__(self) -> None:
        _check_rate("stall_rate", self.stall_rate)
        if self.stall_cycles < 0:
            raise ValueError(f"stall_cycles must be >= 0, got {self.stall_cycles}")

    @property
    def enabled(self) -> bool:
        return self.stall_rate > 0.0 and self.stall_cycles > 0.0


@dataclass(frozen=True)
class RequestFaultSpec:
    """Front-end network faults: dropped and delayed inference requests.

    Attributes:
        drop_rate: Per-request probability the request is lost before it
            reaches the dispatcher (it never arrives).
        delay_rate: Per-request probability the request is delayed by
            ``delay_cycles`` on the wire (it — and the stream behind it —
            reaches the queue late).
        delay_cycles: Added network delay for a delayed request.
    """

    drop_rate: float = 0.0
    delay_rate: float = 0.0
    delay_cycles: float = 0.0

    def __post_init__(self) -> None:
        _check_rate("drop_rate", self.drop_rate)
        _check_rate("delay_rate", self.delay_rate)
        if self.delay_cycles < 0:
            raise ValueError(f"delay_cycles must be >= 0, got {self.delay_cycles}")
        if self.drop_rate >= 1.0:
            raise ValueError("drop_rate must be < 1 or no request ever arrives")

    @property
    def enabled(self) -> bool:
        return self.drop_rate > 0.0 or (
            self.delay_rate > 0.0 and self.delay_cycles > 0.0
        )


@dataclass(frozen=True)
class WorkerFaultSpec:
    """Fleet-level faults: crashed workers and stragglers.

    Attributes:
        crashed: Worker ids that crash during the round (their
            measurement aborts with
            :class:`repro.faults.injector.WorkerCrashError`).
        stragglers: ``(worker_id, slowdown_factor)`` pairs; a straggler's
            iteration time is multiplied by its factor (> 1).
    """

    crashed: Tuple[int, ...] = ()
    stragglers: Tuple[Tuple[int, float], ...] = ()

    def __post_init__(self) -> None:
        for worker_id, factor in self.stragglers:
            if factor <= 1.0:
                raise ValueError(
                    f"straggler slowdown for worker {worker_id} must be "
                    f"> 1, got {factor}"
                )
        overlap = set(self.crashed) & {w for w, _ in self.stragglers}
        if overlap:
            raise ValueError(
                f"workers {sorted(overlap)} cannot both crash and straggle"
            )

    @property
    def enabled(self) -> bool:
        return bool(self.crashed) or bool(self.stragglers)

    def is_crashed(self, worker_id: int) -> bool:
        return worker_id in self.crashed

    def slowdown_for(self, worker_id: int) -> float:
        for wid, factor in self.stragglers:
            if wid == worker_id:
                return factor
        return 1.0


@dataclass(frozen=True)
class FaultPlan:
    """One seeded, declarative chaos scenario.

    The plan is the unit of reproducibility: every injected fault in a
    run derives from ``seed`` through per-component substreams, so a
    report produced under a plan can be regenerated exactly.
    """

    seed: int = 0
    hbm: HBMFaultSpec = field(default_factory=HBMFaultSpec)
    mmu: MMUFaultSpec = field(default_factory=MMUFaultSpec)
    requests: RequestFaultSpec = field(default_factory=RequestFaultSpec)
    workers: WorkerFaultSpec = field(default_factory=WorkerFaultSpec)

    @classmethod
    def none(cls, seed: int = 0) -> "FaultPlan":
        """A plan injecting nothing (the control arm of a chaos matrix)."""
        return cls(seed=seed)

    @property
    def enabled(self) -> bool:
        return (
            self.hbm.enabled
            or self.mmu.enabled
            or self.requests.enabled
            or self.workers.enabled
        )

    def rng(self, component: str, instance: int = 0) -> np.random.Generator:
        """An independent deterministic stream for one component.

        The stream is keyed on ``(seed, crc32(component), instance)``:
        stable across runs and platforms, decorrelated across
        components and instances (e.g. per-worker streams).
        """
        key = zlib.crc32(component.encode("utf-8"))
        return np.random.default_rng([self.seed, key, instance])

    def to_dict(self) -> Dict[str, Any]:
        """The plan as plain JSON-able data (tuples become lists).

        Round-trips through :meth:`from_dict`; this is how a plan rides
        inside a :class:`repro.exec.Job` config or a report artifact.
        """
        return {
            "seed": self.seed,
            "hbm": {
                "error_rate": self.hbm.error_rate,
                "max_retries": self.hbm.max_retries,
            },
            "mmu": {
                "stall_rate": self.mmu.stall_rate,
                "stall_cycles": self.mmu.stall_cycles,
            },
            "requests": {
                "drop_rate": self.requests.drop_rate,
                "delay_rate": self.requests.delay_rate,
                "delay_cycles": self.requests.delay_cycles,
            },
            "workers": {
                "crashed": list(self.workers.crashed),
                "stragglers": [
                    [wid, factor] for wid, factor in self.workers.stragglers
                ],
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output (all validation in
        the spec constructors re-runs)."""
        workers = data.get("workers", {})
        return cls(
            seed=int(data.get("seed", 0)),
            hbm=HBMFaultSpec(**data.get("hbm", {})),
            mmu=MMUFaultSpec(**data.get("mmu", {})),
            requests=RequestFaultSpec(**data.get("requests", {})),
            workers=WorkerFaultSpec(
                crashed=tuple(int(w) for w in workers.get("crashed", ())),
                stragglers=tuple(
                    (int(wid), float(factor))
                    for wid, factor in workers.get("stragglers", ())
                ),
            ),
        )

    def describe(self) -> str:
        """One-line human summary (chaos-table row label)."""
        parts = []
        if self.hbm.enabled:
            parts.append(
                f"hbm(err={self.hbm.error_rate:g},"
                f"retries<={self.hbm.max_retries})"
            )
        if self.mmu.enabled:
            parts.append(
                f"mmu(stall={self.mmu.stall_rate:g},"
                f"{self.mmu.stall_cycles:g}cyc)"
            )
        if self.requests.enabled:
            parts.append(
                f"req(drop={self.requests.drop_rate:g},"
                f"delay={self.requests.delay_rate:g})"
            )
        if self.workers.enabled:
            parts.append(
                f"workers(crash={list(self.workers.crashed)},"
                f"stragglers={list(self.workers.stragglers)})"
            )
        body = " ".join(parts) if parts else "no faults"
        return f"FaultPlan(seed={self.seed}: {body})"
