"""Hardware component models.

Timing-level models of every block in the paper's Figure 3 — the matrix
multiply unit (m systolic arrays of n×n w-wide PEs), the SIMD unit, the
activation/weight buffers, the DRAM (HBM) interface and im2col — plus a
functional per-cycle systolic-array model used the way the authors used
RTL traces: to validate the event-driven timing formulas.
"""

from repro.hw.config import AcceleratorConfig, SRAMBudget, DRAMSpec
from repro.hw.isa import MMUJob, SIMDJob, DRAMRequest, StepProgram, Program
from repro.hw.mmu import MatrixMultiplyUnit
from repro.hw.simd import SIMDUnit
from repro.hw.dram import HBMInterface
from repro.hw.buffers import OnChipBuffer, BufferAllocation
from repro.hw.systolic import SystolicArray, systolic_latency_cycles
from repro.hw.im2col import lowered_conv_gemm, Im2ColUnit
from repro.hw.instructions import (
    Opcode,
    Instruction,
    InstructionImage,
    assemble_inference,
    assemble_training,
)

__all__ = [
    "Opcode",
    "Instruction",
    "InstructionImage",
    "assemble_inference",
    "assemble_training",
    "AcceleratorConfig",
    "SRAMBudget",
    "DRAMSpec",
    "MMUJob",
    "SIMDJob",
    "DRAMRequest",
    "StepProgram",
    "Program",
    "MatrixMultiplyUnit",
    "SIMDUnit",
    "HBMInterface",
    "OnChipBuffer",
    "BufferAllocation",
    "SystolicArray",
    "systolic_latency_cycles",
    "lowered_conv_gemm",
    "Im2ColUnit",
]
