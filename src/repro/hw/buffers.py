"""On-chip buffer models: capacity space-sharing and port contention.

Paper §3.1: the activation and weight buffers are banked; each bank has
a dedicated read port facing the systolic arrays, and a read-write port
shared by the DRAM and host interfaces. Contexts (inference vs training
services) space-share capacity, with allocations fixed at installation
time; training's staging allocation is limited to under 2 % of total
SRAM (§2.2).

Array-facing reads are implied by MMU occupancy (dedicated ports), so
the contention this module models is on the shared DRAM/host port: a
training staging write and a host model upload serialize there.
"""

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.sim.engine import Simulator
from repro.sim.resources import SerialResource


@dataclass(frozen=True)
class BufferAllocation:
    """A context's reservation within a buffer."""

    context: str
    bytes: float


class BufferCapacityError(Exception):
    """Raised when an allocation exceeds remaining buffer capacity."""


class OnChipBuffer:
    """A banked SRAM buffer with space-shared capacity.

    Attributes:
        name: Buffer identifier (``activation``, ``weight``...).
        capacity_bytes: Total SRAM capacity of the buffer.
        port_bytes_per_cycle: Width of the shared DRAM/host read-write
            port.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        capacity_bytes: float,
        port_bytes_per_cycle: float,
    ):
        if capacity_bytes <= 0 or port_bytes_per_cycle <= 0:
            raise ValueError("capacity and port width must be positive")
        self.sim = sim
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.port_bytes_per_cycle = port_bytes_per_cycle
        self._allocations: Dict[str, float] = {}
        self._shared_port = SerialResource(sim, f"{name}.rw_port")

    # ------------------------------------------------------------------
    # Capacity space-sharing (installation time)
    # ------------------------------------------------------------------

    @property
    def allocated_bytes(self) -> float:
        return sum(self._allocations.values())

    @property
    def free_bytes(self) -> float:
        return self.capacity_bytes - self.allocated_bytes

    def allocate(self, context: str, size_bytes: float) -> BufferAllocation:
        """Reserve ``size_bytes`` for ``context`` (one slice per context)."""
        if context in self._allocations:
            raise ValueError(f"context {context!r} already holds {self.name}")
        if size_bytes < 0:
            raise ValueError("allocation size must be non-negative")
        if size_bytes > self.free_bytes + 1e-9:
            holders = ", ".join(
                f"{name}={held:.0f} B" for name, held in self._allocations.items()
            ) or "none"
            raise BufferCapacityError(
                f"{self.name} buffer cannot install context {context!r}: "
                f"requested {size_bytes:.0f} B but only {self.free_bytes:.0f} B "
                f"of {self.capacity_bytes:.0f} B remain "
                f"(existing allocations: {holders}); "
                f"short by {size_bytes - self.free_bytes:.0f} B"
            )
        self._allocations[context] = size_bytes
        return BufferAllocation(context, size_bytes)

    def release(self, context: str) -> None:
        """Release a context's reservation (service uninstall)."""
        self._allocations.pop(context, None)

    def allocation_of(self, context: str) -> float:
        return self._allocations.get(context, 0.0)

    # ------------------------------------------------------------------
    # Shared DRAM/host port
    # ------------------------------------------------------------------

    def port_write(
        self,
        size_bytes: float,
        on_done: Optional[Callable[[], None]] = None,
        priority: int = 0,
        tag: str = "fill",
    ) -> None:
        """Serialize a fill/spill through the shared RW port."""
        if size_bytes < 0:
            raise ValueError("negative transfer size")
        duration = size_bytes / self.port_bytes_per_cycle
        self._shared_port.request(
            duration, on_done=on_done, priority=priority, tag=tag
        )

    @property
    def port_queue_depth(self) -> int:
        return self._shared_port.queue_depth

    def port_utilization(self, window_cycles: Optional[float] = None) -> float:
        return self._shared_port.utilization(window_cycles)

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract): the allocation table and
        the shared port's meters (which refuses while fills are in
        flight)."""
        return {
            "allocations": dict(self._allocations),
            "shared_port": self._shared_port.to_state(),
        }

    def from_state(self, state: Dict[str, Any]) -> None:
        self._allocations = {
            str(context): float(size)
            for context, size in state["allocations"].items()
        }
        self._shared_port.from_state(state["shared_port"])
