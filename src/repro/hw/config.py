"""Accelerator configuration.

The three array dimensions the paper's design-space exploration sweeps —
``n`` (systolic array side, which is also the minimum batch size for
full utilization of vector-matrix models), ``m`` (number of systolic
arrays) and ``w`` (PE width) — plus clock frequency, datapath encoding,
and the SRAM/DRAM provisioning of §5 (20 MB activation, 50 MB weight,
32 KB instruction, 5 MB SIMD register file; one HBM stack at 1 TB/s).
"""

from dataclasses import dataclass, field

from repro.arith.types import Encoding, encoding_by_name

MB = 1024 * 1024
KB = 1024


@dataclass(frozen=True)
class SRAMBudget:
    """On-chip SRAM partitioning (paper §5 configuration)."""

    activation_bytes: int = 20 * MB
    weight_bytes: int = 50 * MB
    instruction_bytes: int = 32 * KB
    simd_rf_bytes: int = 5 * MB

    @property
    def total_bytes(self) -> int:
        return (
            self.activation_bytes
            + self.weight_bytes
            + self.instruction_bytes
            + self.simd_rf_bytes
        )


@dataclass(frozen=True)
class DRAMSpec:
    """Off-chip memory: one HBM stack (paper §4.1).

    Attributes:
        bandwidth_bytes_per_s: Peak bandwidth (1 TB/s, the largest HBM
            commercially available at publication).
        latency_ns: Fixed access latency added after serialization.
        block_bytes: Access granularity (512-bit blocks, the size the
            authors validated against DRAMSim).
    """

    bandwidth_bytes_per_s: float = 1e12
    latency_ns: float = 100.0
    block_bytes: int = 64


@dataclass(frozen=True)
class AcceleratorConfig:
    """One accelerator design point.

    Attributes:
        name: Human-readable identifier, e.g. ``"equinox_500us"``.
        n: Systolic array side (n×n PEs per array). Vector-matrix
            models need batch ≥ n for full utilization, so n is also
            the batch target of the request dispatcher.
        m: Number of systolic arrays.
        w: PE width (fixed-point values processed per PE per cycle).
        frequency_hz: Clock frequency.
        encoding: Datapath numeric encoding name (``hbfp8``/``bfloat16``
            /``fixed8``).
        sram: SRAM partitioning.
        dram: HBM interface spec.
        simd_lanes: Scalar lanes in the SIMD unit (bfloat16 ALUs).
        staging_fraction: Fraction of on-chip buffers a training service
            may use to stage DRAM operands (< 2 % per the paper §2.2).
    """

    name: str
    n: int
    m: int
    w: int
    frequency_hz: float
    encoding: str = "hbfp8"
    sram: SRAMBudget = field(default_factory=SRAMBudget)
    dram: DRAMSpec = field(default_factory=DRAMSpec)
    simd_lanes: int = 2600
    staging_fraction: float = 0.02

    def __post_init__(self) -> None:
        if self.n < 1 or self.m < 1 or self.w < 1:
            raise ValueError(f"array dimensions must be positive: {self}")
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        encoding_by_name(self.encoding)  # raises on unknown name

    # ------------------------------------------------------------------
    # Derived datapath geometry
    # ------------------------------------------------------------------

    @property
    def encoding_info(self) -> Encoding:
        return encoding_by_name(self.encoding)

    @property
    def tile_k(self) -> int:
        """Reduction-dimension tile width: n·w values per array pass."""
        return self.n * self.w

    @property
    def column_group(self) -> int:
        """Output columns produced per MMU pass: n per array × m arrays."""
        return self.m * self.n

    @property
    def total_alus(self) -> int:
        """Multiply-accumulate units: m arrays × n×n PEs × w wide."""
        return self.m * self.n * self.n * self.w

    @property
    def peak_ops_per_cycle(self) -> float:
        """Paper Eq. 3 numerator: 2 ops (mul+acc) per ALU per cycle."""
        return 2.0 * self.total_alus

    @property
    def peak_throughput_ops(self) -> float:
        """Peak throughput in op/s (Eq. 3)."""
        return self.peak_ops_per_cycle * self.frequency_hz

    @property
    def peak_throughput_top_s(self) -> float:
        """Peak throughput in TOp/s."""
        return self.peak_throughput_ops / 1e12

    @property
    def pipeline_drain_cycles(self) -> int:
        """Cycles from last input row to last output: the systolic fill
        of the n·w-deep reduction plus the 2n skew across rows/columns.

        Validated against the functional array model in
        ``tests/hw/test_systolic.py``.
        """
        return self.n * self.w + 2 * self.n

    @property
    def dram_bytes_per_cycle(self) -> float:
        return self.dram.bandwidth_bytes_per_s / self.frequency_hz

    @property
    def dram_latency_cycles(self) -> float:
        return self.dram.latency_ns * 1e-9 * self.frequency_hz

    @property
    def staging_bytes(self) -> float:
        """On-chip bytes available to stage training operands."""
        return self.staging_fraction * self.sram.total_bytes

    # ------------------------------------------------------------------
    # Unit conversions
    # ------------------------------------------------------------------

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.frequency_hz

    def cycles_to_us(self, cycles: float) -> float:
        return cycles / self.frequency_hz * 1e6

    def seconds_to_cycles(self, seconds: float) -> float:
        return seconds * self.frequency_hz

    def us_to_cycles(self, us: float) -> float:
        return us * 1e-6 * self.frequency_hz
