"""HBM (off-chip DRAM) interface model.

A single HBM stack with 1 TB/s of bandwidth (paper §4.1). Transfers
serialize on the channel at the configured bytes-per-cycle rate, round
up to 512-bit blocks, and complete a fixed access latency after their
last block — the throughput/latency-limited model the authors verified
against DRAMSim for 512-bit blocks.

Inference traffic (rare — models are resident on chip) gets priority
over training traffic so that piggybacking never delays an inference
weight or I/O transfer.

Fault model: with a :class:`repro.faults.injector.FaultInjector`
attached, a completed transfer may carry a transient ECC error and be
retried — the whole block stream re-crosses the channel (at the same
priority), so retries consume real bandwidth and delay whoever waits
on the transfer. Retries are *bounded* per transfer; an exhausted
budget falls back to the slow host-side correction path (delivered,
counted ``hbm_retry_exhausted``) rather than wedging the pipeline.
"""

from typing import Any, Callable, Dict, Optional

from repro.hw.config import AcceleratorConfig
from repro.sim.engine import Simulator
from repro.sim.resources import BandwidthChannel

#: Queue priorities on the DRAM channel.
PRIORITY_INFERENCE = 0
PRIORITY_TRAINING = 1

#: ``bytes_by_kind`` tag under which ECC-retry traffic is accounted, so
#: retry bandwidth never masquerades as useful stream bytes.
ECC_RETRY_KIND = "ecc_retry"


class HBMInterface:
    """Event-driven model of the DRAM interface."""

    def __init__(self, sim: Simulator, config: AcceleratorConfig):
        self.sim = sim
        self.config = config
        self._channel = BandwidthChannel(
            sim,
            bytes_per_cycle=config.dram_bytes_per_cycle,
            fixed_latency=config.dram_latency_cycles,
            name="hbm",
        )
        self.bytes_by_kind: dict = {}
        self._fault_injector = None

    def set_fault_injector(self, injector) -> None:
        """Attach a fault injector sampling transient ECC errors."""
        self._fault_injector = injector

    @property
    def queue_depth(self) -> int:
        return self._channel.queue_depth

    @property
    def bytes_transferred(self) -> float:
        return self._channel.bytes_transferred

    def _block_align(self, size_bytes: float) -> float:
        block = self.config.dram.block_bytes
        blocks = max(1, -(-int(size_bytes) // block)) if size_bytes > 0 else 0
        return float(blocks * block)

    def transfer(
        self,
        size_bytes: float,
        kind: str = "train_weights",
        on_done: Optional[Callable[[], None]] = None,
        priority: int = PRIORITY_TRAINING,
    ) -> None:
        """Move ``size_bytes`` (block-aligned) across the channel."""
        aligned = self._block_align(size_bytes)
        self.bytes_by_kind[kind] = self.bytes_by_kind.get(kind, 0.0) + aligned
        if aligned == 0:
            if on_done is not None:
                self.sim.after_call(0.0, on_done)
            return
        injector = self._fault_injector
        if injector is None or not injector.plan.hbm.enabled:
            self._channel.transfer(
                aligned, on_done=on_done, priority=priority, tag=kind
            )
            return

        # Faulty path: each completion may carry a transient ECC error;
        # the stream re-crosses the channel up to the bounded retry
        # budget. Fire-and-forget transfers (write-backs with no
        # on_done) retry too — their bandwidth is just as real.
        attempts = [0]

        def _complete() -> None:
            if injector.hbm_transfer_error():
                if attempts[0] < injector.hbm_max_retries:
                    attempts[0] += 1
                    injector.note_hbm_retry()
                    self.bytes_by_kind[ECC_RETRY_KIND] = (
                        self.bytes_by_kind.get(ECC_RETRY_KIND, 0.0) + aligned
                    )
                    self._channel.transfer(
                        aligned,
                        on_done=_complete,
                        priority=priority,
                        tag=ECC_RETRY_KIND,
                    )
                    return
                injector.note_hbm_retry_exhausted()
            if on_done is not None:
                on_done()

        self._channel.transfer(
            aligned, on_done=_complete, priority=priority, tag=kind
        )

    def utilization(self, window_cycles: Optional[float] = None) -> float:
        """Fraction of peak bandwidth consumed."""
        return self._channel.utilization(window_cycles)

    def achieved_gb_s(self, window_cycles: Optional[float] = None) -> float:
        """Average achieved bandwidth in GB/s over the window."""
        window = self.sim.now if window_cycles is None else window_cycles
        if window <= 0:
            return 0.0
        bytes_per_cycle = self._channel.bytes_transferred / window
        return bytes_per_cycle * self.config.frequency_hz / 1e9

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract): per-kind byte meters
        plus the channel's meters (which refuses while transfers are in
        flight)."""
        return {
            "bytes_by_kind": dict(self.bytes_by_kind),
            "channel": self._channel.to_state(),
        }

    def from_state(self, state: Dict[str, Any]) -> None:
        self.bytes_by_kind = {
            str(kind): float(count)
            for kind, count in state["bytes_by_kind"].items()
        }
        self._channel.from_state(state["channel"])
