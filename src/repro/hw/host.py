"""Host interface and service installation (paper Figure 3, §3.1).

The host interface connects the accelerator to the host and its
network/storage peripherals over a standard I/O fabric (PCIe). Service
installation loads the service's code (instruction image) and model
(weights) into their buffers and launches the accelerator, which then
operates autonomously; afterwards the same link carries client
requests and responses.

This module models the link's bandwidth/latency, the installation
protocol (with capacity validation against the instruction and weight
buffers), and per-request transfer costs — the pieces the evaluation's
steady-state experiments abstract away but a deployment needs.
"""

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.hw.config import AcceleratorConfig
from repro.hw.instructions import InstructionImage
from repro.models.graph import ModelSpec
from repro.sim.engine import Simulator
from repro.sim.resources import BandwidthChannel


@dataclass(frozen=True)
class HostLinkSpec:
    """The I/O fabric: PCIe 4.0 x16 by default."""

    bandwidth_bytes_per_s: float = 32e9
    latency_us: float = 1.0


@dataclass
class InstalledService:
    """Bookkeeping for one installed service."""

    name: str
    model: ModelSpec
    image: InstructionImage
    weight_bytes: float
    install_completed_cycle: Optional[float] = None

    @property
    def is_launched(self) -> bool:
        return self.install_completed_cycle is not None


class ServiceInstallationError(Exception):
    """Raised when a service cannot be installed (capacity, conflicts)."""


class HostInterface:
    """Event-driven model of the host link and installation protocol."""

    def __init__(
        self,
        sim: Simulator,
        config: AcceleratorConfig,
        link: HostLinkSpec = HostLinkSpec(),
    ):
        self.sim = sim
        self.config = config
        self.link = link
        self._channel = BandwidthChannel(
            sim,
            bytes_per_cycle=link.bandwidth_bytes_per_s / config.frequency_hz,
            fixed_latency=link.latency_us * 1e-6 * config.frequency_hz,
            name="host_link",
        )
        self.services: Dict[str, InstalledService] = {}
        self.request_bytes_in = 0.0
        self.response_bytes_out = 0.0

    # ------------------------------------------------------------------
    # Service installation
    # ------------------------------------------------------------------

    def _validate(self, service: InstalledService) -> None:
        images = sum(s.image.bytes for s in self.services.values())
        images += service.image.bytes
        if images > self.config.sram.instruction_bytes:
            raise ServiceInstallationError(
                f"instruction images need {images} B; the buffer holds "
                f"{self.config.sram.instruction_bytes} B"
            )
        if service.name == "inference":
            if service.weight_bytes > self.config.sram.weight_bytes:
                raise ServiceInstallationError(
                    f"{service.model.name}: weights "
                    f"({service.weight_bytes / 2**20:.1f} MiB) exceed the "
                    f"weight buffer "
                    f"({self.config.sram.weight_bytes / 2**20:.1f} MiB)"
                )

    def install(
        self,
        name: str,
        model: ModelSpec,
        image: InstructionImage,
        on_launched: Optional[Callable[[], None]] = None,
    ) -> InstalledService:
        """Install a service: validate, transfer code + model, launch.

        The transfer serializes on the host link; ``on_launched`` fires
        when the accelerator takes over (installation complete).
        """
        if name in self.services:
            raise ServiceInstallationError(f"service {name!r} already installed")
        operand_bytes = self.config.encoding_info.bytes_per_operand
        weight_bytes = model.weight_bytes(operand_bytes)
        service = InstalledService(
            name=name, model=model, image=image, weight_bytes=weight_bytes
        )
        self._validate(service)
        self.services[name] = service

        def _launched() -> None:
            service.install_completed_cycle = self.sim.now
            if on_launched is not None:
                on_launched()

        # Training weights stay DRAM-resident: only the image ships to
        # the instruction buffer; inference also uploads its model.
        payload = service.image.bytes
        if name == "inference":
            payload += weight_bytes
        self._channel.transfer(payload, on_done=_launched, tag=f"install:{name}")
        return service

    def uninstall(self, name: str) -> None:
        self.services.pop(name, None)

    # ------------------------------------------------------------------
    # Request/response traffic
    # ------------------------------------------------------------------

    def request_in(
        self,
        size_bytes: float,
        on_done: Optional[Callable[[], None]] = None,
    ) -> None:
        """A client request body crosses the link into the accelerator."""
        self.request_bytes_in += size_bytes
        self._channel.transfer(size_bytes, on_done=on_done, tag="request")

    def response_out(
        self,
        size_bytes: float,
        on_done: Optional[Callable[[], None]] = None,
    ) -> None:
        """A response crosses the link back to the host."""
        self.response_bytes_out += size_bytes
        self._channel.transfer(size_bytes, on_done=on_done, tag="response")

    def installation_time_s(self, name: str) -> float:
        """Wall-clock time the installation took (after completion)."""
        service = self.services[name]
        if service.install_completed_cycle is None:
            raise ValueError(f"service {name!r} has not launched yet")
        return self.config.cycles_to_seconds(service.install_completed_cycle)

    def utilization(self) -> float:
        return self._channel.utilization()
