"""im2col unit: lowering convolutions to matrix multiplication.

The accelerator's im2col block (paper Figure 3) turns a convolution
into a GEMM whose activation matrix has one row per output spatial
position and one column per (kernel position × input channel). This
module provides both the shape math the compiler needs to tile lowered
convolutions (ResNet50, Table 2) and a functional reference
implementation used by tests and the training substrate.
"""

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class ConvShape:
    """A 2-D convolution layer's geometry."""

    in_channels: int
    out_channels: int
    kernel: int
    stride: int = 1
    padding: int = 0
    in_height: int = 1
    in_width: int = 1

    def __post_init__(self) -> None:
        if min(self.in_channels, self.out_channels, self.kernel, self.stride) < 1:
            raise ValueError(f"invalid conv shape: {self}")
        if self.padding < 0:
            raise ValueError("padding must be non-negative")

    @property
    def out_height(self) -> int:
        return (self.in_height + 2 * self.padding - self.kernel) // self.stride + 1

    @property
    def out_width(self) -> int:
        return (self.in_width + 2 * self.padding - self.kernel) // self.stride + 1

    @property
    def output_positions(self) -> int:
        return self.out_height * self.out_width


def lowered_conv_gemm(shape: ConvShape, batch: int = 1) -> Tuple[int, int, int]:
    """GEMM (M, K, N) of the lowered convolution.

    M = batch × output positions, K = kernel² × input channels,
    N = output channels. These matrices have a large height relative to
    their length, so the MMU processes them in its weight-broadcast mode
    (paper §4) with plenty of activation reuse.
    """
    m = batch * shape.output_positions
    k = shape.kernel * shape.kernel * shape.in_channels
    n = shape.out_channels
    return m, k, n


def im2col(
    images: np.ndarray,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
    backend: "str | None" = None,
) -> np.ndarray:
    """Functional im2col for NCHW input.

    Args:
        images: Input of shape (batch, channels, height, width).
        kernel: Square kernel size.
        stride: Convolution stride.
        padding: Zero padding on each spatial edge.
        backend: Kernel backend override for this call
            (``"reference"`` / ``"fast"``; ``None`` = ambient).

    Returns:
        Matrix of shape (batch × out_h × out_w, kernel² × channels),
        row-major over (batch, out_y, out_x).
    """
    x = np.asarray(images, dtype=np.float32)
    if x.ndim != 4:
        raise ValueError(f"expected NCHW input, got shape {x.shape}")
    _, _, h, w = x.shape
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ValueError("kernel does not fit in the padded input")
    from repro import kernels

    pack = kernels.dispatch("im2col.pack", backend)
    return pack(x, kernel, stride, padding)


class Im2ColUnit:
    """Timing wrapper: lowering happens at buffer-read rate.

    The im2col unit streams patches at the activation-buffer read port
    rate, fully overlapped with MMU issue, so it adds no serialized
    cycles (it only appears in the area/power budget). The method here
    reports the bytes it touches for bandwidth accounting.
    """

    def __init__(self, operand_bytes: float = 1.0):
        self.operand_bytes = operand_bytes

    def lowering_bytes(self, shape: ConvShape, batch: int = 1) -> float:
        m, k, _ = lowered_conv_gemm(shape, batch)
        return float(m) * float(k) * self.operand_bytes
