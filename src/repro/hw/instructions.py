"""Instruction-level view of compiled programs.

The accelerator's ISA (paper §3.1, detailed in the ColTraIn ISA the
paper cites) covers matrix multiplication, vector-vector operations,
activation/normalization, and data movement between DRAM, network
buffers and the datapath. The job-level models simulate timing; this
module materializes the *static* instruction image a service installs —
one instruction per tile position per layer, with a hardware repeat
counter for recurrent steps — so instruction-buffer residency (32 KB,
§5) can be checked and the front-end's decoder modeled.
"""

import math
from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Tuple

from repro.hw.config import AcceleratorConfig
from repro.models.graph import ModelSpec


class Opcode(Enum):
    """Instruction classes of the custom ISA."""

    MATMUL_TILE = "matmul_tile"  # one activation tile × m weight tiles
    ACCUM_TILE = "accum_tile"  # add intermediate output tiles
    VECTOR_OP = "vector_op"  # SIMD: activations, gates, norms
    LOAD_WEIGHTS = "load_weights"  # DRAM/host -> weight buffer
    LOAD_ACTIVATIONS = "load_activations"  # DRAM/host -> activation buffer
    STORE_OUTPUT = "store_output"  # datapath -> DRAM/host
    LOOP = "loop"  # hardware repeat of an instruction block
    BARRIER = "barrier"  # dependency fence between steps


#: Fixed instruction width: opcode + three operand descriptors.
INSTRUCTION_BYTES = 16

#: Control signals the decoder raises per opcode (paper Figure 5: the
#: decoder generates datapath control signals; data movement decodes to
#: DRAM/host interface signals).
DECODE_TABLE: Dict[Opcode, Tuple[str, ...]] = {
    Opcode.MATMUL_TILE: ("mmu_issue", "act_buffer_read", "weight_buffer_read"),
    Opcode.ACCUM_TILE: ("mmu_accum", "act_buffer_write"),
    Opcode.VECTOR_OP: ("simd_issue", "rf_read", "act_buffer_write"),
    Opcode.LOAD_WEIGHTS: ("dram_read", "weight_buffer_write"),
    Opcode.LOAD_ACTIVATIONS: ("dram_read", "act_buffer_write"),
    Opcode.STORE_OUTPUT: ("act_buffer_read", "dram_write"),
    Opcode.LOOP: ("ctrl_loop",),
    Opcode.BARRIER: ("ctrl_fence",),
}


@dataclass(frozen=True)
class Instruction:
    """One static instruction."""

    opcode: Opcode
    operands: Tuple[int, ...] = ()

    def decode(self) -> Tuple[str, ...]:
        """Control signals this instruction raises."""
        return DECODE_TABLE[self.opcode]


@dataclass(frozen=True)
class InstructionImage:
    """The static instruction image of one installed service."""

    service: str
    instructions: List[Instruction]

    @property
    def count(self) -> int:
        return len(self.instructions)

    @property
    def bytes(self) -> int:
        return self.count * INSTRUCTION_BYTES

    def fits(self, config: AcceleratorConfig, share: float = 1.0) -> bool:
        """Whether the image fits in (a share of) the instruction
        buffer. Two installed services space-share the buffer."""
        return self.bytes <= share * config.sram.instruction_bytes

    def histogram(self) -> Dict[Opcode, int]:
        counts: Dict[Opcode, int] = {}
        for instruction in self.instructions:
            counts[instruction.opcode] = counts.get(instruction.opcode, 0) + 1
        return counts


def _gemm_block(
    rows: int, k: int, n_out: int, config: AcceleratorConfig
) -> List[Instruction]:
    """The loop-compressed tile program of one GEMM.

    Hardware repeat counters cover the row-pass and column-group
    dimensions; only the K-tile chain (whose intermediate tiles must
    accumulate in order, Figure 4) is materialized as instructions.
    """
    row_passes = math.ceil(rows / config.n)
    k_tiles = math.ceil(k / config.tile_k)
    col_groups = math.ceil(n_out / config.column_group)
    block: List[Instruction] = []
    if row_passes > 1:
        block.append(Instruction(Opcode.LOOP, (row_passes,)))
    if col_groups > 1:
        block.append(Instruction(Opcode.LOOP, (col_groups,)))
    for kt in range(k_tiles):
        block.append(Instruction(Opcode.MATMUL_TILE, (kt,)))
    if k_tiles > 1:
        block.append(Instruction(Opcode.ACCUM_TILE, ()))
    return block


def assemble_inference(
    model: ModelSpec, config: AcceleratorConfig, batch: int = 0
) -> InstructionImage:
    """Static inference image: per layer, a loop-compressed tile block,
    one VECTOR_OP, and a step BARRIER; recurrent repeats are a hardware
    LOOP around the layer's block."""
    batch = batch or model.inference_batch(config.n)
    instructions: List[Instruction] = []
    for layer in model.layers:
        if layer.repeats > 1:
            instructions.append(Instruction(Opcode.LOOP, (layer.repeats,)))
        instructions.extend(
            _gemm_block(batch * layer.rows_per_sample, layer.k, layer.n_out, config)
        )
        if layer.simd_ops_per_sample > 0:
            instructions.append(Instruction(Opcode.VECTOR_OP, ()))
        instructions.append(Instruction(Opcode.BARRIER, ()))
    return InstructionImage(service="inference", instructions=instructions)


def assemble_training(
    model: ModelSpec, config: AcceleratorConfig, batch: int = 128
) -> InstructionImage:
    """Static training image: the inference skeleton plus weight
    streaming, activation stashes and gradient movement. Training
    contexts bypass batch formation (paper §3.2) but reuse the same
    ISA; the image is what the host installs once per training
    service."""
    instructions: List[Instruction] = []
    for transpose in (False, True):  # forward, then input gradients
        for layer in model.layers:
            rows = batch * layer.rows_per_sample
            k = layer.n_out if transpose else layer.k
            n_out = layer.k if transpose else layer.n_out
            if layer.repeats > 1:
                instructions.append(Instruction(Opcode.LOOP, (layer.repeats,)))
            instructions.append(Instruction(Opcode.LOAD_WEIGHTS, ()))
            instructions.extend(_gemm_block(rows, k, n_out, config))
            instructions.append(Instruction(Opcode.VECTOR_OP, ()))
            instructions.append(Instruction(Opcode.STORE_OUTPUT, ()))
            instructions.append(Instruction(Opcode.BARRIER, ()))
    # Weight-gradient pass (sequence-concatenated K) + parameter-server
    # exchange.
    for layer in reversed(model.layers):
        instructions.append(Instruction(Opcode.LOAD_ACTIVATIONS, ()))
        reduce_dim = batch * layer.rows_per_sample * layer.repeats
        instructions.extend(
            _gemm_block(layer.k, reduce_dim, layer.n_out, config)
        )
        instructions.append(Instruction(Opcode.STORE_OUTPUT, ()))
        instructions.append(Instruction(Opcode.BARRIER, ()))
    instructions.append(Instruction(Opcode.STORE_OUTPUT, ()))  # grads out
    # The parameter-server round trip is a dependency fence: gradients
    # must ship before the refreshed model streams back.
    instructions.append(Instruction(Opcode.BARRIER, ()))
    instructions.append(Instruction(Opcode.LOAD_WEIGHTS, ()))  # fresh model
    return InstructionImage(service="training", instructions=instructions)
