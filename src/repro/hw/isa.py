"""Instruction-stream representation consumed by the dispatchers.

The accelerator's real ISA (matrix-vector multiply, vector ops, data
movement — paper §3.1) issues one instruction per activation tile. A
cycle-accurate event per instruction is intractable in Python for
millisecond-scale simulations, so the compiler (:mod:`repro.models
.compiler`) groups consecutive same-step instructions into *jobs* whose
occupancy, op counts and utilization splits are exact aggregates of the
underlying instructions. Contention and scheduling behave identically
because instructions within one step of one batch are issued
back-to-back in order anyway; scheduling decisions happen at job
boundaries, which is also the granularity Equinox's hardware scheduler
uses (it never preempts a tile mid-stream).
"""

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class MMUJob:
    """A group of consecutive MMU instructions from one step.

    Attributes:
        cycles: MMU occupancy (issue) cycles.
        rows: Activation rows streamed per pass (the batch target; real
            requests plus padding dummies at runtime).
        macs: MAC capacity consumed, i.e. ``cycles × m·n²·w``.
        utilization: Fraction of ``macs`` that lands on real matrix
            elements (< 1 when K or N pad up to tile boundaries); the
            complement is Figure 8's "other" (dimension-mismatch stalls).
        weight_bytes: Weight traffic this job needs staged from DRAM
            before it may issue (0 for inference: weights are resident).
        instruction_count: Number of ISA instructions aggregated.
    """

    cycles: float
    rows: int
    macs: float
    utilization: float
    weight_bytes: float = 0.0
    instruction_count: int = 1

    def __post_init__(self) -> None:
        if self.cycles < 0 or self.macs < 0 or self.weight_bytes < 0:
            raise ValueError(f"negative job field: {self}")
        if not 0.0 <= self.utilization <= 1.0:
            raise ValueError(f"utilization out of range: {self.utilization}")


@dataclass(frozen=True)
class SIMDJob:
    """Vector-unit work for one step (activations, gates, residuals).

    The SIMD unit consumes MMU output column-group by column-group, so
    most of its work overlaps the GEMM that produces its operands; only
    the tail — the last output chunk's worth — sits on the step's
    dependency chain.

    Attributes:
        cycles: Serialized (dependency-chain) SIMD cycles — the tail.
        overlap_cycles: Cycles overlapped with the producing GEMM
            (accounted for utilization, not for latency).
        ops: Scalar operations performed (not counted toward MMU
            throughput — the paper reports GEMM throughput).
    """

    cycles: float
    overlap_cycles: float = 0.0
    ops: float = 0.0


@dataclass(frozen=True)
class DRAMRequest:
    """Off-chip traffic attributable to one step.

    Attributes:
        bytes: Transfer size.
        kind: Traffic class — ``train_weights`` (streamed operands),
            ``grad_accum`` (dW read-modify-write), ``stash``
            (activation stash store/reload), ``param_sync`` (parameter-
            server exchange, amortized per step).
    """

    bytes: float
    kind: str = "train_weights"


@dataclass(frozen=True)
class StepProgram:
    """One dependency level: all jobs here may overlap with each other,
    but the next step starts only when this one fully completes (the
    recurrent chain of an LSTM/GRU, or a layer of a CNN/MLP)."""

    mmu_jobs: List[MMUJob] = field(default_factory=list)
    simd: SIMDJob = field(default_factory=lambda: SIMDJob(cycles=0.0))
    dram: List[DRAMRequest] = field(default_factory=list)
    label: str = "step"

    @property
    def mmu_cycles(self) -> float:
        return sum(job.cycles for job in self.mmu_jobs)

    @property
    def macs(self) -> float:
        return sum(job.macs for job in self.mmu_jobs)

    @property
    def useful_macs(self) -> float:
        return sum(job.macs * job.utilization for job in self.mmu_jobs)

    @property
    def weight_bytes(self) -> float:
        return sum(job.weight_bytes for job in self.mmu_jobs)

    @property
    def dram_bytes(self) -> float:
        return sum(req.bytes for req in self.dram)


@dataclass(frozen=True)
class Program:
    """A compiled model execution: an ordered chain of steps.

    Attributes:
        name: Model identifier (``lstm``, ``gru``, ``resnet50``, ...).
        steps: Dependency-ordered step programs.
        rows: Batch rows the program was compiled for.
        useful_ops_per_row: GEMM ops (2 × MACs on real matrix elements)
            one real request contributes — the unit of Figure 7/9
            throughput accounting.
    """

    name: str
    steps: List[StepProgram]
    rows: int
    useful_ops_per_row: float

    @property
    def total_mmu_cycles(self) -> float:
        return sum(step.mmu_cycles for step in self.steps)

    @property
    def total_simd_cycles(self) -> float:
        return sum(step.simd.cycles for step in self.steps)

    @property
    def total_weight_bytes(self) -> float:
        return sum(step.weight_bytes for step in self.steps)

    @property
    def total_dram_bytes(self) -> float:
        return sum(step.dram_bytes + step.weight_bytes for step in self.steps)

    @property
    def total_useful_ops(self) -> float:
        return 2.0 * sum(step.useful_macs for step in self.steps)

    @property
    def step_count(self) -> int:
        return len(self.steps)
