"""Matrix multiply unit timing model with the hardware job arbiter.

The MMU is a row of ``m`` weight-stationary systolic arrays, each n×n
PEs of width ``w`` (paper Figure 3). One array pass streams up to ``n``
activation rows against an (n·w × n) weight tile per array; issue
occupies the unit for the streamed rows' cycles, and results emerge a
pipeline-drain later (fill of the n·w-deep reduction plus the 2n skew).
The unit is pipelined: a new job may start issuing while the previous
one drains — matching the functional model in :mod:`repro.hw.systolic`.

Equinox's instruction controller keeps one job queue per service
context and arbitrates *at instruction granularity*: under the hardware
priority policy it round-robins inference and training jobs while the
inference queue is shallow, and dedicates every issue slot to inference
during load spikes (paper §3.2). That fine interleaving is what lets
training stream from DRAM continuously through the tiny staging slice
even while an inference batch is executing.

Every busy cycle is attributed to Figure 8's categories: *working*
(real rows on real matrix elements), *dummy* (padding rows added by
batch formation), *other* (array/matrix dimension mismatch); idle is
derived from the accounting window.
"""

from collections import deque
from typing import Any, Callable, Deque, Dict, Optional

from repro.hw.config import AcceleratorConfig
from repro.hw.isa import MMUJob
from repro.sim.engine import Simulator, SnapshotError
from repro.sim.stats import CycleAccounting, ThroughputMeter

#: Context/queue names the arbiter knows about.
INFERENCE = "inference"
TRAINING = "training"


class _QueuedJob:
    __slots__ = ("job", "real_rows", "context", "on_done", "on_issue")

    def __init__(self, job, real_rows, context, on_done, on_issue):
        self.job = job
        self.real_rows = real_rows
        self.context = context
        self.on_done = on_done
        self.on_issue = on_issue


class MatrixMultiplyUnit:
    """Event-driven model of the MMU with per-context job queues.

    The scheduling policy (see :mod:`repro.core.scheduler`) is consulted
    at every grant; ``pressure_fn`` supplies the inference queue-size
    signal the spike guard monitors (Figure 5's "Inference Queue Size"
    wire).
    """

    def __init__(self, sim: Simulator, config: AcceleratorConfig):
        self.sim = sim
        self.config = config
        self._queues: Dict[str, Deque[_QueuedJob]] = {
            INFERENCE: deque(),
            TRAINING: deque(),
        }
        self._policy = None  # set via set_policy; None = FIFO inference first
        self._pressure_fn: Callable[[], int] = lambda: 0
        self._fault_injector = None
        self._busy = False
        self._last_granted = TRAINING  # so the first round-robin pick is inference
        self.accounting = CycleAccounting()
        self.throughput = ThroughputMeter()
        #: Throughput attributed per context (Figure 9's split).
        self.throughput_by_context: Dict[str, ThroughputMeter] = {}
        self.busy_by_context: Dict[str, float] = {}
        self.jobs_issued = 0
        self.busy_cycles = 0.0

    def set_policy(
        self, policy, pressure_fn: Optional[Callable[[], int]] = None
    ) -> None:
        """Attach the instruction-controller scheduling policy and the
        inference-pressure signal."""
        self._policy = policy
        if pressure_fn is not None:
            self._pressure_fn = pressure_fn

    def set_fault_injector(self, injector) -> None:
        """Attach a fault injector sampling tile/PE stalls per job."""
        self._fault_injector = injector

    # ------------------------------------------------------------------
    # Queue state
    # ------------------------------------------------------------------

    def queue_depth_of(self, context: str) -> int:
        return len(self._queues[context])

    @property
    def queue_depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    # ------------------------------------------------------------------
    # Issue path
    # ------------------------------------------------------------------

    def issue(
        self,
        job: MMUJob,
        real_rows: int,
        context: str,
        on_done: Optional[Callable[[], None]] = None,
        on_issue: Optional[Callable[[], None]] = None,
        queue: Optional[str] = None,
    ) -> None:
        """Enqueue a job on behalf of ``context``.

        Args:
            job: The compiled MMU job.
            real_rows: How many of ``job.rows`` carry real requests; the
                rest are batch-padding dummies (their cycles are burned
                identically but attributed to the *dummy* category).
            context: Accounting tag (``"inference"`` / ``"training"``).
            on_done: Fires when results have fully drained.
            on_issue: Fires when the job starts streaming.
            queue: Arbiter queue; defaults to ``context``. A software
                scheduler places committed training blocks in the
                inference queue because it cannot revoke them.
        """
        if not 0 <= real_rows <= job.rows:
            raise ValueError(f"real_rows {real_rows} outside 0..{job.rows}")
        target = queue or context
        if target not in self._queues:
            raise KeyError(f"unknown MMU queue {target!r}")
        self._queues[target].append(
            _QueuedJob(job, real_rows, context, on_done, on_issue)
        )
        self.pump()

    def issue_batch(
        self,
        jobs,
        real_rows_fn: Callable[[MMUJob], int],
        context: str,
        on_done: Optional[Callable[[], None]] = None,
        on_issue: Optional[Callable[[], None]] = None,
        queue: Optional[str] = None,
    ) -> int:
        """Enqueue a tile's whole instruction stream with one pump.

        Timing-identical to issuing each job via :meth:`issue`: while
        the unit is busy (which it is from the first grant on),
        ``pump()`` is a no-op, so the per-job pumps of the scalar path
        do nothing but burn cycles. Arbitration still happens *per
        instruction* at every completion — the paper's §3.2 contract —
        only the redundant wake-ups are elided. Returns the number of
        jobs enqueued.
        """
        target = queue or context
        if target not in self._queues:
            raise KeyError(f"unknown MMU queue {target!r}")
        q = self._queues[target]
        count = 0
        for job in jobs:
            real_rows = real_rows_fn(job)
            if not 0 <= real_rows <= job.rows:
                raise ValueError(
                    f"real_rows {real_rows} outside 0..{job.rows}"
                )
            q.append(_QueuedJob(job, real_rows, context, on_done, on_issue))
            count += 1
        if count:
            self.pump()
        return count

    def pump(self) -> None:
        """Grant the next job if the unit is free and the policy allows.

        Called on job arrival, on completion, and by the front-end when
        the inference queue-size signal drops (a spike subsiding can
        unblock training grants).
        """
        if self._busy:
            return
        inf_ready = bool(self._queues[INFERENCE])
        train_ready = bool(self._queues[TRAINING])
        if not inf_ready and not train_ready:
            return
        if self._policy is None:
            choice = INFERENCE if inf_ready else TRAINING
        else:
            choice = self._policy.select_queue(
                inf_ready, train_ready, self._pressure_fn(), self._last_granted
            )
            self._policy.record_decision(choice)
        if choice is None:
            return
        self._grant(self._queues[choice].popleft())
        self._last_granted = choice

    def _grant(self, entry: _QueuedJob) -> None:
        job = entry.job
        real_frac = entry.real_rows / job.rows if job.rows else 0.0
        working = job.cycles * job.utilization * real_frac
        dummy = job.cycles * job.utilization * (1.0 - real_frac)
        other = job.cycles * (1.0 - job.utilization)
        useful_ops = 2.0 * job.macs * job.utilization * real_frac
        # Injected tile/PE stall: the job holds the unit for extra
        # cycles doing no useful work — Figure 8's "other" category.
        stall = (
            self._fault_injector.mmu_stall_cycles()
            if self._fault_injector is not None else 0.0
        )
        occupancy = job.cycles + stall
        other += stall

        self._busy = True
        self.jobs_issued += 1
        if entry.on_issue is not None:
            entry.on_issue()

        def _issue_complete() -> None:
            self._busy = False
            # Accounting accrues at completion so a measurement window
            # never contains cycles that have not elapsed yet.
            self.busy_cycles += occupancy
            self.busy_by_context[entry.context] = (
                self.busy_by_context.get(entry.context, 0.0) + occupancy
            )
            self.accounting.add("working", working)
            self.accounting.add("dummy", dummy)
            self.accounting.add("other", other)
            self.throughput.record(useful_ops, self.sim.now)
            meter = self.throughput_by_context.setdefault(
                entry.context, ThroughputMeter()
            )
            meter.record(useful_ops, self.sim.now)
            if entry.on_done is not None:
                # Results drain through the array after the last row
                # enters; the unit itself is free for the next job.
                self.sim.after_call(
                    self.config.pipeline_drain_cycles, entry.on_done
                )
            self.pump()

        # A granted job is never revoked (the arbiter commits at grant),
        # so both completion hops ride the anonymous fire-and-forget
        # lane — these are the two densest event classes in the whole
        # simulation.
        self.sim.after_call(occupancy, _issue_complete)

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------

    def breakdown(self, window_cycles: Optional[float] = None) -> dict:
        """Figure 8 cycle breakdown over the window (default: now)."""
        window = self.sim.now if window_cycles is None else window_cycles
        return self.accounting.breakdown(window)

    def measured_top_s(self, window_cycles: Optional[float] = None) -> float:
        """Sustained useful throughput in TOp/s."""
        window = self.sim.now if window_cycles is None else window_cycles
        return self.throughput.top_s(window, self.config.frequency_hz)

    def context_top_s(
        self, context: str, window_cycles: Optional[float] = None
    ) -> float:
        """Sustained throughput attributed to one context, in TOp/s."""
        meter = self.throughput_by_context.get(context)
        if meter is None:
            return 0.0
        window = self.sim.now if window_cycles is None else window_cycles
        return meter.top_s(window, self.config.frequency_hz)

    def busy_fraction(
        self, context: str, window_cycles: Optional[float] = None
    ) -> float:
        window = self.sim.now if window_cycles is None else window_cycles
        if window <= 0:
            return 0.0
        return self.busy_by_context.get(context, 0.0) / window

    # ------------------------------------------------------------------
    # Snapshot (``repro.state`` contract)
    # ------------------------------------------------------------------

    def to_state(self) -> Dict[str, Any]:
        """Accrued meters plus the arbiter's round-robin cursor.

        A granted or queued job carries completion closures that cannot
        be serialized, so a non-quiescent unit refuses; the accelerator
        facade snapshots between runs / at iteration boundaries where
        the datapath has drained.
        """
        queued = {name: len(q) for name, q in self._queues.items() if q}
        if self._busy or queued:
            raise SnapshotError(
                f"MMU has in-flight work (busy={self._busy}, "
                f"queued={queued}); snapshot at a quiescence point"
            )
        return {
            "last_granted": self._last_granted,
            "jobs_issued": self.jobs_issued,
            "busy_cycles": self.busy_cycles,
            "busy_by_context": dict(self.busy_by_context),
            "accounting": self.accounting.to_state(),
            "throughput": self.throughput.to_state(),
            "throughput_by_context": {
                name: meter.to_state()
                for name, meter in sorted(self.throughput_by_context.items())
            },
        }

    def from_state(self, state: Dict[str, Any]) -> None:
        self._last_granted = str(state["last_granted"])
        self.jobs_issued = int(state["jobs_issued"])
        self.busy_cycles = float(state["busy_cycles"])
        self.busy_by_context = {
            str(name): float(cycles)
            for name, cycles in state["busy_by_context"].items()
        }
        self.accounting = CycleAccounting.from_state(state["accounting"])
        self.throughput = ThroughputMeter.from_state(state["throughput"])
        self.throughput_by_context = {
            str(name): ThroughputMeter.from_state(entry)
            for name, entry in state["throughput_by_context"].items()
        }
