"""SIMD (vector) unit timing model.

The SIMD unit performs the vector-vector work between GEMMs —
activations, gate nonlinearities, batch norm, pooling, residual adds —
and, in Equinox, the derivative and loss calculations training needs
(paper §3.2). It runs in bfloat16 regardless of the MMU encoding.

In the recurrent models the SIMD work of step *k* sits on the dependency
chain between the GEMM of step *k* and the GEMM of step *k+1*; when only
one batch is in flight those cycles surface as MMU dependence stalls
(part of Figure 8's "other"/idle), and under load they overlap with
other batches' GEMMs.
"""

from typing import Any, Callable, Dict, Optional

from repro.hw.config import AcceleratorConfig
from repro.hw.isa import SIMDJob
from repro.sim.engine import Simulator
from repro.sim.resources import SerialResource


class SIMDUnit:
    """Event-driven model of the SIMD unit."""

    def __init__(self, sim: Simulator, config: AcceleratorConfig):
        self.sim = sim
        self.config = config
        self._unit = SerialResource(sim, "simd")
        self.ops_retired = 0.0

    @property
    def queue_depth(self) -> int:
        return self._unit.queue_depth

    @property
    def busy_cycles(self) -> float:
        return self._unit.busy_cycles

    def issue(
        self,
        job: SIMDJob,
        context: str = "inference",
        on_done: Optional[Callable[[], None]] = None,
        priority: int = 0,
    ) -> None:
        """Run a vector job; ``on_done`` fires at completion."""
        if job.cycles <= 0:
            # Steps with no vector work complete immediately.
            if on_done is not None:
                self.sim.after_call(0.0, on_done)
            return

        def _done() -> None:
            self.ops_retired += job.ops
            if on_done is not None:
                on_done()

        self._unit.request(
            duration=job.cycles, on_done=_done, priority=priority, tag=context
        )

    def utilization(self, window_cycles: Optional[float] = None) -> float:
        window = self.sim.now if window_cycles is None else window_cycles
        return self._unit.utilization(window)

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract): the ops meter plus the
        serial unit's meters (which refuses while jobs are in flight)."""
        return {"ops_retired": self.ops_retired, "unit": self._unit.to_state()}

    def from_state(self, state: Dict[str, Any]) -> None:
        self.ops_retired = float(state["ops_retired"])
        self._unit.from_state(state["unit"])
