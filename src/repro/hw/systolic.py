"""Functional per-cycle systolic array model.

The paper validates its event-driven simulator against RTL traces. This
module plays the RTL role for the reproduction: a register-level,
cycle-by-cycle weight-stationary systolic array whose numeric results
and per-output completion cycles pin down the timing formulas used by
the event model (:class:`repro.hw.mmu.MatrixMultiplyUnit` and
:attr:`repro.hw.config.AcceleratorConfig.pipeline_drain_cycles`).

Microarchitecture (one of Equinox's ``m`` arrays):

* n×n grid of PEs, each holding ``w`` stationary weights per output
  column: PE row *i* of column *j* holds ``W[i·w:(i+1)·w, j]``.
* One activation row (n·w values) enters per cycle; it reaches column
  *j* after a *j*-cycle horizontal skew.
* Partial sums trickle down the n PE rows, one stage per cycle.
* Completed dot products pass through an (n·w)-deep output FIFO — the
  block-floating-point exponent-synchronization FIFO of paper §3.2 —
  before write-back.

Total latency for R rows: the last output leaves on cycle
``R + (n - 1) + n + n·w``, i.e. an occupancy of R cycles plus a drain of
``n·w + 2n - 1``, which the event model rounds up to ``n·w + 2n``.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np


def systolic_latency_cycles(rows: int, n: int, w: int) -> int:
    """Exact cycle on which the last output leaves the array.

    Horizontal skew to the last column (n-1), vertical reduction (n),
    exponent-sync FIFO (n·w), on top of R cycles of row streaming.
    """
    if rows < 1:
        raise ValueError("need at least one activation row")
    return rows + (n - 1) + n + n * w


@dataclass
class _PartialSum:
    """A value in flight down one column's reduction pipeline."""

    row: int
    value: float


class SystolicArray:
    """A weight-stationary n×n array of w-wide PEs, simulated per cycle."""

    def __init__(self, n: int, w: int, weights: np.ndarray):
        # Exact-accumulation reference model: quantization happens in
        # repro.arith before operands reach the array.
        weights = np.asarray(weights, dtype=np.float64)  # eqx: ignore[EQX301]
        if n < 1 or w < 1:
            raise ValueError("array dimensions must be positive")
        if weights.shape != (n * w, n):
            raise ValueError(
                f"weights must be ({n * w}, {n}) for n={n}, w={w}; "
                f"got {weights.shape}"
            )
        self.n = n
        self.w = w
        self.weights = weights

    def run(self, activations: np.ndarray) -> Tuple[np.ndarray, int, np.ndarray]:
        """Stream ``activations`` (R × n·w) through the array.

        Returns:
            outputs: The (R × n) product, numerically equal to
                ``activations @ weights`` up to float64 associativity.
            last_cycle: Cycle on which the final output left the FIFO.
            completion: (R × n) array of per-output completion cycles.
        """
        x = np.asarray(activations, dtype=np.float64)  # eqx: ignore[EQX301]
        if x.ndim != 2 or x.shape[0] < 1 or x.shape[1] != self.n * self.w:
            raise ValueError(
                f"activations must be (R>=1, {self.n * self.w}); got {x.shape}"
            )
        rows = x.shape[0]
        n, w = self.n, self.w
        outputs = np.zeros((rows, n))
        completion = np.full((rows, n), -1, dtype=np.int64)

        # Per-column state: a one-cycle horizontal handoff register, the
        # n-stage vertical reduction pipeline, and the output FIFO.
        handoff: List[Optional[int]] = [None] * n  # row id moving j -> j+1
        reduce_pipe: List[List[Optional[_PartialSum]]] = [
            [None] * n for _ in range(n)
        ]
        out_fifo: List[List[Optional[_PartialSum]]] = [
            [None] * (n * w) for _ in range(n)
        ]

        cycle = 0
        done = 0
        total = rows * n
        budget = systolic_latency_cycles(rows, n, w) + 4
        while done < total:
            cycle += 1
            if cycle > budget:
                raise RuntimeError(
                    "systolic model failed to drain within its latency bound"
                )
            entering = cycle - 1 if cycle - 1 < rows else None

            # Descending column order: column j reads the handoff its
            # left neighbour wrote on the *previous* cycle.
            new_handoff: List[Optional[int]] = [None] * n
            for j in range(n - 1, -1, -1):
                # 1. Output FIFO shifts one slot; the oldest pops out.
                popped = out_fifo[j].pop()
                if popped is not None:
                    outputs[popped.row, j] = popped.value
                    completion[popped.row, j] = cycle
                    done += 1

                # 2. The reduction pipe's bottom value enters the FIFO.
                out_fifo[j].insert(0, reduce_pipe[j][-1])

                # 3. Reduction stages shift down, each adding its MACs.
                for stage in range(n - 1, 0, -1):
                    prev = reduce_pipe[j][stage - 1]
                    if prev is not None:
                        chunk = x[prev.row, stage * w : (stage + 1) * w]
                        wslice = self.weights[stage * w : (stage + 1) * w, j]
                        prev = _PartialSum(prev.row, prev.value + float(chunk @ wslice))
                    reduce_pipe[j][stage] = prev

                # 4. A row arriving at this column enters stage 0 and is
                #    handed to the right neighbour for the next cycle.
                arriving = entering if j == 0 else handoff[j - 1]
                if arriving is not None:
                    chunk = x[arriving, 0:w]
                    reduce_pipe[j][0] = _PartialSum(
                        arriving, float(chunk @ self.weights[0:w, j])
                    )
                    if j < n - 1:
                        new_handoff[j] = arriving
                else:
                    reduce_pipe[j][0] = None
            handoff = new_handoff

        return outputs, cycle, completion
