"""Functional per-cycle systolic array model.

The paper validates its event-driven simulator against RTL traces. This
module plays the RTL role for the reproduction: a register-level,
cycle-by-cycle weight-stationary systolic array whose numeric results
and per-output completion cycles pin down the timing formulas used by
the event model (:class:`repro.hw.mmu.MatrixMultiplyUnit` and
:attr:`repro.hw.config.AcceleratorConfig.pipeline_drain_cycles`).

Microarchitecture (one of Equinox's ``m`` arrays):

* n×n grid of PEs, each holding ``w`` stationary weights per output
  column: PE row *i* of column *j* holds ``W[i·w:(i+1)·w, j]``.
* One activation row (n·w values) enters per cycle; it reaches column
  *j* after a *j*-cycle horizontal skew.
* Partial sums trickle down the n PE rows, one stage per cycle.
* Completed dot products pass through an (n·w)-deep output FIFO — the
  block-floating-point exponent-synchronization FIFO of paper §3.2 —
  before write-back.

Total latency for R rows: the last output leaves on cycle
``R + (n - 1) + n + n·w``, i.e. an occupancy of R cycles plus a drain of
``n·w + 2n - 1``, which the event model rounds up to ``n·w + 2n``.

Two implementations live in :mod:`repro.kernels`: the per-cycle
register loop (``reference``, the oracle) and a wavefront-vectorized
model (``fast``) that is bit-identical in both numeric outputs and
cycle counts. :meth:`SystolicArray.run` dispatches between them.
"""

import numpy as np


def systolic_latency_cycles(rows: int, n: int, w: int) -> int:
    """Exact cycle on which the last output leaves the array.

    Horizontal skew to the last column (n-1), vertical reduction (n),
    exponent-sync FIFO (n·w), on top of R cycles of row streaming.
    """
    if rows < 1:
        raise ValueError("need at least one activation row")
    return rows + (n - 1) + n + n * w


class SystolicArray:
    """A weight-stationary n×n array of w-wide PEs, simulated per cycle."""

    def __init__(self, n: int, w: int, weights: np.ndarray):
        # Exact-accumulation reference model: quantization happens in
        # repro.arith before operands reach the array.
        weights = np.asarray(weights, dtype=np.float64)  # eqx: ignore[EQX301]
        if n < 1 or w < 1:
            raise ValueError("array dimensions must be positive")
        if weights.shape != (n * w, n):
            raise ValueError(
                f"weights must be ({n * w}, {n}) for n={n}, w={w}; "
                f"got {weights.shape}"
            )
        self.n = n
        self.w = w
        self.weights = weights

    def run(
        self, activations: np.ndarray, backend: "str | None" = None
    ) -> "tuple[np.ndarray, int, np.ndarray]":
        """Stream ``activations`` (R × n·w) through the array.

        Args:
            activations: Activation rows, shape (R, n·w).
            backend: Kernel backend override for this call
                (``"reference"`` / ``"fast"``; ``None`` = ambient).

        Returns:
            outputs: The (R × n) product, numerically equal to
                ``activations @ weights`` up to float64 associativity
                (the PEs accumulate in lane/stage order).
            last_cycle: Cycle on which the final output left the FIFO.
            completion: (R × n) array of per-output completion cycles.
        """
        x = np.asarray(activations, dtype=np.float64)  # eqx: ignore[EQX301]
        if x.ndim != 2 or x.shape[0] < 1 or x.shape[1] != self.n * self.w:
            raise ValueError(
                f"activations must be (R>=1, {self.n * self.w}); got {x.shape}"
            )
        from repro import kernels

        run = kernels.dispatch("systolic.run", backend)
        return run(x, self.weights, self.n, self.w)

    def run_stream(
        self, tile_stream, backend: "str | None" = None
    ) -> "tuple[list, int, list]":
        """Stream a sequence of activation tiles back-to-back.

        Weight-stationary arrays accept one row per cycle with no
        bubble between jobs, so a whole tile stream is one timeline:
        tile ``k``'s cycle counts are tile-local counts shifted by the
        rows already streamed. The fast backend exploits exactly that
        (one stacked vectorized pass); the reference backend runs the
        per-tile loop. Both are bit-identical per the parity contract.

        Args:
            tile_stream: Sequence of activation arrays, each
                (R_k >= 1, n·w).
            backend: Kernel backend override for this call.

        Returns:
            outputs: List of (R_k × n) products, one per tile.
            last_cycle: Cycle the final tile's last output left the
                FIFO (0 for an empty stream).
            completions: List of (R_k × n) per-output completion
                cycles, on the shared stream timeline.
        """
        tiles = []
        for k, activations in enumerate(tile_stream):
            x = np.asarray(activations, dtype=np.float64)  # eqx: ignore[EQX301]
            if x.ndim != 2 or x.shape[0] < 1 or x.shape[1] != self.n * self.w:
                raise ValueError(
                    f"stream tile {k} must be (R>=1, {self.n * self.w}); "
                    f"got {x.shape}"
                )
            tiles.append(x)
        from repro import kernels

        run_stream = kernels.dispatch("systolic.stream", backend)
        return run_stream(tiles, self.weights, self.n, self.w)
