"""repro.kernels: dual-backend numerical kernels with bit-exact parity.

Every hot primitive in the reproduction exists twice:

* ``reference`` — the readable tile-loop / per-cycle code that defines
  the semantics (the former inline implementations, kept verbatim as
  the oracle);
* ``fast`` — a vectorized rewrite that must match the reference **bit
  for bit**: values, shared exponents, RNG stream position, and
  systolic cycle counts (:mod:`repro.kernels.parity` is the executable
  contract).

Call sites never import implementations directly (lint rule EQX308);
they resolve through :func:`dispatch`, so the backend can be switched
globally (:func:`set_backend`, ``REPRO_KERNEL_BACKEND``), per scope
(:func:`use_backend`), or per call (the ``backend=`` argument threaded
through ``BlockFloatTensor.from_float``, ``bfp_matmul``,
``SystolicArray.run``, ``im2col``). The default is ``fast``.

A third backend, ``compiled``, exists for the hottest pairs when numba
is importable (:mod:`repro.kernels.compiled`): jitted mirrors of the
reference loops, same parity contract. Pairs without a compiled mirror
fall back to ``fast`` under that backend.

Registered pairs:

========================  ============================================
``bfp.quantize``          ``BlockFloatTensor.from_float`` body (compiled*)
``bfp.dequantize``        ``BlockFloatTensor.to_float`` body
``bfp.matmul``            ``bfp_matmul`` tile-lattice GEMM (compiled*)
``systolic.run``          ``SystolicArray.run`` register model (compiled*)
``systolic.stream``       ``SystolicArray.run_stream`` tile stream
``im2col.pack``           ``im2col`` convolution lowering (compiled*)
========================  ============================================
"""

from repro.kernels import (
    compiled,
    fast_bfp,
    fast_im2col,
    fast_systolic,
    ref_bfp,
    ref_im2col,
    ref_systolic,
)
from repro.kernels.registry import (
    BACKENDS,
    KernelPair,
    compiled_available,
    dispatch,
    dispatch_counts,
    get_backend,
    get_kernel,
    kernel_names,
    register_kernel,
    reset_dispatch_counts,
    set_backend,
    use_backend,
)

__all__ = [
    "BACKENDS",
    "KernelPair",
    "compiled_available",
    "dispatch",
    "dispatch_counts",
    "get_backend",
    "get_kernel",
    "kernel_names",
    "register_kernel",
    "reset_dispatch_counts",
    "set_backend",
    "use_backend",
]

register_kernel(
    "bfp.quantize",
    ref_bfp.quantize,
    fast_bfp.quantize,
    compiled=compiled.implementation("bfp.quantize"),
    doc="Block-floating-point encode (per-tile exponent + mantissas).",
)
register_kernel(
    "bfp.dequantize",
    ref_bfp.dequantize,
    fast_bfp.dequantize,
    doc="Block-floating-point decode back to float32.",
)
register_kernel(
    "bfp.matmul",
    ref_bfp.matmul,
    fast_bfp.matmul,
    compiled=compiled.implementation("bfp.matmul"),
    doc="Tile-lattice integer GEMM with saturating accumulators.",
)
register_kernel(
    "systolic.run",
    ref_systolic.run,
    fast_systolic.run,
    compiled=compiled.implementation("systolic.run"),
    doc="Weight-stationary systolic array (values + cycle counts).",
)
register_kernel(
    "systolic.stream",
    ref_systolic.run_stream,
    fast_systolic.run_stream,
    doc="A tile stream through one array: back-to-back, no reload.",
)
register_kernel(
    "im2col.pack",
    ref_im2col.pack,
    fast_im2col.pack,
    compiled=compiled.implementation("im2col.pack"),
    doc="Convolution lowering to a GEMM activation matrix.",
)
