"""Optional numba-compiled kernel tier (the third backend).

The two hottest kernels by bench time — ``systolic.run`` and
``bfp.matmul`` — get JIT-compiled mirrors of their *reference* loops:
explicit scalar loops in the oracle's exact accumulation order, handed
to numba instead of being vectorized. Where the ``fast`` backend wins
by reshaping the computation into ufunc sweeps, the compiled tier wins
by running the naive loops at native speed — same bit-exactness
contract, checked by the same parity corpus when numba is present.

numba is deliberately NOT a dependency: the import is guarded and the
whole tier is absent when it fails. :func:`available` is the single
truth source — ``set_backend("compiled")`` raises without it, the
``REPRO_KERNEL_BACKEND=compiled`` environment path falls back to
``fast`` (a worker fleet with heterogeneous images must not crash on
the machines lacking numba), and the parity/CI jobs skip.

The simulator drain loop itself is *not* compiled: its hot path is
dominated by calling back into arbitrary Python event callbacks, which
a JIT boundary cannot cross without paying more in transitions than
the loop costs (measured; see DESIGN's event-loop chapter).

Do not import this module outside ``repro.kernels`` and tests — call
sites go through :func:`repro.kernels.dispatch` (lint rule EQX308).
"""

from typing import Callable, Optional, Tuple

import numpy as np

__all__ = [
    "available",
    "bfp_matmul",
    "bfp_quantize",
    "im2col_pack",
    "systolic_run",
]

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    _AVAILABLE = True
except Exception:  # pragma: no cover - the common case in CI images
    _njit = None
    _AVAILABLE = False


def available() -> bool:
    """Whether the compiled tier can actually run on this machine."""
    return _AVAILABLE


_systolic_values = None
_bfp_accumulate = None
_quantize_tiles = None
_im2col_gather = None


def _build() -> None:
    """Compile the jitted bodies on first use (lazy: importing the
    package must never trigger numba compilation)."""
    global _systolic_values, _bfp_accumulate, _quantize_tiles, _im2col_gather
    if _systolic_values is not None:
        return

    @_njit(cache=True)
    def systolic_values(x, weights, n, w, out):  # pragma: no cover
        rows = x.shape[0]
        for r in range(rows):
            for j in range(n):
                # Stage 0's w-lane MAC seeds the chain; stages 1..n-1
                # fold in ascending order — the oracle's adder chain.
                total = 0.0
                for t in range(w):
                    total += x[r, t] * weights[t, j]
                for s in range(1, n):
                    m = 0.0
                    for t in range(w):
                        m += x[r, s * w + t] * weights[s * w + t, j]
                    total += m
                out[r, j] = total

    @_njit(cache=True)
    def bfp_accumulate(  # pragma: no cover
        a_m, a_exp, b_m, b_exp, br_a, k_blk, bc_b, frac, sat_hi, sat_lo, out
    ):
        grid_m, grid_k = a_exp.shape
        grid_n = b_exp.shape[1]
        for km in range(grid_k):  # ascending-K: the contract order
            for im in range(grid_m):
                for jn in range(grid_n):
                    exp = int(a_exp[im, km]) + int(b_exp[km, jn])
                    scale = 2.0 ** (exp - frac)
                    for i in range(br_a):
                        for j in range(bc_b):
                            acc = np.int64(0)
                            for k in range(k_blk):
                                acc += (
                                    a_m[im * br_a + i, km * k_blk + k]
                                    * b_m[km * k_blk + k, jn * bc_b + j]
                                )
                            if acc > sat_hi:
                                acc = sat_hi
                            elif acc < sat_lo:
                                acc = sat_lo
                            out[im * br_a + i, jn * bc_b + j] += acc * scale

    @_njit(cache=True)
    def quantize_tiles(  # pragma: no cover
        padded, safe_scale, rnd, stochastic, br, bc, m_min, m_max, out
    ):
        pad_rows, pad_cols = padded.shape
        for i in range(pad_rows):
            ti = i // br
            for j in range(pad_cols):
                v = padded[i, j] / safe_scale[ti, j // bc]
                f = np.floor(v)
                if stochastic:
                    m = f + (1.0 if rnd[i, j] < v - f else 0.0)
                else:
                    # Round half to even, matching np.round (rint).
                    d = v - f
                    if d > 0.5:
                        m = f + 1.0
                    elif d < 0.5:
                        m = f
                    else:
                        m = f if f % 2.0 == 0.0 else f + 1.0
                if m > m_max:
                    m = m_max
                elif m < m_min:
                    m = m_min
                out[i, j] = np.int32(m)

    @_njit(cache=True)
    def im2col_gather(xp, kernel, stride, out_h, out_w, out):  # pragma: no cover
        b, c = xp.shape[0], xp.shape[1]
        for n in range(b):
            for oy in range(out_h):
                for ox in range(out_w):
                    row = (n * out_h + oy) * out_w + ox
                    for ch in range(c):
                        base = ch * kernel * kernel
                        for ky in range(kernel):
                            for kx in range(kernel):
                                out[row, base + ky * kernel + kx] = xp[
                                    n, ch, oy * stride + ky, ox * stride + kx
                                ]

    _systolic_values = systolic_values
    _bfp_accumulate = bfp_accumulate
    _quantize_tiles = quantize_tiles
    _im2col_gather = im2col_gather


def systolic_run(
    x: np.ndarray, weights: np.ndarray, n: int, w: int
) -> Tuple[np.ndarray, int, np.ndarray]:
    """Compiled ``systolic.run``: jitted value loops + closed-form cycles."""
    if not _AVAILABLE:  # pragma: no cover - guarded by dispatch layer
        raise RuntimeError("compiled kernel tier requires numba")
    _build()
    rows = x.shape[0]
    out = np.zeros((rows, n), dtype=np.float64)
    _systolic_values(
        np.ascontiguousarray(x, dtype=np.float64),
        np.ascontiguousarray(weights, dtype=np.float64),
        n, w, out,
    )
    completion = (
        np.arange(rows, dtype=np.int64)[:, None]
        + np.arange(n, dtype=np.int64)[None, :]
        + (1 + n + n * w)
    )
    last_cycle = rows + (n - 1) + n + n * w
    return out, last_cycle, completion


def bfp_matmul(
    a_mant: np.ndarray,
    a_exp: np.ndarray,
    b_mant: np.ndarray,
    b_exp: np.ndarray,
    a_fmt,
    b_fmt,
    logical_rows: int,
    logical_cols: int,
    accumulator_bits: int = 25,
) -> np.ndarray:
    """Compiled ``bfp.matmul``: jitted saturating tile-lattice GEMM."""
    if not _AVAILABLE:  # pragma: no cover - guarded by dispatch layer
        raise RuntimeError("compiled kernel tier requires numba")
    _build()
    mant_bits = a_fmt.mantissa_bits
    frac = 2 * (mant_bits - 1)
    sat_hi = np.int64(2 ** (accumulator_bits - 1) - 1)
    sat_lo = np.int64(-(2 ** (accumulator_bits - 1)))
    br_a, k_blk = a_fmt.block_rows, a_fmt.block_cols
    bc_b = b_fmt.block_cols
    grid_k, grid_n = b_exp.shape
    if a_exp.shape[1] != grid_k:
        raise ValueError("tile grids do not align along K")
    grid_m = a_exp.shape[0]
    out = np.zeros((grid_m * br_a, grid_n * bc_b), dtype=np.float64)
    _bfp_accumulate(
        np.ascontiguousarray(a_mant, dtype=np.int64),
        np.ascontiguousarray(a_exp, dtype=np.int64),
        np.ascontiguousarray(b_mant, dtype=np.int64),
        np.ascontiguousarray(b_exp, dtype=np.int64),
        br_a, k_blk, bc_b, frac, sat_hi, sat_lo, out,
    )
    return out[:logical_rows, :logical_cols].astype(np.float32)


def bfp_quantize(
    values: np.ndarray,
    fmt,
    rounding: str = "nearest",
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray, Tuple[int, int]]:
    """Compiled ``bfp.quantize``: jitted divide/round/clip loops.

    The tile exponents and scales are computed with the *same* numpy
    expressions as the reference — ``ceil(log2(max_abs))`` sits on
    representability boundaries (a max fractionally above a power of
    two can round its log to the exact integer), and reproducing those
    outcomes bit for bit means running the identical ufuncs, not a
    scalar-libm rewrite. Only the per-element work is jitted. The
    stochastic draw happens here on the padded 4-D tile shape so the
    RNG stream position matches the reference exactly.
    """
    if not _AVAILABLE:  # pragma: no cover - guarded by dispatch layer
        raise RuntimeError("compiled kernel tier requires numba")
    _build()
    x = np.asarray(values, dtype=np.float64)
    rows, cols = x.shape
    br, bc = fmt.block_rows, fmt.block_cols
    pad_rows = -(-rows // br) * br
    pad_cols = -(-cols // bc) * bc
    padded = np.zeros((pad_rows, pad_cols), dtype=np.float64)
    padded[:rows, :cols] = x

    tiles = padded.reshape(pad_rows // br, br, pad_cols // bc, bc)
    max_abs = np.abs(tiles).max(axis=(1, 3))
    with np.errstate(divide="ignore"):
        exponents = np.where(
            max_abs > 0, np.ceil(np.log2(max_abs)), fmt.exponent_min
        ).astype(np.int64)
    exponents = np.clip(exponents, fmt.exponent_min, fmt.exponent_max)
    scale = np.exp2(exponents - (fmt.mantissa_bits - 1)).astype(np.float64)
    safe_scale = np.where(max_abs > 0, scale, 1.0)

    stochastic = rounding == "stochastic"
    if stochastic:
        rng = rng or np.random.default_rng()
        rnd = rng.random(tiles.shape).reshape(pad_rows, pad_cols)
    else:
        rnd = np.zeros((1, 1), dtype=np.float64)  # never read
    out = np.empty((pad_rows, pad_cols), dtype=np.int32)
    _quantize_tiles(
        padded, safe_scale, rnd, stochastic, br, bc,
        float(fmt.mantissa_min), float(fmt.mantissa_max), out,
    )
    return out, exponents.astype(np.int32), (rows, cols)


def im2col_pack(
    x: np.ndarray, kernel: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Compiled ``im2col.pack``: jitted gather loops, pure data movement."""
    if not _AVAILABLE:  # pragma: no cover - guarded by dispatch layer
        raise RuntimeError("compiled kernel tier requires numba")
    _build()
    b, c, h, _ = x.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (x.shape[3] - kernel) // stride + 1
    out = np.empty((b * out_h * out_w, c * kernel * kernel), dtype=np.float32)
    _im2col_gather(
        np.ascontiguousarray(x, dtype=np.float32),
        kernel, stride, out_h, out_w, out,
    )
    return out


def implementation(name: str) -> Optional[Callable]:
    """The compiled implementation for ``name``, or None when the pair
    has no compiled mirror — or numba is absent entirely. A None here
    makes the dispatch layer fall back to the fast backend, so a
    per-call ``backend="compiled"`` degrades the same way the
    environment-variable path does instead of exploding at call time.
    """
    if not _AVAILABLE:
        return None
    return {
        "systolic.run": systolic_run,
        "bfp.matmul": bfp_matmul,
        "bfp.quantize": bfp_quantize,
        "im2col.pack": im2col_pack,
    }.get(name)
