"""Fast block-floating-point kernels — bit-identical to the reference.

Same semantics as :mod:`repro.kernels.ref_bfp`, engineered for speed:

* ``matmul`` replaces the reference's (grid_m, grid_k, grid_n) Python
  triple loop with one BLAS GEMM per K-strip plus vectorized
  clip/scale/accumulate over the whole tile lattice. The GEMM runs in
  float64: integer tile products are exactly representable there
  whenever every K-block dot fits well under 2^53, so dgemm — with
  whatever blocking/FMA order BLAS picks — reproduces the int64 GEMM
  bit for bit (guard below; int64 fallback otherwise).
* ``quantize``/``dequantize`` skip the padding copy when the shape is
  tile-aligned, avoid the |x| temporary (``max(max, -min)`` is bit-equal
  to ``abs().max()`` including signed zeros), round with ``np.rint``
  (== ``np.round`` for whole numbers), and take power-of-two scales
  from the memoized tables in :mod:`repro.arith.bfp` / ``np.ldexp``
  (``ldexp(1.0, k) == exp2(k) == 2.0**k`` bit for bit across the
  representable range — verified by the parity suite).
* The stochastic path consumes exactly one
  ``rng.random(padded_tile_shape)`` draw, same as the reference, so the
  RNG stream position after a call is identical.

Do not import this module outside ``repro.kernels`` and tests — call
sites go through :func:`repro.kernels.dispatch` (lint rule EQX308).
"""

from typing import Optional, Tuple

import numpy as np

from repro.arith.bfp import pow2_table, saturation_bounds

__all__ = ["quantize", "dequantize", "matmul"]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def quantize(
    values: np.ndarray,
    fmt,
    rounding: str = "nearest",
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray, Tuple[int, int]]:
    """Vectorized BFP quantization; see ``ref_bfp.quantize``."""
    x = np.asarray(values, dtype=np.float64)
    rows, cols = x.shape
    br, bc = fmt.block_rows, fmt.block_cols
    pad_rows = _ceil_div(rows, br) * br
    pad_cols = _ceil_div(cols, bc) * bc
    if (pad_rows, pad_cols) == (rows, cols):
        padded = x  # tile-aligned: no padding copy needed (read-only use)
    else:
        padded = np.zeros((pad_rows, pad_cols), dtype=np.float64)
        padded[:rows, :cols] = x

    tiles = padded.reshape(pad_rows // br, br, pad_cols // bc, bc)
    max_abs = np.maximum(tiles.max(axis=(1, 3)), -tiles.min(axis=(1, 3)))
    with np.errstate(divide="ignore"):
        exponents = np.where(
            max_abs > 0, np.ceil(np.log2(max_abs)), fmt.exponent_min
        ).astype(np.int64)
    np.clip(exponents, fmt.exponent_min, fmt.exponent_max, out=exponents)

    scale = np.ldexp(
        1.0, (exponents - (fmt.mantissa_bits - 1)).astype(np.int32)
    )
    safe_scale = np.where(max_abs > 0, scale, 1.0)
    scaled = tiles / safe_scale[:, None, :, None]
    if rounding == "stochastic":
        rng = rng or np.random.default_rng()
        mant = np.floor(scaled)
        frac = scaled - mant
        mant += rng.random(scaled.shape) < frac
    else:
        mant = np.rint(scaled)
    np.clip(mant, fmt.mantissa_min, fmt.mantissa_max, out=mant)
    mantissas = mant.reshape(pad_rows, pad_cols).astype(np.int32)
    return mantissas, exponents.astype(np.int32), (rows, cols)


def dequantize(
    mantissas: np.ndarray,
    exponents: np.ndarray,
    fmt,
    logical_shape: Tuple[int, int],
) -> np.ndarray:
    """Vectorized BFP decode; see ``ref_bfp.dequantize``."""
    br, bc = fmt.block_rows, fmt.block_cols
    pad_rows, pad_cols = mantissas.shape
    tiles = mantissas.reshape(pad_rows // br, br, pad_cols // bc, bc)
    scale = np.ldexp(
        1.0, (exponents.astype(np.int64) - (fmt.mantissa_bits - 1)).astype(np.int32)
    )
    decoded = tiles * scale[:, None, :, None]
    rows, cols = logical_shape
    return decoded.reshape(pad_rows, pad_cols)[:rows, :cols].astype(np.float32)


def matmul(
    a_mant: np.ndarray,
    a_exp: np.ndarray,
    b_mant: np.ndarray,
    b_exp: np.ndarray,
    a_fmt,
    b_fmt,
    logical_rows: int,
    logical_cols: int,
    accumulator_bits: int = 25,
) -> np.ndarray:
    """Batched tile-lattice BFP matmul; see ``ref_bfp.matmul``.

    One GEMM per K-strip over the full (M, N) plane, vectorized
    saturation, and a broadcast per-tile power-of-two scale. Partial
    strips accumulate into the output in ascending-K order — the same
    per-element addition sequence as the reference triple loop, so
    float results match bit for bit.
    """
    mant_bits = a_fmt.mantissa_bits
    frac = 2 * (mant_bits - 1)
    sat_lo, sat_hi = saturation_bounds(accumulator_bits)

    br_a, k_blk = a_fmt.block_rows, a_fmt.block_cols
    bc_b = b_fmt.block_cols
    grid_m, grid_k = a_exp.shape
    grid_k2, grid_n = b_exp.shape
    if grid_k != grid_k2:
        raise ValueError("tile grids do not align along K")

    # Exactness guard for the float64 GEMM: every partial sum of a
    # K-block dot is bounded by k_blk * (2^(mant_bits-1))^2; while that
    # stays under 2^52 every intermediate is an exactly-representable
    # integer, so any BLAS summation order gives the exact result. The
    # saturation bounds must also compare exactly as float64.
    exact_f64 = (
        k_blk * 4 ** (mant_bits - 1) < 2**52 and accumulator_bits <= 50
    )
    if exact_f64:
        a_m = a_mant.astype(np.float64)
        b_m = b_mant.astype(np.float64)
    else:
        a_m = a_mant.astype(np.int64)
        b_m = b_mant.astype(np.int64)

    out = np.zeros((grid_m * br_a, grid_n * bc_b), dtype=np.float64)
    out_tiles = out.reshape(grid_m, br_a, grid_n, bc_b)
    if min(grid_m, grid_k, grid_n) == 0:
        return out[:logical_rows, :logical_cols].astype(np.float32)

    # Memoized 2.0**k table spanning the exponent sums actually present
    # (keyed on the span, so steady-state workloads hit the cache). The
    # reference's Python ``2.0 ** e`` raises OverflowError past float64
    # range; mirror that here (unreachable for data that came through
    # quantize, but keeps the backends aligned).
    a_e = a_exp.astype(np.int64)
    b_e = b_exp.astype(np.int64)
    s_min = int(a_e.min()) + int(b_e.min()) - frac
    s_max = int(a_e.max()) + int(b_e.max()) - frac
    if s_max > 1023:
        raise OverflowError("tile exponent sum exceeds float64 range")
    table = pow2_table(s_min, s_max)
    for km in range(grid_k):
        prods = (
            a_m[:, km * k_blk : (km + 1) * k_blk]
            @ b_m[km * k_blk : (km + 1) * k_blk, :]
        )
        np.clip(prods, sat_lo, sat_hi, out=prods)
        exp_sum = a_e[:, km][:, None] + b_e[km, :][None, :] - frac
        scale = table[exp_sum - s_min]
        out_tiles += (
            prods.reshape(grid_m, br_a, grid_n, bc_b)
            * scale[:, None, :, None]
        )

    return out[:logical_rows, :logical_cols].astype(np.float32)
