"""Fast im2col kernel — stride tricks, bit-identical to the oracle.

Builds the six-dimensional patch view ``(b, c, out_y, out_x, ky, kx)``
as a zero-copy ``as_strided`` window over the (padded) input, then lets
one transpose+reshape perform the single gather copy. im2col is pure
data movement, so bit-exactness is just "same elements, same places";
the reference's kernel² Python loop becomes one vectorized copy.

Do not import this module outside ``repro.kernels`` and tests — call
sites go through :func:`repro.kernels.dispatch` (lint rule EQX308).
"""

import numpy as np
from numpy.lib.stride_tricks import as_strided

__all__ = ["pack"]


def pack(
    x: np.ndarray, kernel: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Vectorized equivalent of ``ref_im2col.pack`` (same returns)."""
    b, c, h, w = x.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    elif not x.flags.c_contiguous:
        x = np.ascontiguousarray(x)
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1

    sb, sc, sh, sw = x.strides
    windows = as_strided(
        x,
        shape=(b, c, out_h, out_w, kernel, kernel),
        strides=(sb, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    # (b, out_y, out_x, c, ky, kx) row-major, flattened — the reshape of
    # the non-contiguous view is the one gather copy.
    cols = windows.transpose(0, 2, 3, 1, 4, 5)
    return cols.reshape(b * out_h * out_w, c * kernel * kernel)
