"""Wavefront-vectorized systolic kernel — bit-identical to the oracle.

The per-cycle register model (:mod:`repro.kernels.ref_systolic`) is
data-oblivious: which PE touches which value on which cycle depends
only on (R, n, w), never on the data. That licenses two collapses:

* **Values.** Every output element is the n-stage adder chain
  ``(((mac_0 + mac_1) + mac_2) + ...)`` where ``mac_s`` is itself a
  left-to-right w-lane chain. Computing all R×n×n stage partials with
  one vectorized multiply-accumulate per lane index ``t`` (a ``+=`` per
  ``t`` is a single ufunc add, so per-element accumulation order is the
  loop order), then folding stages in ascending order, reproduces the
  oracle's float64 additions in exactly the same per-element sequence —
  bit for bit. (A plain ``x @ weights`` or ``np.add.reduce`` would not:
  BLAS kernel choice and numpy's pairwise summation both reorder.)
* **Cycles.** Row r reaches column j at cycle ``r + 1 + j`` (one entry
  per cycle, one-cycle horizontal skew per column), descends n
  reduction stages, and crosses the n·w-deep exponent-sync FIFO, so
  ``completion[r, j] = r + 1 + j + n + n·w`` in closed form, and the
  last output leaves on ``R + (n-1) + n + n·w`` — the documented
  ``systolic_latency_cycles`` formula.

Do not import this module outside ``repro.kernels`` and tests — call
sites go through :func:`repro.kernels.dispatch` (lint rule EQX308).
"""

from typing import Tuple

import numpy as np

__all__ = ["run", "run_stream"]


def run(
    x: np.ndarray, weights: np.ndarray, n: int, w: int
) -> Tuple[np.ndarray, int, np.ndarray]:
    """Vectorized equivalent of ``ref_systolic.run`` (same returns)."""
    rows = x.shape[0]
    xr = np.ascontiguousarray(x).reshape(rows, n, w)
    wr = np.ascontiguousarray(weights).reshape(n, w, n)

    # partial[r, s, j] = PE (s, j)'s ordered w-lane MAC for row r.
    partial = np.zeros((rows, n, n), dtype=np.float64)
    for t in range(w):
        partial += xr[:, :, t, None] * wr[None, :, t, :]

    # Fold the reduction pipeline in ascending stage order.
    outputs = partial[:, 0, :].copy()
    for s in range(1, n):
        outputs += partial[:, s, :]

    completion = (
        np.arange(rows, dtype=np.int64)[:, None]
        + np.arange(n, dtype=np.int64)[None, :]
        + (1 + n + n * w)
    )
    last_cycle = rows + (n - 1) + n + n * w
    return outputs, last_cycle, completion


def run_stream(tiles, weights, n, w):
    """One stacked vectorized pass over a whole tile stream.

    Bit-identical to the per-tile reference loop because the model is
    row-independent in values and linear in cycles: a row's outputs
    depend only on that row and the weights, and with one row entering
    per cycle a row's completion depends only on its *global* index in
    the stream — so running the concatenation and splitting the results
    is exactly the back-to-back schedule, paying one vectorized
    dispatch instead of one per tile.
    """
    tiles = list(tiles)
    if not tiles:
        return [], 0, []
    sizes = [x.shape[0] for x in tiles]
    stacked = np.concatenate([np.asarray(x, dtype=np.float64) for x in tiles])
    out, last_cycle, completion = run(stacked, weights, n, w)
    bounds = np.cumsum(sizes)[:-1]
    return np.split(out, bounds), last_cycle, np.split(completion, bounds)
