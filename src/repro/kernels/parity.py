"""Seeded parity-fuzz corpus: the bit-exactness contract, executable.

Every registered kernel pair must agree **bit for bit** between its
``reference`` and ``fast`` implementations — not approximately:

* identical values (``np.array_equal`` on identical dtypes/shapes),
* identical shared exponents out of quantization,
* identical RNG stream position after stochastic rounding (checked via
  ``Generator.bit_generator.state``),
* identical systolic cycle counts (``last_cycle`` and the full
  per-output completion matrix).

:func:`corpus` enumerates a deterministic, seeded case list spanning
shapes × formats × rounding modes, deliberately including the
degenerate geometry that breaks naive vectorizations: 1×1 blocks,
ragged edges (``shape % block != 0``), all-zero blocks, power-of-two
tile maxima, heavy accumulator saturation, and the wide-mantissa /
wide-accumulator corner that forces the fast matmul off its float64
GEMM onto the int64 fallback. Tier-1 runs the whole corpus
(``tests/kernels/test_parity_fuzz.py``); the CI ``kernels`` job runs it
under both ambient backends.
"""

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from repro.arith.bfp import BFPFormat
from repro.kernels.registry import dispatch

__all__ = ["ParityCase", "check_case", "corpus", "run_suite"]


@dataclass(frozen=True)
class ParityCase:
    """One corpus entry: run under a backend, get a comparable payload."""

    kernel: str
    name: str
    run: Callable[[str], Dict[str, Any]]


def _values(seed: int, shape: Tuple[int, int], kind: str) -> np.ndarray:
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(shape)
    if kind == "gaussian":
        return x
    if kind == "tiny":
        return x * 1e-40
    if kind == "huge":
        return x * 1e30
    if kind == "zeros":
        return np.zeros(shape)
    if kind == "pow2":
        # Exact powers of two exercise the mantissa-overflow clamp.
        return np.ldexp(1.0, rng.integers(-8, 9, size=shape).astype(np.int32))
    if kind == "zero-blocks":
        x = x.copy()
        x[: shape[0] // 2, :] = 0.0  # some tiles all-zero, some not
        return x
    if kind == "integers":
        return rng.integers(-500, 500, size=shape).astype(np.float64)
    raise ValueError(f"unknown value kind {kind!r}")


def _quantize_case(
    name: str, seed: int, shape: Tuple[int, int], kind: str,
    fmt: BFPFormat, rounding: str,
) -> ParityCase:
    def run(backend: str) -> Dict[str, Any]:
        x = _values(seed, shape, kind)
        rng = np.random.default_rng(seed + 1)
        impl = dispatch("bfp.quantize", backend)
        mant, exp, logical = impl(x, fmt, rounding=rounding, rng=rng)
        # The stream position after the call is part of the contract:
        # a fast path that draws a different amount of randomness would
        # silently desynchronize everything downstream of it.
        return {
            "mantissas": mant,
            "exponents": exp,
            "logical_shape": logical,
            "rng_state": repr(rng.bit_generator.state),
        }

    return ParityCase("bfp.quantize", name, run)


def _dequantize_case(
    name: str, seed: int, shape: Tuple[int, int], kind: str, fmt: BFPFormat
) -> ParityCase:
    def run(backend: str) -> Dict[str, Any]:
        x = _values(seed, shape, kind)
        mant, exp, logical = dispatch("bfp.quantize", "reference")(x, fmt)
        decoded = dispatch("bfp.dequantize", backend)(mant, exp, fmt, logical)
        return {"decoded": decoded}

    return ParityCase("bfp.dequantize", name, run)


def _matmul_case(
    name: str, seed: int, m: int, k: int, n: int,
    a_fmt: BFPFormat, b_fmt: BFPFormat,
    accumulator_bits: int, kind: str = "gaussian",
) -> ParityCase:
    def run(backend: str) -> Dict[str, Any]:
        quantize = dispatch("bfp.quantize", "reference")
        a_mant, a_exp, _ = quantize(_values(seed, (m, k), kind), a_fmt)
        b_mant, b_exp, _ = quantize(_values(seed + 7, (k, n), kind), b_fmt)
        out = dispatch("bfp.matmul", backend)(
            a_mant, a_exp, b_mant, b_exp, a_fmt, b_fmt, m, n,
            accumulator_bits=accumulator_bits,
        )
        return {"product": out}

    return ParityCase("bfp.matmul", name, run)


def _systolic_case(
    name: str, seed: int, rows: int, n: int, w: int
) -> ParityCase:
    def run(backend: str) -> Dict[str, Any]:
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((rows, n * w))
        weights = rng.standard_normal((n * w, n))
        outputs, last_cycle, completion = dispatch("systolic.run", backend)(
            x, weights, n, w
        )
        return {
            "outputs": outputs,
            "last_cycle": last_cycle,
            "completion": completion,
        }

    return ParityCase("systolic.run", name, run)


def _systolic_stream_case(
    name: str, seed: int, tile_rows: Tuple[int, ...], n: int, w: int
) -> ParityCase:
    def run(backend: str) -> Dict[str, Any]:
        rng = np.random.default_rng(seed)
        weights = rng.standard_normal((n * w, n))
        tiles = [rng.standard_normal((r, n * w)) for r in tile_rows]
        outputs, last_cycle, completions = dispatch(
            "systolic.stream", backend
        )(tiles, weights, n, w)
        # Per-tile keys so _diff compares ndarray to ndarray (the
        # stream API returns lists).
        payload: Dict[str, Any] = {
            "last_cycle": last_cycle,
            "tiles": len(outputs),
        }
        for k, (out, comp) in enumerate(zip(outputs, completions)):
            payload[f"outputs/{k}"] = np.asarray(out)
            payload[f"completion/{k}"] = np.asarray(comp)
        return payload

    return ParityCase("systolic.stream", name, run)


def _im2col_case(
    name: str, seed: int, shape: Tuple[int, int, int, int],
    kernel: int, stride: int, padding: int, kind: str = "gaussian",
) -> ParityCase:
    def run(backend: str) -> Dict[str, Any]:
        rng = np.random.default_rng(seed)
        b, c, h, w = shape
        if kind == "zeros":
            x = np.zeros(shape, dtype=np.float32)
        else:
            x = rng.standard_normal(shape).astype(np.float32)
        cols = dispatch("im2col.pack", backend)(x, kernel, stride, padding)
        return {"cols": cols}

    return ParityCase("im2col.pack", name, run)


#: Formats spanning the degenerate corners. ``unit`` has 1×1 blocks
#: (every value its own tile); ``wide`` forces the fast matmul onto its
#: int64 fallback (k_blk * 4^(mant_bits-1) >= 2^52).
_HBFP8 = BFPFormat(mantissa_bits=8, exponent_bits=12, block_rows=16, block_cols=16)
_UNIT = BFPFormat(mantissa_bits=4, exponent_bits=6, block_rows=1, block_cols=1)
_ODD = BFPFormat(mantissa_bits=5, exponent_bits=8, block_rows=3, block_cols=2)
_WIDE = BFPFormat(mantissa_bits=28, exponent_bits=12, block_rows=4, block_cols=4)


def corpus() -> List[ParityCase]:
    """The deterministic parity corpus, every kernel pair covered."""
    cases: List[ParityCase] = []

    quant_grid = [
        ("aligned", (32, 32), "gaussian", _HBFP8),
        ("ragged", (17, 23), "gaussian", _HBFP8),
        ("single", (1, 1), "gaussian", _HBFP8),
        ("unit-blocks", (7, 5), "gaussian", _UNIT),
        ("odd-blocks", (10, 9), "gaussian", _ODD),
        ("all-zero", (33, 18), "zeros", _HBFP8),
        ("zero-blocks", (32, 16), "zero-blocks", _HBFP8),
        ("pow2-maxima", (16, 16), "pow2", _HBFP8),
        ("tiny-values", (20, 12), "tiny", _ODD),
        ("huge-values", (20, 12), "huge", _ODD),
        ("integers", (24, 24), "integers", _HBFP8),
    ]
    for i, (label, shape, kind, fmt) in enumerate(quant_grid):
        for rounding in ("nearest", "stochastic"):
            cases.append(
                _quantize_case(
                    f"quantize/{label}/{rounding}", 100 + i, shape, kind,
                    fmt, rounding,
                )
            )
        cases.append(
            _dequantize_case(f"dequantize/{label}", 100 + i, shape, kind, fmt)
        )

    # Rectangular blocks: B's tile height must equal A's tile width so
    # tiles align along K — mirror _ODD for the right-hand operand.
    odd_b = BFPFormat(
        mantissa_bits=_ODD.mantissa_bits,
        exponent_bits=_ODD.exponent_bits,
        block_rows=_ODD.block_cols,
        block_cols=_ODD.block_rows,
    )
    matmul_grid = [
        ("square", 48, 32, 48, _HBFP8, _HBFP8, 25, "gaussian"),
        ("fig2-ish", 64, 128, 32, _HBFP8, _HBFP8, 25, "gaussian"),
        ("ragged", 17, 33, 9, _ODD, odd_b, 25, "gaussian"),
        ("unit-blocks", 5, 7, 3, _UNIT, _UNIT, 25, "gaussian"),
        ("saturating", 48, 64, 48, _HBFP8, _HBFP8, 12, "gaussian"),
        ("int64-fallback", 12, 16, 12, _WIDE, _WIDE, 60, "gaussian"),
        ("zero-blocks", 32, 32, 32, _HBFP8, _HBFP8, 25, "zero-blocks"),
        ("huge-values", 16, 16, 16, _HBFP8, _HBFP8, 25, "huge"),
    ]
    for i, (label, m, k, n, a_fmt, b_fmt, acc, kind) in enumerate(matmul_grid):
        cases.append(
            _matmul_case(
                f"matmul/{label}", 300 + i, m, k, n, a_fmt, b_fmt, acc, kind
            )
        )

    systolic_grid = [
        ("1x1", 1, 1, 1),
        ("tall-fifo", 3, 2, 8),
        ("square", 9, 4, 4),
        ("wide-pe", 5, 3, 1),
        ("single-row", 1, 4, 2),
        ("many-rows", 21, 2, 3),
    ]
    for i, (label, rows, n, w) in enumerate(systolic_grid):
        cases.append(_systolic_case(f"systolic/{label}", 500 + i, rows, n, w))

    stream_grid = [
        ("single-tile", (9,), 4, 4),
        ("ragged", (3, 1, 7, 2), 3, 2),
        ("single-rows", (1, 1, 1), 2, 3),
        ("bursty", (16, 1, 5), 2, 8),
    ]
    for i, (label, tile_rows, n, w) in enumerate(stream_grid):
        cases.append(
            _systolic_stream_case(
                f"systolic-stream/{label}", 600 + i, tile_rows, n, w
            )
        )

    im2col_grid = [
        ("1x1", (1, 1, 1, 1), 1, 1, 0, "gaussian"),
        ("resnet-like", (2, 3, 8, 8), 3, 1, 1, "gaussian"),
        ("strided", (1, 2, 7, 5), 3, 2, 0, "gaussian"),
        ("pad-heavy", (1, 1, 4, 4), 3, 1, 2, "gaussian"),
        ("zeros", (2, 2, 6, 6), 2, 2, 1, "zeros"),
    ]
    for i, (label, shape, kk, ss, pp, kind) in enumerate(im2col_grid):
        cases.append(
            _im2col_case(f"im2col/{label}", 700 + i, shape, kk, ss, pp, kind)
        )

    return cases


def _diff(name: str, ref: Any, got: Any, backend: str = "fast") -> List[str]:
    if isinstance(ref, np.ndarray):
        if not isinstance(got, np.ndarray):
            return [
                f"{name}: {backend} returned {type(got).__name__}, not ndarray"
            ]
        if ref.dtype != got.dtype:
            return [f"{name}: dtype {got.dtype} != reference {ref.dtype}"]
        if ref.shape != got.shape:
            return [f"{name}: shape {got.shape} != reference {ref.shape}"]
        if not np.array_equal(ref, got):
            bad = int(np.sum(ref != got))
            return [
                f"{name}: {bad}/{ref.size} elements differ bitwise ({backend})"
            ]
        return []
    if ref != got:
        return [f"{name}: {backend} {got!r} != reference {ref!r}"]
    return []


def _candidate_backends() -> List[str]:
    """Backends checked against the reference: always ``fast``, plus
    ``compiled`` when numba is importable (pairs without a compiled
    mirror fall back to fast there, which re-checks fast harmlessly)."""
    from repro.kernels.registry import compiled_available

    backends = ["fast"]
    if compiled_available():
        backends.append("compiled")
    return backends


def check_case(case: ParityCase) -> List[str]:
    """Run one case under every backend; return mismatch descriptions."""
    ref = case.run("reference")
    problems: List[str] = []
    for backend in _candidate_backends():
        got = case.run(backend)
        for key in ref:
            if key not in got:
                problems.append(f"{key}: missing from {backend} payload")
                continue
            problems.extend(_diff(key, ref[key], got[key], backend))
        for key in got:
            if key not in ref:
                problems.append(
                    f"{key}: unexpected extra key in {backend} payload"
                )
    return [f"[{case.kernel}] {case.name} :: {p}" for p in problems]


def run_suite() -> Tuple[int, List[str]]:
    """Run the whole corpus; return (cases_run, mismatches)."""
    problems: List[str] = []
    cases = corpus()
    for case in cases:
        problems.extend(check_case(case))
    return len(cases), problems
