"""Reference block-floating-point kernels — the bit-exactness oracle.

These are the original tile-loop implementations from
:mod:`repro.arith.bfp`, moved here verbatim when the kernel-dispatch
layer was introduced. They favor obviousness over speed: the matmul
walks the (grid_m, grid_k, grid_n) tile lattice in explicit Python
loops, exactly mirroring how one of Equinox's systolic arrays consumes
tiles (integer tile GEMM, saturating accumulator, exponent add — paper
§3.2). The fast backend (:mod:`repro.kernels.fast_bfp`) must reproduce
every output of this module bit for bit, including the stochastic
rounding path's RNG stream consumption.

Do not import this module outside ``repro.kernels`` and tests — call
sites go through :func:`repro.kernels.dispatch` so backend selection
and parity accounting apply (lint rule EQX308).

All functions take the :class:`repro.arith.bfp.BFPFormat` duck-typed
(``mantissa_bits`` / ``exponent_*`` / ``block_*`` attributes) so this
module needs no imports beyond numpy.
"""

from typing import Optional, Tuple

import numpy as np

__all__ = ["quantize", "dequantize", "matmul"]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def quantize(
    values: np.ndarray,
    fmt,
    rounding: str = "nearest",
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray, Tuple[int, int]]:
    """Quantize a 2-D float array into BFP tiles.

    For each tile the shared exponent is chosen so the tile maximum
    maps into (0.5, 1] before mantissa scaling; mantissas are rounded
    and clipped to the signed range. All-zero tiles use the minimum
    exponent. The stochastic path consumes exactly one
    ``rng.random(padded_tile_shape)`` draw.

    Returns ``(mantissas int32 (padded), exponents int32 (tile grid),
    logical_shape)``. Argument validation (2-D, known rounding mode)
    happens in the public wrapper.
    """
    x = np.asarray(values, dtype=np.float64)
    rows, cols = x.shape
    br, bc = fmt.block_rows, fmt.block_cols
    pad_rows = _ceil_div(rows, br) * br
    pad_cols = _ceil_div(cols, bc) * bc
    padded = np.zeros((pad_rows, pad_cols), dtype=np.float64)
    padded[:rows, :cols] = x

    # Shape into (tile_r, br, tile_c, bc) to reduce per tile.
    tiles = padded.reshape(pad_rows // br, br, pad_cols // bc, bc)
    max_abs = np.abs(tiles).max(axis=(1, 3))
    with np.errstate(divide="ignore"):
        exponents = np.where(
            max_abs > 0, np.ceil(np.log2(max_abs)), fmt.exponent_min
        ).astype(np.int64)
    # A tile max that is an exact power of two maps to mantissa 1.0,
    # which overflows the signed range; the clip below absorbs it as
    # a one-LSB saturation.
    exponents = np.clip(exponents, fmt.exponent_min, fmt.exponent_max)

    scale = np.exp2(exponents - (fmt.mantissa_bits - 1)).astype(np.float64)
    # All-zero tiles carry the minimum exponent, whose scale can
    # underflow to 0.0; their mantissas are zero regardless, so use
    # a unit scale to keep the division well-defined.
    safe_scale = np.where(max_abs > 0, scale, 1.0)
    scaled = tiles / safe_scale[:, None, :, None]
    if rounding == "stochastic":
        rng = rng or np.random.default_rng()
        floor = np.floor(scaled)
        frac = scaled - floor
        mant = floor + (rng.random(scaled.shape) < frac)
    else:
        mant = np.round(scaled)
    mant = np.clip(mant, fmt.mantissa_min, fmt.mantissa_max)
    mantissas = mant.reshape(pad_rows, pad_cols).astype(np.int32)
    return mantissas, exponents.astype(np.int32), (rows, cols)


def dequantize(
    mantissas: np.ndarray,
    exponents: np.ndarray,
    fmt,
    logical_shape: Tuple[int, int],
) -> np.ndarray:
    """Decode BFP tiles back to float32 (padding stripped)."""
    br, bc = fmt.block_rows, fmt.block_cols
    pad_rows, pad_cols = mantissas.shape
    tiles = mantissas.reshape(pad_rows // br, br, pad_cols // bc, bc)
    scale = np.exp2(
        exponents.astype(np.float64) - (fmt.mantissa_bits - 1)
    )
    decoded = tiles * scale[:, None, :, None]
    rows, cols = logical_shape
    return decoded.reshape(pad_rows, pad_cols)[:rows, :cols].astype(np.float32)


def matmul(
    a_mant: np.ndarray,
    a_exp: np.ndarray,
    b_mant: np.ndarray,
    b_exp: np.ndarray,
    a_fmt,
    b_fmt,
    logical_rows: int,
    logical_cols: int,
    accumulator_bits: int = 25,
) -> np.ndarray:
    """Tile-lattice BFP matmul, the way Equinox's systolic arrays do it.

    Each tile-pair product is an integer GEMM (saturating
    ``accumulator_bits``-wide accumulators) whose scale is the sum of
    the two tile exponents; partial tiles accumulate across the K
    dimension in float, in ascending-K order — the fast backend must
    preserve that order bit for bit. Shape/alignment validation happens
    in the public wrapper.
    """
    mant_bits = a_fmt.mantissa_bits
    frac = 2 * (mant_bits - 1)
    sat_hi = 2 ** (accumulator_bits - 1) - 1
    sat_lo = -(2 ** (accumulator_bits - 1))

    br_a, k_blk = a_fmt.block_rows, a_fmt.block_cols
    bc_b = b_fmt.block_cols
    grid_m, grid_k = a_exp.shape
    grid_k2, grid_n = b_exp.shape
    if grid_k != grid_k2:
        raise ValueError("tile grids do not align along K")

    out = np.zeros((grid_m * br_a, grid_n * bc_b), dtype=np.float64)
    a_m = a_mant.astype(np.int64)
    b_m = b_mant.astype(np.int64)
    for km in range(grid_k):
        a_strip = a_m[:, km * k_blk : (km + 1) * k_blk]
        b_strip = b_m[km * k_blk : (km + 1) * k_blk, :]
        for im in range(grid_m):
            a_tile = a_strip[im * br_a : (im + 1) * br_a]
            prods = a_tile @ b_strip  # integer GEMM across all N tiles
            for jn in range(grid_n):
                tile = prods[:, jn * bc_b : (jn + 1) * bc_b]
                tile = np.clip(tile, sat_lo, sat_hi)
                exp = int(a_exp[im, km]) + int(b_exp[km, jn])
                out[
                    im * br_a : (im + 1) * br_a, jn * bc_b : (jn + 1) * bc_b
                ] += tile * (2.0 ** (exp - frac))

    return out[:logical_rows, :logical_cols].astype(np.float32)
