"""Reference im2col kernel — the per-kernel-offset loop oracle.

The original implementation from :mod:`repro.hw.im2col`, moved here
when the kernel-dispatch layer was introduced: one strided slice per
(ky, kx) kernel offset, gathered into the lowered activation matrix.
Pure data movement — the fast backend (stride tricks, one copy) must
produce an identical float32 matrix.

Do not import this module outside ``repro.kernels`` and tests — call
sites go through :func:`repro.kernels.dispatch` (lint rule EQX308).
"""

import numpy as np

__all__ = ["pack"]


def pack(
    x: np.ndarray, kernel: int, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Lower NCHW ``x`` (float32, validated by the wrapper) to a GEMM
    activation matrix of shape (batch × out_h × out_w, kernel² ×
    channels), row-major over (batch, out_y, out_x)."""
    b, c, h, w = x.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1

    cols = np.empty((b, out_h, out_w, c, kernel, kernel), dtype=np.float32)
    for ky in range(kernel):
        for kx in range(kernel):
            patch = x[
                :,
                :,
                ky : ky + stride * out_h : stride,
                kx : kx + stride * out_w : stride,
            ]
            cols[:, :, :, :, ky, kx] = patch.transpose(0, 2, 3, 1)
    return cols.reshape(b * out_h * out_w, c * kernel * kernel)
