"""Reference systolic-array kernel — the register-level oracle.

The per-cycle weight-stationary model from :mod:`repro.hw.systolic`,
moved here when the kernel-dispatch layer was introduced. One change
was made relative to the original loop: each PE's w-wide MAC is an
explicitly ordered left-to-right accumulation (`_mac` below) instead of
``float(chunk @ wslice)``. A BLAS-backed dot picks its kernel by shape
and stride, so its bit pattern is platform-dependent — an oracle built
on it would make the fast backend's bit-exactness contract ill-posed.
The ordered MAC pins the semantics: products accumulate in ascending
lane order within a PE, and partial sums accumulate in ascending stage
order down a column, exactly like the RTL's adder chain. (Numerically
this moved existing results by at most a few ulps; timing is
unchanged.)

Do not import this module outside ``repro.kernels`` and tests — call
sites go through :func:`repro.kernels.dispatch` (lint rule EQX308).
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["run", "run_stream"]


@dataclass
class _PartialSum:
    """A value in flight down one column's reduction pipeline."""

    row: int
    value: float


def _mac(chunk: np.ndarray, wslice: np.ndarray) -> float:
    """Left-to-right ordered dot product — one PE's w-lane adder chain."""
    acc = 0.0
    for t in range(chunk.shape[0]):
        acc += float(chunk[t]) * float(wslice[t])
    return acc


def run(
    x: np.ndarray, weights: np.ndarray, n: int, w: int
) -> Tuple[np.ndarray, int, np.ndarray]:
    """Stream ``x`` (R × n·w) through the array, cycle by cycle.

    Returns ``(outputs (R × n), last_cycle, completion (R × n) int64)``.
    Argument validation happens in :meth:`SystolicArray.run`.
    """
    rows = x.shape[0]
    outputs = np.zeros((rows, n))
    completion = np.full((rows, n), -1, dtype=np.int64)

    # Per-column state: a one-cycle horizontal handoff register, the
    # n-stage vertical reduction pipeline, and the output FIFO.
    handoff: List[Optional[int]] = [None] * n  # row id moving j -> j+1
    reduce_pipe: List[List[Optional[_PartialSum]]] = [
        [None] * n for _ in range(n)
    ]
    out_fifo: List[List[Optional[_PartialSum]]] = [
        [None] * (n * w) for _ in range(n)
    ]

    cycle = 0
    done = 0
    total = rows * n
    budget = rows + (n - 1) + n + n * w + 4
    while done < total:
        cycle += 1
        if cycle > budget:
            raise RuntimeError(
                "systolic model failed to drain within its latency bound"
            )
        entering = cycle - 1 if cycle - 1 < rows else None

        # Descending column order: column j reads the handoff its
        # left neighbour wrote on the *previous* cycle.
        new_handoff: List[Optional[int]] = [None] * n
        for j in range(n - 1, -1, -1):
            # 1. Output FIFO shifts one slot; the oldest pops out.
            popped = out_fifo[j].pop()
            if popped is not None:
                outputs[popped.row, j] = popped.value
                completion[popped.row, j] = cycle
                done += 1

            # 2. The reduction pipe's bottom value enters the FIFO.
            out_fifo[j].insert(0, reduce_pipe[j][-1])

            # 3. Reduction stages shift down, each adding its MACs.
            for stage in range(n - 1, 0, -1):
                prev = reduce_pipe[j][stage - 1]
                if prev is not None:
                    chunk = x[prev.row, stage * w : (stage + 1) * w]
                    wslice = weights[stage * w : (stage + 1) * w, j]
                    prev = _PartialSum(
                        prev.row, prev.value + _mac(chunk, wslice)
                    )
                reduce_pipe[j][stage] = prev

            # 4. A row arriving at this column enters stage 0 and is
            #    handed to the right neighbour for the next cycle.
            arriving = entering if j == 0 else handoff[j - 1]
            if arriving is not None:
                reduce_pipe[j][0] = _PartialSum(
                    arriving, _mac(x[arriving, 0:w], weights[0:w, j])
                )
                if j < n - 1:
                    new_handoff[j] = arriving
            else:
                reduce_pipe[j][0] = None
        handoff = new_handoff

    return outputs, cycle, completion


def run_stream(tiles, weights, n, w):
    """Stream a sequence of tiles back-to-back through one array.

    The array accepts one activation row per cycle with no bubble
    between tiles (weight-stationary: the weights never reload), so
    tile ``k`` starts entering on the cycle after tile ``k-1``'s last
    row — its per-tile cycle counts shift by the rows already streamed.

    Returns ``(outputs, last_cycle, completions)`` where ``outputs``
    and ``completions`` are per-tile lists and ``last_cycle`` is the
    cycle the final tile's last output leaves the FIFO.
    """
    outputs = []
    completions = []
    offset = 0
    last_cycle = 0
    for x in tiles:
        out, last, completion = run(x, weights, n, w)
        outputs.append(out)
        completions.append(completion + offset)
        last_cycle = offset + last
        offset += x.shape[0]
    return outputs, last_cycle, completions
