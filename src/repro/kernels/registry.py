"""Kernel-pair registry and backend selection.

Every hot numerical primitive in the reproduction exists twice: a
``reference`` implementation — the readable, obviously-correct code
that defines the semantics — and a ``fast`` implementation that must be
**bit-identical** to it (values, shared exponents, RNG stream position,
systolic cycle counts; see :mod:`repro.kernels.parity` for the enforced
contract). This module holds the pairs and decides, per call, which
side runs.

Selection, in precedence order:

1. the ``backend=`` argument threaded through public entry points
   (``BlockFloatTensor.from_float(..., backend="reference")``) — the
   per-call opt-out;
2. the ambient backend set by :func:`set_backend` or the
   :func:`use_backend` context manager;
3. the ``REPRO_KERNEL_BACKEND`` environment variable, read once at
   import;
4. the default, ``"fast"`` — safe because the parity suite enforces
   bit-exactness, so backends differ only in speed.

Dispatches are counted per ``(kernel, backend)``; the observability
layer (:func:`repro.obs.profile.kernel_dispatch_summary`) and the bench
harness read the counts to attribute work to backends.
"""

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.analysis.annotations import audited

__all__ = [
    "BACKENDS",
    "KernelPair",
    "compiled_available",
    "dispatch",
    "dispatch_counts",
    "get_backend",
    "get_kernel",
    "kernel_names",
    "register_kernel",
    "reset_dispatch_counts",
    "set_backend",
    "use_backend",
]

#: Recognized backend names, in contract order (reference is the oracle;
#: compiled requires numba and falls back to fast per-pair when a pair
#: has no compiled mirror).
BACKENDS: Tuple[str, ...] = ("reference", "fast", "compiled")

#: Environment override read once at import time.
ENV_VAR = "REPRO_KERNEL_BACKEND"


@dataclass(frozen=True)
class KernelPair:
    """One primitive's implementations (identical signatures).

    ``compiled`` is optional: only the hottest pairs carry a numba
    mirror. Requesting the compiled backend on a pair without one runs
    the fast implementation — the parity contract makes every backend
    bit-exact, so the fallback changes speed, never results.
    """

    name: str
    reference: Callable
    fast: Callable
    compiled: Optional[Callable] = None
    doc: str = ""

    def implementation(self, backend: str) -> Callable:
        if backend == "reference":
            return self.reference
        if backend == "fast":
            return self.fast
        if backend == "compiled":
            return self.compiled if self.compiled is not None else self.fast
        raise ValueError(
            f"unknown kernel backend {backend!r}; choose from {BACKENDS}"
        )


_PAIRS: Dict[str, KernelPair] = {}
_DISPATCHES: Dict[Tuple[str, str], int] = {}


def _check_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown kernel backend {backend!r}; choose from {BACKENDS}"
        )
    return backend


@audited(
    "env_read",
    reason="REPRO_KERNEL_BACKEND is read once, at import, to pick the "
    "ambient backend; both backends are bit-exact by the parity "
    "contract, so the choice never changes a result — and job workers "
    "inherit the parent's environment anyway",
)
def compiled_available() -> bool:
    """Whether the compiled (numba) tier can run on this machine."""
    from repro.kernels import compiled

    return compiled.available()


def _initial_backend() -> str:
    """The ambient backend at import: env override or the fast default.

    An environment request for the compiled tier on a machine without
    numba silently falls back to fast — a heterogeneous worker fleet
    must not crash on the images lacking the optional JIT. Explicit
    :func:`set_backend` calls raise instead, so tests and interactive
    use get a loud error.
    """
    value = os.environ.get(ENV_VAR)
    if value is None:
        return "fast"
    backend = _check_backend(value.strip().lower())
    if backend == "compiled" and not compiled_available():
        return "fast"
    return backend


_backend = _initial_backend()


def register_kernel(
    name: str,
    reference: Callable,
    fast: Callable,
    compiled: Optional[Callable] = None,
    doc: str = "",
) -> KernelPair:
    """Register a kernel pair; re-registering a name is an error."""
    if name in _PAIRS:
        raise ValueError(f"kernel {name!r} is already registered")
    pair = KernelPair(
        name=name, reference=reference, fast=fast, compiled=compiled, doc=doc
    )
    _PAIRS[name] = pair
    return pair


def kernel_names() -> Tuple[str, ...]:
    """Registered kernel names, sorted."""
    return tuple(sorted(_PAIRS))


def get_kernel(name: str) -> KernelPair:
    try:
        return _PAIRS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; registered: {sorted(_PAIRS)}"
        ) from None


def get_backend() -> str:
    """The ambient backend name."""
    return _backend


def set_backend(backend: str) -> str:
    """Set the ambient backend; returns the previous one.

    Selecting ``"compiled"`` on a machine without numba raises — an
    explicit request must not silently run something else (only the
    environment-variable path degrades, see :func:`_initial_backend`).
    """
    global _backend
    backend = _check_backend(backend)
    if backend == "compiled" and not compiled_available():
        raise RuntimeError(
            "the compiled kernel backend requires numba, which is not "
            "importable on this machine; install it or use 'fast'"
        )
    previous = _backend
    _backend = backend
    return previous


@contextmanager
def use_backend(backend: Optional[str]) -> Iterator[str]:
    """Scoped backend override (``None`` leaves the ambient one).

    The per-experiment entry points (``--kernel-backend``,
    ``convergence_experiment(kernel_backend=...)``) thread their
    argument through this, so ``None`` must be a clean no-op.
    """
    if backend is None:
        yield _backend
        return
    previous = set_backend(backend)
    try:
        yield _backend
    finally:
        set_backend(previous)


def dispatch(name: str, backend: Optional[str] = None) -> Callable:
    """Resolve ``name`` to the active implementation and count it.

    ``backend`` is the per-call opt-out; ``None`` uses the ambient
    backend.
    """
    pair = get_kernel(name)
    chosen = _backend if backend is None else _check_backend(backend)
    key = (name, chosen)
    _DISPATCHES[key] = _DISPATCHES.get(key, 0) + 1
    return pair.implementation(chosen)


def dispatch_counts() -> Dict[str, Dict[str, int]]:
    """``{kernel: {backend: dispatches}}`` with sorted keys."""
    out: Dict[str, Dict[str, int]] = {}
    for (name, backend), count in sorted(_DISPATCHES.items()):
        out.setdefault(name, {})[backend] = count
    return out


def reset_dispatch_counts() -> None:
    _DISPATCHES.clear()
