"""DNN workload models and the tile compiler.

The paper evaluates three inference/training workloads (§5): the
DeepBench machine-translation LSTM (2048 hidden units, 25 steps), the
DeepBench speech-recognition GRU (2816 hidden units, 1500 steps), and a
ResNet50 CNN. This package builds layer-accurate specifications of all
three (plus an MLP used by the examples) and compiles them into the
tiled instruction streams of paper Figure 4 for any accelerator
configuration — for inference batches and for training iterations
(forward, input-gradient and weight-gradient passes plus the
parameter-server exchange).
"""

from repro.models.graph import GemmLayer, ModelSpec
from repro.models.lstm import deepbench_lstm
from repro.models.gru import deepbench_gru
from repro.models.resnet import resnet50
from repro.models.mlp import mlp
from repro.models.compiler import (
    TileCompiler,
    compile_inference,
    compile_training,
    tiling_utilization,
)
from repro.models.training import TrainingPlan, build_training_plan
from repro.models.functional import (
    FunctionalLSTMCell,
    FunctionalMLP,
    relative_output_error,
)

__all__ = [
    "GemmLayer",
    "ModelSpec",
    "deepbench_lstm",
    "deepbench_gru",
    "resnet50",
    "mlp",
    "TileCompiler",
    "compile_inference",
    "compile_training",
    "tiling_utilization",
    "TrainingPlan",
    "build_training_plan",
    "FunctionalLSTMCell",
    "FunctionalMLP",
    "relative_output_error",
]
