"""Tile compiler: model specs → job streams (paper Figure 4).

A GEMM of shape (rows × k) @ (k × n_out) is divided into tiles whose
reduction side is ``tile_k = n·w`` and whose output side is the column
group ``m·n`` (one n-wide slice per systolic array). Each ISA
instruction streams one activation row pass (n rows) against one K-tile
of m weight tiles; producing an output tile row takes ``k_tiles``
instructions plus the accumulation of the intermediate tiles.

Weight reload bandwidth pins the minimum pass length at n cycles (a
tile set of m·n²·w weights refills at m·n·w values/cycle), which is
why vector-matrix models need batch ≥ n for full utilization — the
relationship at the heart of the paper's §4 analysis.

The compiler aggregates the instructions of one step into a small
number of jobs (see :mod:`repro.hw.isa` for why this is behaviour-
preserving) sized to a configurable occupancy target so the hardware
scheduler keeps a fine interleaving granularity.
"""

import math
from dataclasses import dataclass
from typing import List

from repro.hw.config import AcceleratorConfig
from repro.hw.isa import DRAMRequest, MMUJob, Program, SIMDJob, StepProgram
from repro.models.graph import ModelSpec

#: Default job occupancy target: ~2 µs of MMU time, fine enough for the
#: hardware scheduler to interleave training into inference gaps.
DEFAULT_CHUNK_US = 2.0


@dataclass(frozen=True)
class Tiling:
    """Tile counts and utilization for one GEMM on one configuration."""

    rows: int
    k: int
    n_out: int
    row_passes: int
    k_tiles: int
    col_groups: int

    @property
    def instructions(self) -> int:
        return self.row_passes * self.k_tiles * self.col_groups

    def occupancy_cycles(self, n: int) -> float:
        """Total MMU issue cycles: every pass streams n row slots."""
        return float(self.instructions * n)

    def capacity_macs(self, config: AcceleratorConfig) -> float:
        return self.occupancy_cycles(config.n) * config.total_alus

    @property
    def real_macs(self) -> float:
        return float(self.rows) * self.k * self.n_out

    def utilization(self, config: AcceleratorConfig) -> float:
        """Fraction of streamed MACs landing on real matrix elements."""
        return self.real_macs / self.capacity_macs(config)


def tile_gemm(rows: int, k: int, n_out: int, config: AcceleratorConfig) -> Tiling:
    """Tile one GEMM onto the configuration's MMU."""
    if min(rows, k, n_out) < 1:
        raise ValueError(f"GEMM dims must be positive: {rows}x{k}x{n_out}")
    return Tiling(
        rows=rows,
        k=k,
        n_out=n_out,
        row_passes=math.ceil(rows / config.n),
        k_tiles=math.ceil(k / config.tile_k),
        col_groups=math.ceil(n_out / config.column_group),
    )


def tiling_utilization(
    rows: int, k: int, n_out: int, config: AcceleratorConfig
) -> float:
    """Convenience wrapper: utilization of one GEMM shape."""
    return tile_gemm(rows, k, n_out, config).utilization(config)


def _chunk_jobs(
    tiling: Tiling,
    config: AcceleratorConfig,
    batch_slots: int,
    weight_bytes: float,
    chunk_us: float,
    stream_bytes: float = 0.0,
    max_stream_bytes: float = 0.0,
) -> List[MMUJob]:
    """Split one step's instructions into occupancy-targeted jobs.

    When the step carries a DRAM operand stream (training), jobs are
    additionally capped so one job's stream share fits in half the
    staging slice — the double-buffering condition that lets the next
    job's prefetch overlap the current job's compute.
    """
    total_instr = tiling.instructions
    target_cycles = max(config.n, config.us_to_cycles(chunk_us))
    instr_per_job = max(1, int(target_cycles // config.n))
    if max_stream_bytes > 0 and stream_bytes > 0:
        stream_per_instr = stream_bytes / total_instr
        stream_cap = max(1, int(max_stream_bytes // stream_per_instr))
        instr_per_job = min(instr_per_job, stream_cap)
    job_count = math.ceil(total_instr / instr_per_job)
    utilization = tiling.utilization(config)

    jobs: List[MMUJob] = []
    remaining = total_instr
    for _ in range(job_count):
        instr = min(instr_per_job, remaining)
        remaining -= instr
        cycles = float(instr * config.n)
        jobs.append(
            MMUJob(
                cycles=cycles,
                rows=batch_slots,
                macs=cycles * config.total_alus,
                utilization=utilization,
                weight_bytes=weight_bytes * instr / total_instr,
                instruction_count=instr,
            )
        )
    return jobs


def _simd_job(
    total_ops: float, tiling: Tiling, config: AcceleratorConfig
) -> SIMDJob:
    """Build the step's SIMD job with its serialized tail."""
    if total_ops <= 0:
        return SIMDJob(cycles=0.0)
    total_cycles = total_ops / config.simd_lanes
    chunks = max(1, tiling.col_groups * tiling.row_passes)
    tail = total_cycles / chunks
    return SIMDJob(
        cycles=tail, overlap_cycles=total_cycles - tail, ops=total_ops
    )


class TileCompiler:
    """Compiles model specs into inference/training job streams."""

    def __init__(self, config: AcceleratorConfig, chunk_us: float = DEFAULT_CHUNK_US):
        if chunk_us <= 0:
            raise ValueError("chunk target must be positive")
        self.config = config
        self.chunk_us = chunk_us

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def compile_inference(self, model: ModelSpec, batch: int = 0) -> Program:
        """Compile one inference batch execution.

        Args:
            model: The model spec.
            batch: Sample slots per batch; 0 selects the model's batch
                target on this configuration (n for vector models).
        """
        config = self.config
        batch = batch or model.inference_batch(config.n)
        if batch < 1:
            raise ValueError("batch must be positive")
        steps: List[StepProgram] = []
        for layer in model.layers:
            rows = batch * layer.rows_per_sample
            tiling = tile_gemm(rows, layer.k, layer.n_out, config)
            simd = _simd_job(batch * layer.simd_ops_per_sample, tiling, config)
            for rep in range(layer.repeats):
                steps.append(
                    StepProgram(
                        mmu_jobs=_chunk_jobs(
                            tiling, config, batch, 0.0, self.chunk_us
                        ),
                        simd=simd,
                        label=f"{layer.name}[{rep}]",
                    )
                )
        useful_ops_per_row = 2.0 * model.macs_per_sample
        return Program(
            name=model.name, steps=steps, rows=batch,
            useful_ops_per_row=useful_ops_per_row,
        )

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def compile_training(
        self,
        model: ModelSpec,
        batch: int = 128,
        master_bytes: float = 2.0,
        stash_bytes: float = 2.0,
        max_stream_bytes: float = 0.0,
    ) -> Program:
        """Compile one training iteration (fwd + dgrad + wgrad + sync).

        Training weights are DRAM-resident (footprints of GBs across
        services, paper §2.2); every forward and input-gradient step
        streams its layer's master weights (``master_bytes`` per value)
        through the staging buffers. Activations and output gradients
        are stashed to DRAM between the passes; weight gradients for
        recurrent layers accumulate over the sequence by concatenating
        the time steps along the reduction dimension. Gradients ship to
        the parameter server and the refreshed model ships back once
        per iteration (§5: synchronous training with a parameter
        server).

        Args:
            model: Model to train.
            batch: Samples per iteration.
            master_bytes: DRAM bytes per master-weight value (2 for the
                bfloat16 master copies HBFP training keeps off-chip).
            stash_bytes: DRAM bytes per stashed activation/gradient.
            max_stream_bytes: Job stream-size cap; pass half the staging
                capacity so prefetch double-buffers (0 disables).
        """
        config = self.config
        if batch < 1:
            raise ValueError("batch must be positive")
        steps: List[StepProgram] = []

        # Forward pass, stashing layer inputs for the backward pass.
        for layer in model.layers:
            rows = batch * layer.rows_per_sample
            w_bytes = layer.weight_count * master_bytes
            tiling = tile_gemm(rows, layer.k, layer.n_out, config)
            simd = _simd_job(batch * layer.simd_ops_per_sample, tiling, config)
            stash = DRAMRequest(rows * layer.k * stash_bytes, kind="stash_out")
            for rep in range(layer.repeats):
                steps.append(
                    StepProgram(
                        mmu_jobs=_chunk_jobs(
                            tiling, config, batch, w_bytes, self.chunk_us,
                            stream_bytes=w_bytes,
                            max_stream_bytes=max_stream_bytes,
                        ),
                        simd=simd,
                        dram=[stash],
                        label=f"fwd:{layer.name}[{rep}]",
                    )
                )

        # Backward pass in reverse layer order.
        for index in range(len(model.layers) - 1, -1, -1):
            layer = model.layers[index]
            rows = batch * layer.rows_per_sample
            w_bytes = layer.weight_count * master_bytes

            # Input gradients: dX = dY @ W^T, skipped for the first
            # layer (no upstream consumer).
            if index > 0 or layer.repeats > 1:
                tiling = tile_gemm(rows, layer.n_out, layer.k, config)
                simd = _simd_job(batch * layer.simd_ops_per_sample, tiling, config)
                stash = DRAMRequest(rows * layer.n_out * stash_bytes, kind="stash_out")
                for rep in range(layer.repeats):
                    steps.append(
                        StepProgram(
                            mmu_jobs=_chunk_jobs(
                                tiling, config, batch, w_bytes, self.chunk_us,
                                stream_bytes=w_bytes,
                                max_stream_bytes=max_stream_bytes,
                            ),
                            simd=simd,
                            dram=[stash],
                            label=f"dgrad:{layer.name}[{rep}]",
                        )
                    )

            # Weight gradients: dW = X^T @ dY with the sequence
            # concatenated along the reduction dimension.
            reduce_dim = rows * layer.repeats
            tiling = tile_gemm(layer.k, reduce_dim, layer.n_out, config)
            reload_bytes = reduce_dim * (layer.k + layer.n_out) * stash_bytes
            dw_out = DRAMRequest(
                layer.weight_count * stash_bytes, kind="grad_out"
            )
            steps.append(
                StepProgram(
                    mmu_jobs=_chunk_jobs(
                        tiling, config, batch, 0.0, self.chunk_us,
                        stream_bytes=reload_bytes,
                        max_stream_bytes=max_stream_bytes,
                    ),
                    simd=SIMDJob(cycles=0.0),
                    dram=[DRAMRequest(reload_bytes, kind="stash_in"), dw_out],
                    label=f"wgrad:{layer.name}",
                )
            )

        # Parameter-server exchange: gradients out, fresh model in.
        sync_bytes = 2.0 * model.weight_count * master_bytes
        steps.append(
            StepProgram(
                mmu_jobs=[],
                simd=SIMDJob(cycles=0.0),
                dram=[DRAMRequest(sync_bytes, kind="param_sync")],
                label="param_sync",
            )
        )

        # Useful training ops per sample: fwd + dgrad + wgrad ≈ 3× the
        # inference MACs (dgrad exists for all recurrent steps).
        useful = 2.0 * sum(step.useful_macs for step in steps)
        return Program(
            name=f"{model.name}_train_b{batch}",
            steps=steps,
            rows=batch,
            useful_ops_per_row=useful / batch,
        )


def compile_inference(
    model: ModelSpec,
    config: AcceleratorConfig,
    batch: int = 0,
    chunk_us: float = DEFAULT_CHUNK_US,
) -> Program:
    """Module-level convenience wrapper over :class:`TileCompiler`."""
    return TileCompiler(config, chunk_us).compile_inference(model, batch)


def compile_training(
    model: ModelSpec,
    config: AcceleratorConfig,
    batch: int = 128,
    chunk_us: float = DEFAULT_CHUNK_US,
    master_bytes: float = 2.0,
    stash_bytes: float = 2.0,
    max_stream_bytes: float = 0.0,
) -> Program:
    """Module-level convenience wrapper over :class:`TileCompiler`."""
    return TileCompiler(config, chunk_us).compile_training(
        model,
        batch,
        master_bytes=master_bytes,
        stash_bytes=stash_bytes,
        max_stream_bytes=max_stream_bytes,
    )
