"""Functional model execution through the quantized datapaths.

The timing models elsewhere in :mod:`repro.models` treat GEMMs as
shapes; this module executes them *numerically* under a chosen
datapath encoding, mirroring how Equinox's hardware would: GEMMs in the
MMU encoding (hbfp8 block floating point / bfloat16 / fixed8), gate
nonlinearities and state updates in bfloat16 on the SIMD unit. It
closes the loop between the arithmetic substrate and the workload
models — the tests use it to show that an LSTM inference on the hbfp8
datapath matches fp32 outputs closely, the numeric counterpart of the
Figure 2 training claim.
"""

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.arith.bfloat16 import to_bfloat16
from repro.arith.gemm import gemm


def _simd(x: np.ndarray, encoding: str) -> np.ndarray:
    """Round SIMD (vector-unit) results to the datapath's precision."""
    if encoding in ("hbfp8", "bfloat16"):
        return to_bfloat16(x)
    return np.asarray(x, dtype=np.float32)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


@dataclass
class LSTMState:
    """Cell and hidden state of a functional LSTM."""

    h: np.ndarray
    c: np.ndarray


class FunctionalLSTMCell:
    """An LSTM cell whose recurrent GEMM runs in the MMU encoding.

    Matches the DeepBench kernel the paper times: per step the hidden
    state (batch × h) multiplies the recurrent weights (h × 4h); the
    four gates and the c/h updates run at SIMD precision.

    Attributes:
        hidden: Hidden width.
        encoding: MMU datapath encoding for the GEMM.
        weights: Recurrent weight matrix (h × 4h), fp32 masters.
        bias: Gate biases (4h,).
    """

    def __init__(
        self,
        hidden: int,
        encoding: str = "fp32",
        rng: Optional[np.random.Generator] = None,
    ):
        if hidden < 1:
            raise ValueError("hidden width must be positive")
        rng = rng or np.random.default_rng(0)
        scale = 1.0 / np.sqrt(hidden)
        self.hidden = hidden
        self.encoding = encoding
        self.weights = (
            rng.standard_normal((hidden, 4 * hidden)) * scale
        ).astype(np.float32)
        self.bias = np.zeros(4 * hidden, dtype=np.float32)
        # Forget-gate bias of 1: the standard stable initialization.
        self.bias[hidden : 2 * hidden] = 1.0

    def initial_state(self, batch: int) -> LSTMState:
        return LSTMState(
            h=np.zeros((batch, self.hidden), dtype=np.float32),
            c=np.zeros((batch, self.hidden), dtype=np.float32),
        )

    def step(self, state: LSTMState) -> LSTMState:
        """One recurrent step: MMU GEMM then SIMD gate math."""
        h = self.hidden
        gates = gemm(state.h, self.weights, self.encoding) + self.bias
        gates = _simd(gates, self.encoding)
        i = _sigmoid(gates[:, 0:h])
        f = _sigmoid(gates[:, h : 2 * h])
        g = np.tanh(gates[:, 2 * h : 3 * h])
        o = _sigmoid(gates[:, 3 * h : 4 * h])
        c = _simd(f * state.c + i * g, self.encoding)
        new_h = _simd(o * np.tanh(c), self.encoding)
        return LSTMState(h=new_h, c=c)

    def run(
        self,
        initial_h: np.ndarray,
        steps: int,
        kernel_backend: Optional[str] = None,
    ) -> np.ndarray:
        """Run ``steps`` recurrent steps from ``initial_h``; returns the
        final hidden state. ``kernel_backend`` pins the
        :mod:`repro.kernels` backend for the whole rollout (``None`` =
        ambient)."""
        if steps < 1:
            raise ValueError("need at least one step")
        from repro.kernels import use_backend

        initial_h = np.asarray(initial_h, dtype=np.float32)
        state = LSTMState(h=initial_h, c=np.zeros_like(initial_h))
        with use_backend(kernel_backend):
            for _ in range(steps):
                state = self.step(state)
        return state.h


class FunctionalMLP:
    """An MLP whose layer GEMMs run in the MMU encoding.

    Built from a width chain; ReLU between layers at SIMD precision.
    """

    def __init__(
        self,
        widths: "list[int]",
        encoding: str = "fp32",
        rng: Optional[np.random.Generator] = None,
    ):
        if len(widths) < 2 or min(widths) < 1:
            raise ValueError("need a chain of at least two positive widths")
        rng = rng or np.random.default_rng(0)
        self.encoding = encoding
        self.weights = [
            (
                rng.standard_normal((k, n)) * np.sqrt(2.0 / k)
            ).astype(np.float32)
            for k, n in zip(widths[:-1], widths[1:])
        ]

    def run(
        self, x: np.ndarray, kernel_backend: Optional[str] = None
    ) -> np.ndarray:
        from repro.kernels import use_backend

        x = np.asarray(x, dtype=np.float32)
        with use_backend(kernel_backend):
            for index, weight in enumerate(self.weights):
                x = gemm(x, weight, self.encoding)
                if index < len(self.weights) - 1:
                    x = _simd(np.maximum(x, 0.0), self.encoding)
        return x


def relative_output_error(
    reference: np.ndarray, quantized: np.ndarray
) -> float:
    """Max |Δ| normalized by the reference's scale."""
    reference = np.asarray(reference, dtype=np.float32)
    scale = float(np.abs(reference).max())
    if scale == 0.0:
        return float(np.abs(quantized).max())
    return float(np.abs(quantized - reference).max()) / scale
