"""Layer-graph intermediate representation.

A model is an ordered chain of :class:`GemmLayer` entries. Each layer is
one GEMM shape plus the vector (SIMD) work attached to it; recurrent
layers carry a ``repeats`` count — the sequential time steps that form
the dependency chain dominating recurrent service times.

The compiler only needs shapes and dependency structure, so this IR is
deliberately minimal; the functional models used for the convergence
experiments live in :mod:`repro.train` instead.
"""

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class GemmLayer:
    """One GEMM-shaped layer (or one repeated recurrent cell).

    Attributes:
        name: Layer label.
        k: Reduction dimension of the GEMM.
        n_out: Output columns (e.g. 4·hidden for an LSTM's gates).
        rows_per_sample: Activation rows one sample contributes — 1 for
            vector-matrix models, the number of output spatial positions
            for a lowered convolution.
        repeats: Sequential dependent repetitions (time steps). Weights
            are shared across repeats.
        simd_ops_per_sample: Elementwise operations per sample per
            repeat (gate nonlinearities, state updates, batch norm...).
        mode: ``"vector"`` — activations broadcast, weights unicast; the
            MMU needs batch ≥ n for full utilization. ``"tall"`` —
            activation matrices with large height (lowered convs);
            weights broadcast, activations unicast.
    """

    name: str
    k: int
    n_out: int
    rows_per_sample: int = 1
    repeats: int = 1
    simd_ops_per_sample: float = 0.0
    mode: str = "vector"

    def __post_init__(self) -> None:
        if min(self.k, self.n_out, self.rows_per_sample, self.repeats) < 1:
            raise ValueError(f"invalid layer dimensions: {self}")
        if self.mode not in ("vector", "tall"):
            raise ValueError(f"unknown layer mode {self.mode!r}")
        if self.simd_ops_per_sample < 0:
            raise ValueError("SIMD op count must be non-negative")

    @property
    def weight_count(self) -> int:
        """Weight elements (shared across repeats)."""
        return self.k * self.n_out

    @property
    def macs_per_sample(self) -> float:
        """MACs one sample needs across all repeats of this layer."""
        return float(self.rows_per_sample) * self.k * self.n_out * self.repeats


@dataclass(frozen=True)
class ModelSpec:
    """An ordered chain of layers plus service metadata.

    Attributes:
        name: Model identifier.
        layers: Dependency-ordered layers.
        conv_batch_hint: For ``tall``-mode models, the inference batch
            the service uses (vector models batch to the accelerator's
            ``n`` instead).
    """

    name: str
    layers: Tuple[GemmLayer, ...]
    conv_batch_hint: int = 8

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError("a model needs at least one layer")

    @property
    def macs_per_sample(self) -> float:
        """Total MACs to infer one sample."""
        return sum(layer.macs_per_sample for layer in self.layers)

    @property
    def ops_per_sample(self) -> float:
        """Total GEMM ops (2 × MACs) to infer one sample."""
        return 2.0 * self.macs_per_sample

    @property
    def weight_count(self) -> int:
        return sum(layer.weight_count for layer in self.layers)

    def weight_bytes(self, bytes_per_operand: float) -> float:
        """On-chip footprint of the model's weights."""
        return self.weight_count * bytes_per_operand

    @property
    def is_recurrent(self) -> bool:
        return any(layer.repeats > 1 for layer in self.layers)

    @property
    def step_count(self) -> int:
        """Total dependency-chain length across the model."""
        return sum(layer.repeats for layer in self.layers)

    def inference_batch(self, n: int) -> int:
        """Batch target for this model on an accelerator with array side n.

        Vector-matrix models need batch ≥ n to fill the array (paper
        §4); tall (convolutional) models get their rows from spatial
        positions, so a small service batch suffices.
        """
        if all(layer.mode == "tall" for layer in self.layers):
            return self.conv_batch_hint
        return n
