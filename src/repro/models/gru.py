"""DeepBench speech-recognition GRU.

The paper's long-sequence workload (§5): a GRU with 2816 hidden units
and 1500 time steps, covering the tens-of-milliseconds service-time
regime. Per step the recurrent GEMM computes three gates (h × 3h); the
gate products and interpolation run on the SIMD unit.
"""

from repro.models.graph import GemmLayer, ModelSpec

#: Reset/update gates (~5 ops each over h), candidate tanh (~5 over h),
#: plus the elementwise reset product and state interpolation (~5).
_SIMD_OPS_PER_HIDDEN = 2 * 5 + 5 + 5


def deepbench_gru(hidden: int = 2816, steps: int = 1500) -> ModelSpec:
    """Build the DeepBench GRU spec.

    Args:
        hidden: Hidden-state width (2816 in the paper).
        steps: Sequence length (1500 in the paper).
    """
    if hidden < 1 or steps < 1:
        raise ValueError("hidden size and steps must be positive")
    cell = GemmLayer(
        name="gru_cell",
        k=hidden,
        n_out=3 * hidden,
        rows_per_sample=1,
        repeats=steps,
        simd_ops_per_sample=float(_SIMD_OPS_PER_HIDDEN * hidden),
        mode="vector",
    )
    return ModelSpec(name=f"gru_h{hidden}_s{steps}", layers=(cell,))
