"""DeepBench machine-translation LSTM.

The paper's main workload (§5): an LSTM with 2048 hidden units and 25
time steps. DeepBench's recurrent kernels time the recurrent GEMM — per
step, the hidden state (batch × h) multiplies the recurrent weights
(h × 4h) to produce the four gate pre-activations; the gate
nonlinearities and the cell/hidden state updates run on the SIMD unit.
"""

from repro.models.graph import GemmLayer, ModelSpec

#: Per-sample-per-step elementwise work: four gate nonlinearities over
#: 4h values (~5 ops each as piecewise/polynomial evaluations on the
#: SIMD unit) plus the c/h state updates (~6 ops over h values).
_SIMD_OPS_PER_HIDDEN = 4 * 5 + 6


def deepbench_lstm(hidden: int = 2048, steps: int = 25) -> ModelSpec:
    """Build the DeepBench LSTM spec.

    Args:
        hidden: Hidden-state width (2048 in the paper).
        steps: Sequence length / recurrent repeats (25 in the paper).
    """
    if hidden < 1 or steps < 1:
        raise ValueError("hidden size and steps must be positive")
    cell = GemmLayer(
        name="lstm_cell",
        k=hidden,
        n_out=4 * hidden,
        rows_per_sample=1,
        repeats=steps,
        simd_ops_per_sample=float(_SIMD_OPS_PER_HIDDEN * hidden),
        mode="vector",
    )
    return ModelSpec(name=f"lstm_h{hidden}_s{steps}", layers=(cell,))
