"""MLP model builder.

MLPs dominate datacenter recommendation inference (paper §4 cites RNNs
and MLPs as the vector-matrix workloads). This builder is used by the
examples and by tests that need a small, fully-characterized model.
"""

from typing import Sequence

from repro.models.graph import GemmLayer, ModelSpec

#: ReLU plus bias per output element.
_SIMD_OPS_PER_OUTPUT = 2.0


def mlp(layer_widths: Sequence[int], name: str = "mlp") -> ModelSpec:
    """Build an MLP from a width chain, e.g. ``[512, 1024, 1024, 64]``.

    Each consecutive pair becomes one GEMM layer; all layers are
    vector-matrix mode (one activation row per sample).
    """
    widths = list(layer_widths)
    if len(widths) < 2:
        raise ValueError("an MLP needs at least an input and an output width")
    if min(widths) < 1:
        raise ValueError("layer widths must be positive")
    layers = tuple(
        GemmLayer(
            name=f"fc{i}",
            k=k,
            n_out=n_out,
            simd_ops_per_sample=_SIMD_OPS_PER_OUTPUT * n_out,
            mode="vector",
        )
        for i, (k, n_out) in enumerate(zip(widths[:-1], widths[1:]))
    )
    return ModelSpec(name=name, layers=layers)
