"""ResNet50 layer table.

The paper's CNN workload (Table 2). Each convolution is lowered to a
GEMM by the im2col unit; the activation matrix is tall (one row per
output spatial position), so the MMU processes these layers in its
weight-broadcast mode. Batch normalization, ReLU and the residual adds
run on the SIMD unit.
"""

from typing import List, Tuple

from repro.hw.im2col import ConvShape, lowered_conv_gemm
from repro.models.graph import GemmLayer, ModelSpec

#: (blocks, bottleneck width, output channels, first-block stride)
_STAGES: Tuple[Tuple[int, int, int, int], ...] = (
    (3, 64, 256, 1),  # conv2_x on 56×56
    (4, 128, 512, 2),  # conv3_x on 28×28
    (6, 256, 1024, 2),  # conv4_x on 14×14
    (3, 512, 2048, 2),  # conv5_x on 7×7
)

#: Per-output-element SIMD work: batch norm (scale+shift), ReLU, and a
#: share of the residual add.
_SIMD_OPS_PER_OUTPUT = 4.0


def _conv_layer(name: str, shape: ConvShape) -> GemmLayer:
    m_rows, k, n_out = lowered_conv_gemm(shape, batch=1)
    return GemmLayer(
        name=name,
        k=k,
        n_out=n_out,
        rows_per_sample=m_rows,
        repeats=1,
        simd_ops_per_sample=_SIMD_OPS_PER_OUTPUT * m_rows * n_out,
        mode="tall",
    )


def resnet50(image_size: int = 224, conv_batch: int = 8) -> ModelSpec:
    """Build the ResNet50 spec (He et al., CVPR'16 bottleneck variant).

    Args:
        image_size: Input resolution (224 in the paper's setting).
        conv_batch: Inference service batch for this model; spatial
            positions supply MMU rows, so the service batches far fewer
            requests than recurrent models do.
    """
    if image_size < 32:
        raise ValueError("image size too small for the ResNet50 stem")
    layers: List[GemmLayer] = []

    # Stem: 7×7/2 convolution then 3×3/2 max pooling.
    stem = ConvShape(
        in_channels=3, out_channels=64, kernel=7, stride=2, padding=3,
        in_height=image_size, in_width=image_size,
    )
    layers.append(_conv_layer("conv1", stem))
    feat = stem.out_height // 2  # max-pool halves the resolution
    channels = 64

    for stage_idx, (blocks, width, out_channels, first_stride) in enumerate(_STAGES):
        for block in range(blocks):
            stride = first_stride if block == 0 else 1
            prefix = f"conv{stage_idx + 2}_{block + 1}"
            reduce_shape = ConvShape(
                in_channels=channels, out_channels=width, kernel=1,
                stride=stride, padding=0, in_height=feat, in_width=feat,
            )
            layers.append(_conv_layer(f"{prefix}_1x1a", reduce_shape))
            mid = reduce_shape.out_height
            conv_shape = ConvShape(
                in_channels=width, out_channels=width, kernel=3,
                stride=1, padding=1, in_height=mid, in_width=mid,
            )
            layers.append(_conv_layer(f"{prefix}_3x3", conv_shape))
            expand_shape = ConvShape(
                in_channels=width, out_channels=out_channels, kernel=1,
                stride=1, padding=0, in_height=mid, in_width=mid,
            )
            layers.append(_conv_layer(f"{prefix}_1x1b", expand_shape))
            if block == 0:
                shortcut = ConvShape(
                    in_channels=channels, out_channels=out_channels, kernel=1,
                    stride=stride, padding=0, in_height=feat, in_width=feat,
                )
                layers.append(_conv_layer(f"{prefix}_shortcut", shortcut))
            feat = mid
            channels = out_channels

    # Global average pool feeds the classifier GEMM.
    layers.append(
        GemmLayer(
            name="fc1000",
            k=channels,
            n_out=1000,
            rows_per_sample=1,
            simd_ops_per_sample=1000.0,
            mode="tall",
        )
    )
    return ModelSpec(
        name=f"resnet50_{image_size}", layers=tuple(layers),
        conv_batch_hint=conv_batch,
    )
