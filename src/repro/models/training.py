"""Training-iteration planning and analytic throughput bounds.

Wraps a compiled training program with the quantities the evaluation
needs: useful ops per iteration, DRAM traffic per iteration, and the
compute/bandwidth-bound iteration time of a *dedicated* training
accelerator — the paper's reference point ("a training accelerator that
saturates the available compute resources and DRAM bandwidth", §1) that
Figure 9 and Table 2 measure Equinox against.
"""

from dataclasses import dataclass

from repro.hw.config import AcceleratorConfig
from repro.hw.isa import Program
from repro.models.compiler import TileCompiler
from repro.models.graph import ModelSpec

#: Streaming HBM transfers sustain a fraction of the pin bandwidth
#: (row activation, refresh, read/write turnarounds); DRAMSim-validated
#: throughput models land in this range for 512-bit streams.
DRAM_STREAM_EFFICIENCY = 0.7


@dataclass(frozen=True)
class TrainingPlan:
    """A training iteration bound to one accelerator configuration."""

    model: ModelSpec
    config: AcceleratorConfig
    program: Program
    batch: int

    @property
    def ops_per_iteration(self) -> float:
        """Useful GEMM ops per iteration (fwd + dgrad + wgrad)."""
        return self.program.total_useful_ops

    @property
    def dram_bytes_per_iteration(self) -> float:
        """Weight streams, stashes, gradient and sync traffic."""
        return self.program.total_dram_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """Useful ops per DRAM byte — training's fundamental bound."""
        return self.ops_per_iteration / self.dram_bytes_per_iteration

    def compute_cycles(self) -> float:
        """MMU occupancy of one iteration at zero contention."""
        return self.program.total_mmu_cycles

    def dram_cycles(self) -> float:
        """Channel occupancy of one iteration at streaming efficiency."""
        bytes_per_cycle = self.config.dram_bytes_per_cycle * DRAM_STREAM_EFFICIENCY
        return self.dram_bytes_per_iteration / bytes_per_cycle

    def dedicated_iteration_cycles(self) -> float:
        """Iteration time on a dedicated accelerator of this shape.

        Each phase (step) is limited by the slower of its compute and
        its DRAM stream; phases pipeline against each other, so the
        iteration takes the max of the two aggregate occupancies.
        """
        return max(self.compute_cycles(), self.dram_cycles())

    def dedicated_throughput_top_s(self) -> float:
        """The paper's reference: training throughput when the whole
        accelerator (compute + HBM) serves training alone."""
        cycles = self.dedicated_iteration_cycles()
        seconds = self.config.cycles_to_seconds(cycles)
        return self.ops_per_iteration / seconds / 1e12

    def compute_bound_top_s(self) -> float:
        """Throughput if only the MMU limited (infinite bandwidth)."""
        seconds = self.config.cycles_to_seconds(self.compute_cycles())
        return self.ops_per_iteration / seconds / 1e12

    def dram_bound_top_s(self) -> float:
        """Throughput if only the HBM stream limited."""
        seconds = self.config.cycles_to_seconds(self.dram_cycles())
        return self.ops_per_iteration / seconds / 1e12

    @property
    def is_dram_bound(self) -> bool:
        """Whether HBM bandwidth, not compute, limits this plan —
        the paper's §2.2 observation for practical batch sizes."""
        return self.dram_cycles() >= self.compute_cycles()


def build_training_plan(
    model: ModelSpec,
    config: AcceleratorConfig,
    batch: int = 128,
    chunk_us: float = 2.0,
) -> TrainingPlan:
    """Compile ``model`` for training on ``config`` and wrap the plan."""
    program = TileCompiler(config, chunk_us).compile_training(model, batch)
    return TrainingPlan(model=model, config=config, program=program, batch=batch)
