"""repro.obs — the unified observability layer.

Every quantity the paper's evaluation reports — p99 latency (Figures 7,
10, 11), sustained TOp/s (Figure 9, Table 2), the MMU cycle breakdown
(Figure 8), fault/recovery counts — flows through this package so runs
can be exported, compared and correlated:

* :mod:`repro.obs.sketch` — a bounded-memory streaming quantile sketch
  (DDSketch-style log buckets) so p50/p99/p999 work without retaining
  every sample.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges, histograms and deferred sources (the migration path for the
  pre-existing collectors in :mod:`repro.sim.stats` and
  :mod:`repro.faults.counters`).
* :mod:`repro.obs.spans` — hierarchical span tracing layered on the
  :class:`repro.sim.trace.Tracer` (request lifecycle: arrival →
  dispatch → tile execution → completion; training lifecycle:
  prefetch → step → aggregate).
* :mod:`repro.obs.profile` — simulator hot-path profiling (events/sec,
  heap depth, per-component callback time).
* :mod:`repro.obs.report` — the structured JSON run artifact
  (:class:`RunReport`) every experiment and the chaos CLI emit, with
  its schema validator and differ.
* :mod:`repro.obs.cli` — ``python -m repro metrics`` to dump, validate
  and diff run artifacts.

Determinism contract: everything serialized into a
:class:`RunReport` derives from simulation state only — two runs with
the same seed emit byte-identical JSON. Wall-clock profiling data stays
on the :class:`SimProfiler` object and is reported out-of-band.
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import SimProfiler
from repro.obs.report import (
    RunReport,
    diff_reports,
    report_from_simulation,
    validate_report,
)
from repro.obs.sketch import QuantileSketch
from repro.obs.spans import Span, SpanTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QuantileSketch",
    "RunReport",
    "SimProfiler",
    "Span",
    "SpanTracer",
    "diff_reports",
    "report_from_simulation",
    "validate_report",
]
