"""``python -m repro metrics`` — dump, validate and diff run artifacts.

    python -m repro metrics smoke --out artifacts/smoke.json
    python -m repro metrics fig9 --out artifacts/fig9.json
    python -m repro metrics validate artifacts/*.json
    python -m repro metrics diff run_a.json run_b.json

``smoke`` runs one small profiled accelerator experiment and emits its
:class:`repro.obs.RunReport` — the CI metrics job runs exactly this and
then ``validate``s the output, which fails (exit 1) on schema breakage
or any ``nan`` latency/throughput field. An experiment name runs that
experiment under :func:`repro.eval.runner.capture_run` and emits the
sweep's aggregate artifact. ``diff`` compares two artifacts field by
field (exit 1 when they differ), which is how byte-level determinism
regressions and cross-version drifts are inspected.

Wall-clock profiling figures (events/sec, per-component callback time)
are printed to *stderr* only: they are nondeterministic and therefore
deliberately kept out of the artifact itself.

Everything heavier than the artifact helpers is imported lazily inside
the handlers, so ``metrics validate``/``diff`` stay instant.
"""

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.obs.profile import SimProfiler
from repro.obs.report import RunReport, diff_reports, validate_report

#: Smoke-run shape: small enough for CI, big enough to exercise the
#: dispatcher, both engines, the arbiter and the span tracer.
SMOKE_LOAD = 0.5
SMOKE_REQUESTS = 200
SMOKE_SEED = 1


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "target",
        help="'smoke', 'validate', 'diff', or an experiment name "
        "(see 'python -m repro list')",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="artifact path(s) for validate/diff",
    )
    parser.add_argument(
        "--out", default=None,
        help="write the artifact JSON here instead of stdout",
    )
    parser.add_argument(
        "--rel-tolerance", type=float, default=0.0,
        help="relative tolerance for diff (default: exact)",
    )
    parser.add_argument(
        "--loads", type=float, nargs="+", default=None,
        help="override the load grid for load-sweep experiments",
    )


def _emit(report: RunReport, out: Optional[str]) -> int:
    """Validate and write/print one artifact; exit status 0/1."""
    text = report.to_json()
    problems = validate_report(json.loads(text))
    if out:
        directory = os.path.dirname(out)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {out}")
    else:
        print(text)
    for problem in problems:
        print(f"invalid artifact: {problem}", file=sys.stderr)
    return 1 if problems else 0


def _smoke(out: Optional[str]) -> int:
    from repro.core.equinox import EquinoxAccelerator
    from repro.dse.table1 import equinox_configuration
    from repro.models.lstm import deepbench_lstm

    profiler = SimProfiler()
    model = deepbench_lstm()
    accelerator = EquinoxAccelerator(
        equinox_configuration("500us"),
        model,
        training_model=model,
        profiler=profiler,
    )
    sim_report = accelerator.run(
        load=SMOKE_LOAD, requests=SMOKE_REQUESTS, seed=SMOKE_SEED
    )
    report = accelerator.run_report(sim_report, "smoke")
    status = _emit(report, out)
    for key, value in profiler.wall_summary().items():
        print(f"[wall] {key}: {value:.6g}", file=sys.stderr)
    return status


def _experiment(name: str, loads, out: Optional[str]) -> int:
    from repro.__main__ import EXPERIMENTS
    from repro.eval.runner import capture_run

    if name not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        print(
            f"unknown metrics target {name!r}; expected 'smoke', "
            f"'validate', 'diff' or one of: {known}",
            file=sys.stderr,
        )
        return 2
    module, _ = EXPERIMENTS[name]
    kwargs = {}
    if loads and hasattr(module.run, "__code__") and (
        "loads" in module.run.__code__.co_varnames
    ):
        kwargs["loads"] = tuple(loads)
    with capture_run(name) as capture:
        module.run(**kwargs)
    return _emit(capture.build_report(), out)


def _validate(paths: List[str]) -> int:
    if not paths:
        print("metrics validate needs at least one path", file=sys.stderr)
        return 2
    status = 0
    for path in paths:
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"{path}: unreadable ({error})", file=sys.stderr)
            status = 1
            continue
        problems = validate_report(data)
        if problems:
            status = 1
            for problem in problems:
                print(f"{path}: {problem}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return status


def _diff(paths: List[str], rel_tolerance: float) -> int:
    if len(paths) != 2:
        print("metrics diff needs exactly two paths", file=sys.stderr)
        return 2
    reports = []
    for path in paths:
        with open(path) as handle:
            reports.append(RunReport.from_dict(json.load(handle)))
    delta = diff_reports(reports[0], reports[1], rel_tolerance=rel_tolerance)
    if not delta:
        print("identical")
        return 0
    width = max(len(path) for path in delta)
    for path in sorted(delta):
        a, b = delta[path]
        print(f"{path:<{width}}  {a!r:>24} -> {b!r}")
    return 1


def run(args: argparse.Namespace) -> int:
    if args.target == "smoke":
        return _smoke(args.out)
    if args.target == "validate":
        return _validate(list(args.paths))
    if args.target == "diff":
        return _diff(list(args.paths), args.rel_tolerance)
    return _experiment(args.target, args.loads, args.out)
