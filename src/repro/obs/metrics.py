"""Counters, gauges, histograms and the :class:`MetricsRegistry`.

Metric names are lowercase dotted paths (``request.latency_us``,
``mmu.cycles.working``) — the dots are the namespace hierarchy the run
artifact and the ``metrics diff`` CLI flatten on.

Two kinds of producers feed a registry:

* **Live instruments** — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` created through the registry and updated on the
  hot path.
* **Deferred sources** — callables returning a flat ``{leaf: value}``
  dict, read once per :meth:`MetricsRegistry.snapshot`. This is how the
  pre-existing collectors (:class:`repro.sim.stats.LatencyStats`,
  :class:`~repro.sim.stats.ThroughputMeter`,
  :class:`~repro.sim.stats.CycleAccounting`,
  :class:`repro.faults.counters.FaultCounters`) migrated into the
  observability layer without changing their public APIs.

Snapshots are plain nested dicts with deterministically ordered keys,
so two identically seeded runs serialize byte-identically.
"""

import math
import re
from typing import Any, Callable, Dict, Mapping, Optional, Union

from repro.obs.sketch import DEFAULT_RELATIVE_ACCURACY, QuantileSketch

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"invalid metric name {name!r}: use lowercase dotted paths "
            "like 'request.latency_us'"
        )
    return name


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self._value += amount


class Gauge:
    """A point-in-time value (queue depth, degraded flag, ...)."""

    __slots__ = ("name", "help", "_value")

    def __init__(self, name: str, help: str = ""):
        self.name = _check_name(name)
        self.help = help
        self._value = 0.0

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError(f"gauge {self.name} cannot be set to NaN")
        self._value = value

    def track_max(self, value: float) -> None:
        """Keep the high-water mark (heap depth, backlog peaks)."""
        if value > self._value:
            self.set(value)


class Histogram:
    """A streaming distribution backed by :class:`QuantileSketch`."""

    __slots__ = ("name", "help", "sketch")

    def __init__(
        self,
        name: str,
        help: str = "",
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
    ):
        self.name = _check_name(name)
        self.help = help
        self.sketch = QuantileSketch(relative_accuracy=relative_accuracy)

    def observe(self, value: float) -> None:
        self.sketch.observe(value)

    @property
    def count(self) -> int:
        return self.sketch.count

    def quantile(self, q: float) -> float:
        return self.sketch.quantile(q)

    def to_dict(self) -> Dict[str, float]:
        return self.sketch.to_dict()


#: What a deferred source yields: flat leaf -> numeric value.
SourceFn = Callable[[], Mapping[str, Union[int, float]]]


class MetricsRegistry:
    """One namespace of metrics for a run (accelerator, fleet, CLI).

    ``counter``/``gauge``/``histogram`` are get-or-create: asking twice
    for the same name returns the same instrument, so components can
    share metrics without threading objects around. Creating a name as
    two different kinds is an error.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._sources: Dict[str, SourceFn] = {}

    # ------------------------------------------------------------------
    # Instrument factories
    # ------------------------------------------------------------------

    def _claim(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
            "source": self._sources,
        }
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}"
                )

    def counter(self, name: str, help: str = "") -> Counter:
        self._claim(name, "counter")
        if name not in self._counters:
            self._counters[name] = Counter(name, help)
        return self._counters[name]

    def gauge(self, name: str, help: str = "") -> Gauge:
        self._claim(name, "gauge")
        if name not in self._gauges:
            self._gauges[name] = Gauge(name, help)
        return self._gauges[name]

    def histogram(
        self,
        name: str,
        help: str = "",
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
    ) -> Histogram:
        self._claim(name, "histogram")
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, help, relative_accuracy)
        return self._histograms[name]

    def register_source(self, name: str, fn: SourceFn) -> None:
        """Attach a deferred metric source under the ``name`` prefix.

        The callable is invoked at snapshot time and must return a flat
        mapping of leaf names to numbers — the migration path for the
        legacy collectors, whose public APIs stay untouched.
        """
        _check_name(name)
        self._claim(name, "source")
        if name in self._sources:
            raise ValueError(f"source {name!r} already registered")
        self._sources[name] = fn

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Deterministic nested dict of every metric's current value."""
        counters = {
            name: self._counters[name].value for name in sorted(self._counters)
        }
        gauges = {
            name: self._gauges[name].value for name in sorted(self._gauges)
        }
        histograms = {
            name: self._histograms[name].to_dict()
            for name in sorted(self._histograms)
        }
        sources: Dict[str, Dict[str, float]] = {}
        for name in sorted(self._sources):
            values = self._sources[name]()
            sources[name] = {
                leaf: float(values[leaf]) for leaf in sorted(values)
            }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "sources": sources,
        }

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract): every live instrument's
        value, with histograms as lossless sketch dumps.

        Deferred sources are *not* captured: they are read-through views
        over components that snapshot themselves, and the facade
        re-registers them at construction.
        """
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: self._histograms[name].sketch.to_state()
                for name in sorted(self._histograms)
            },
        }

    def from_state(self, state: Dict[str, Any]) -> None:
        """Inverse of :meth:`to_state`: instruments are get-or-created
        (help strings are presentation, not state) and overwritten."""
        for name, value in state["counters"].items():
            self.counter(name)._value = float(value)
        for name, value in state["gauges"].items():
            self.gauge(name)._value = float(value)
        for name, sketch_state in state["histograms"].items():
            self.histogram(name).sketch = QuantileSketch.from_state(
                sketch_state
            )

    def flat(self) -> Dict[str, float]:
        """Flattened ``{dotted.path: value}`` view of :meth:`snapshot`
        (what ``python -m repro metrics diff`` compares)."""
        out: Dict[str, float] = {}
        snap = self.snapshot()
        for name, value in snap["counters"].items():
            out[name] = value
        for name, value in snap["gauges"].items():
            out[name] = value
        for name, fields in snap["histograms"].items():
            for leaf, value in fields.items():
                out[f"{name}.{leaf}"] = value
        for name, fields in snap["sources"].items():
            for leaf, value in fields.items():
                out[f"{name}.{leaf}"] = value
        return out
