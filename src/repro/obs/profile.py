"""Simulator hot-path profiling.

:class:`SimProfiler` hangs off :meth:`repro.sim.engine.Simulator
.set_profiler` and observes every event the kernel executes: heap depth
at dispatch, an event count per callback (component attribution via
``__qualname__``), and wall-clock time spent inside each callback. The
engine itself never reads the wall clock — that would violate the
EQX302 determinism lint for ``repro.sim`` — it only calls the hook
pair; the clock lives here, outside the deterministic packages.

Two export surfaces with different guarantees:

* :meth:`deterministic_metrics` / :meth:`component_events` — counts and
  depths derived from simulation structure only; safe to embed in a
  byte-identical :class:`repro.obs.report.RunReport`.
* :meth:`wall_summary` — events/sec and per-component seconds; real
  wall-clock data, deliberately **kept out** of run artifacts so the
  determinism contract holds.
"""

import time
from typing import Callable, Dict, Optional

__all__ = ["SimProfiler", "kernel_dispatch_summary"]


def kernel_dispatch_summary() -> Dict[str, float]:
    """Flattened per-(kernel, backend) dispatch counters.

    Reads the :mod:`repro.kernels` registry and returns
    ``kernels.dispatch.<kernel>.<backend> -> count`` — deterministic
    (counts are a function of the work executed, never of the clock), so
    the figures are safe to embed in run artifacts and let a report say
    which backend actually computed it. Counters accumulate per process;
    :func:`repro.kernels.reset_dispatch_counts` scopes them to one run.
    """
    from repro import kernels

    out: Dict[str, float] = {}
    for name, by_backend in kernels.dispatch_counts().items():
        for backend in sorted(by_backend):
            out[f"kernels.dispatch.{name}.{backend}"] = float(
                by_backend[backend]
            )
    return out


def _component_of(callback: Callable) -> str:
    """A stable display name for a callback (module.qualname)."""
    qualname = getattr(callback, "__qualname__", None)
    if qualname is None:
        return type(callback).__name__
    module = getattr(callback, "__module__", None)
    return f"{module}.{qualname}" if module else qualname


class SimProfiler:
    """Per-event instrumentation for one simulator run.

    Args:
        clock: Wall-clock source (injectable for tests); defaults to
            :func:`time.perf_counter`.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self.events = 0
        self.max_heap_depth = 0
        self._event_counts: Dict[str, int] = {}
        self._wall_by_component: Dict[str, float] = {}
        self.wall_seconds = 0.0
        self._pending: Optional[str] = None
        self._started_at: float = 0.0

    # ------------------------------------------------------------------
    # Engine hooks (called from Simulator.run's hot loop)
    # ------------------------------------------------------------------

    def before_event(self, event, heap_depth: int) -> None:
        component = _component_of(event.callback)
        self.events += 1
        if heap_depth > self.max_heap_depth:
            self.max_heap_depth = heap_depth
        self._event_counts[component] = (
            self._event_counts.get(component, 0) + 1
        )
        self._pending = component
        self._started_at = self._clock()

    def after_event(self, event) -> None:
        if self._pending is None:
            return
        elapsed = self._clock() - self._started_at
        self.wall_seconds += elapsed
        self._wall_by_component[self._pending] = (
            self._wall_by_component.get(self._pending, 0.0) + elapsed
        )
        self._pending = None

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def deterministic_metrics(self) -> Dict[str, float]:
        """Simulation-derived figures only (run-artifact safe)."""
        return {
            "events": float(self.events),
            "max_heap_depth": float(self.max_heap_depth),
        }

    def component_events(self) -> Dict[str, float]:
        """Event count per callback component (deterministic)."""
        return {
            name: float(self._event_counts[name])
            for name in sorted(self._event_counts)
        }

    def events_per_second(self) -> float:
        """Kernel throughput in events per *wall* second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.events / self.wall_seconds

    def wall_summary(self) -> Dict[str, float]:
        """Wall-clock view — nondeterministic, never embedded in run
        artifacts; the metrics CLI prints it to stderr instead."""
        out = {
            "wall_seconds": self.wall_seconds,
            "events_per_second": self.events_per_second(),
        }
        for name in sorted(self._wall_by_component):
            out[f"callback_seconds.{name}"] = self._wall_by_component[name]
        return out
