"""The structured JSON run artifact every experiment emits.

A :class:`RunReport` is the machine-readable counterpart of the text
tables the harness prints: one per run (an accelerator load experiment,
one chaos scenario, a fleet round, an experiment sweep), carrying the
paper's headline quantities in fixed fields —

* ``latency_us`` — p50/p99/mean/max request latency (Figures 7/10/11),
* ``throughput_top_s`` — inference and training TOp/s (Figure 9),
* ``cycle_breakdown`` — Figure 8's working/dummy/idle/other fractions,
* ``faults`` — the full :class:`repro.faults.FaultCounters` snapshot,

plus the free-form ``metrics`` (a :class:`MetricsRegistry` snapshot),
``spans`` (per-name aggregates) and ``profile`` (deterministic kernel
figures) sections.

Serialization is canonical — keys sorted, NaN/Infinity encoded as the
strings ``"nan"``/``"inf"`` so the output is *valid* JSON — which makes
``to_json`` byte-identical across two runs of the same seed; the chaos
determinism self-check and the metrics test-suite rely on that.

``validate_report`` is the schema gate the CI smoke job runs: it
rejects structurally broken artifacts and any ``nan`` in a latency or
throughput field (an ``"inf"`` p99 is a legal value — it is the
zero-completion sentinel — but ``nan`` always means a collector bug).
"""

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "RunReport",
    "diff_reports",
    "from_jsonable",
    "jsonable",
    "report_from_simulation",
    "validate_report",
]

#: Schema identifier embedded in (and required of) every artifact.
SCHEMA_ID = "repro.obs/run-report/v1"

#: Report kinds the tooling understands.
KINDS = ("accelerator", "experiment", "chaos", "fleet")

#: Figure 8's cycle categories (the only legal breakdown keys).
_CYCLE_KEYS = {"working", "dummy", "idle", "other"}

#: Fields validated as "number, inf allowed, nan forbidden".
_QUANTITY_SECTIONS = ("latency_us", "throughput_top_s")


def _jsonable(value: Any) -> Any:
    """Recursively convert to canonical JSON-encodable values.

    Floats become ``"inf"``/``"-inf"``/``"nan"`` strings when not
    finite (JSON has no encoding for them); numpy scalars collapse to
    Python numbers via their ``item()``.
    """
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        value = value.item()
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return value
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    raise TypeError(f"cannot serialize {type(value).__name__} into a RunReport")


def _from_jsonable(value: Any) -> Any:
    """Inverse of :func:`_jsonable` for the sentinel strings."""
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    if value == "nan":
        return math.nan
    if isinstance(value, dict):
        return {k: _from_jsonable(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_from_jsonable(v) for v in value]
    return value


#: Public names for the canonical encode/decode pair. These define the
#: repo-wide inf/nan/numpy policy; :mod:`repro.exec.canonical` builds
#: every cache key and job result on top of them so artifacts and the
#: execution engine can never disagree about what a float means.
jsonable = _jsonable
from_jsonable = _from_jsonable


@dataclass
class RunReport:
    """One run's complete, exportable measurement record."""

    name: str
    kind: str
    config: Dict[str, Any] = field(default_factory=dict)
    latency_us: Dict[str, Optional[float]] = field(default_factory=dict)
    throughput_top_s: Dict[str, float] = field(default_factory=dict)
    cycle_breakdown: Dict[str, float] = field(default_factory=dict)
    faults: Dict[str, float] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    spans: Dict[str, Dict[str, float]] = field(default_factory=dict)
    profile: Dict[str, float] = field(default_factory=dict)
    schema: str = SCHEMA_ID

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown report kind {self.kind!r}; choose from {KINDS}"
            )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return _jsonable(asdict(self))

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, 2-space indent, no NaN/Infinity
        literals. Byte-identical for identically seeded runs."""
        return json.dumps(
            self.to_dict(), sort_keys=True, indent=2, allow_nan=False
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunReport":
        problems = validate_report(data)
        fatal = [p for p in problems if not p.startswith("nan:")]
        if fatal:
            raise ValueError(
                "invalid run artifact: " + "; ".join(fatal[:5])
            )
        decoded = _from_jsonable(dict(data))
        return cls(
            name=decoded["name"],
            kind=decoded["kind"],
            config=decoded.get("config", {}),
            latency_us=decoded.get("latency_us", {}),
            throughput_top_s=decoded.get("throughput_top_s", {}),
            cycle_breakdown=decoded.get("cycle_breakdown", {}),
            faults=decoded.get("faults", {}),
            metrics=decoded.get("metrics", {}),
            spans=decoded.get("spans", {}),
            profile=decoded.get("profile", {}),
            schema=decoded["schema"],
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    # Comparison
    # ------------------------------------------------------------------

    def flat(self) -> Dict[str, Any]:
        """Dotted-path flattening of every numeric field."""
        out: Dict[str, Any] = {}

        def walk(prefix: str, value: Any) -> None:
            if isinstance(value, Mapping):
                for key in sorted(value):
                    walk(f"{prefix}.{key}" if prefix else str(key), value[key])
            elif isinstance(value, (int, float)) and not isinstance(value, bool):
                out[prefix] = value

        for section in (
            "latency_us", "throughput_top_s", "cycle_breakdown",
            "faults", "metrics", "spans", "profile",
        ):
            walk(section, getattr(self, section))
        return out

    def diff(self, other: "RunReport") -> Dict[str, Tuple[Any, Any]]:
        return diff_reports(self, other)


def diff_reports(
    a: RunReport, b: RunReport, rel_tolerance: float = 0.0
) -> Dict[str, Tuple[Any, Any]]:
    """Fields that differ between two artifacts, as ``path -> (a, b)``.

    Missing fields appear with ``None`` on the absent side. With a
    ``rel_tolerance``, numeric pairs within that relative band are
    treated as equal (useful when diffing across code versions rather
    than checking determinism).
    """
    flat_a, flat_b = a.flat(), b.flat()
    out: Dict[str, Tuple[Any, Any]] = {}
    for path in sorted(set(flat_a) | set(flat_b)):
        va, vb = flat_a.get(path), flat_b.get(path)
        if va is None or vb is None:
            if va != vb:
                out[path] = (va, vb)
            continue
        if va == vb:
            continue
        if math.isnan(va) and math.isnan(vb):
            continue
        if rel_tolerance > 0 and _close(va, vb, rel_tolerance):
            continue
        out[path] = (va, vb)
    return out


def _close(a: float, b: float, rel: float) -> bool:
    if math.isinf(a) or math.isinf(b) or math.isnan(a) or math.isnan(b):
        return a == b
    scale = max(abs(a), abs(b))
    return scale == 0 or abs(a - b) <= rel * scale


# ----------------------------------------------------------------------
# Schema validation
# ----------------------------------------------------------------------


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _check_quantity(
    problems: List[str], section: str, key: str, value: Any
) -> None:
    """latency/throughput fields: number or the ``"inf"`` sentinel or
    null; any nan is a hard failure (the CI smoke job's contract)."""
    if value is None or value in ("inf", "-inf"):
        return
    if value == "nan" or (_is_number(value) and math.isnan(value)):
        problems.append(f"nan: {section}.{key} is NaN")
        return
    if not _is_number(value):
        problems.append(
            f"{section}.{key} must be a number, null or 'inf', "
            f"got {value!r}"
        )


def validate_report(data: Mapping[str, Any]) -> List[str]:
    """Validate one decoded JSON artifact against the v1 schema.

    Returns a list of problem strings (empty = valid). NaN problems are
    prefixed ``nan:`` so callers can distinguish structural breakage
    from poisoned measurements.
    """
    problems: List[str] = []
    if not isinstance(data, Mapping):
        return ["artifact must be a JSON object"]
    if data.get("schema") != SCHEMA_ID:
        problems.append(
            f"schema must be {SCHEMA_ID!r}, got {data.get('schema')!r}"
        )
    if not isinstance(data.get("name"), str) or not data.get("name"):
        problems.append("name must be a non-empty string")
    if data.get("kind") not in KINDS:
        problems.append(f"kind must be one of {KINDS}, got {data.get('kind')!r}")
    for section in (
        "config", "latency_us", "throughput_top_s", "cycle_breakdown",
        "faults", "metrics", "spans", "profile",
    ):
        if section in data and not isinstance(data[section], Mapping):
            problems.append(f"{section} must be an object")

    for section in _QUANTITY_SECTIONS:
        values = data.get(section, {})
        if isinstance(values, Mapping):
            for key, value in values.items():
                _check_quantity(problems, section, key, value)

    breakdown = data.get("cycle_breakdown", {})
    if isinstance(breakdown, Mapping) and breakdown:
        unknown = set(breakdown) - _CYCLE_KEYS
        if unknown:
            problems.append(
                f"cycle_breakdown has unknown categories {sorted(unknown)}"
            )
        for key, value in breakdown.items():
            if not _is_number(value) or math.isnan(value):
                problems.append(f"cycle_breakdown.{key} must be a finite number")
            elif not -1e-9 <= value <= 1 + 1e-9:
                problems.append(
                    f"cycle_breakdown.{key}={value} outside [0, 1]"
                )

    faults = data.get("faults", {})
    if isinstance(faults, Mapping):
        for key, value in faults.items():
            if not _is_number(value) or math.isnan(value) or value < 0:
                problems.append(
                    f"faults.{key} must be a non-negative number, got {value!r}"
                )
    return problems


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------


def report_from_simulation(
    name: str,
    sim_report: Any,
    *,
    kind: str = "accelerator",
    p50_latency_us: Optional[float] = None,
    config: Optional[Dict[str, Any]] = None,
    metrics: Optional[Dict[str, Any]] = None,
    spans: Optional[Dict[str, Dict[str, float]]] = None,
    profile: Optional[Dict[str, float]] = None,
) -> RunReport:
    """Build an artifact from a ``SimulationReport``-shaped object.

    Duck-typed so :mod:`repro.obs` never imports :mod:`repro.core`
    (the dependency runs the other way). A ``nan`` latency — the
    no-traffic "unmeasured" sentinel — becomes JSON ``null`` so the
    artifact stays schema-valid; ``inf`` (offered traffic, zero
    completions) is preserved.
    """
    full_config = {
        "config": sim_report.config_name,
        "load": sim_report.load,
        "duration_cycles": sim_report.duration_cycles,
        "frequency_hz": sim_report.frequency_hz,
    }
    if config:
        full_config.update(config)
    if p50_latency_us is None:
        p50_latency_us = getattr(sim_report, "p50_latency_us", None)

    def _measured(value: Optional[float]) -> Optional[float]:
        if value is None or math.isnan(value):
            return None
        return value

    faults = sim_report.faults.as_dict()
    return RunReport(
        name=name,
        kind=kind,
        config=full_config,
        latency_us={
            "p50": _measured(p50_latency_us),
            "p99": _measured(sim_report.p99_latency_us),
            "mean": _measured(sim_report.mean_latency_us),
            "max": _measured(sim_report.max_latency_us),
        },
        throughput_top_s={
            "inference": sim_report.inference_top_s,
            "training": sim_report.training_top_s,
        },
        cycle_breakdown=dict(sim_report.cycle_breakdown),
        faults={key: float(faults[key]) for key in sorted(faults)},
        metrics=metrics or {},
        spans=spans or {},
        profile=profile or {},
    )
