"""Bounded-memory streaming quantile sketch.

A DDSketch-style log-bucketed histogram: values map to geometric
buckets ``(gamma**(i-1), gamma**i]`` with ``gamma`` chosen from the
requested relative accuracy ``a`` as ``gamma = (1+a)/(1-a)``. The
mid-point estimate of a bucket is then within a factor ``1±a`` of every
value the bucket holds, so any quantile estimate carries a guaranteed
relative error ≤ ``a`` — while memory stays bounded by the number of
occupied buckets (capped: the lowest buckets collapse first, which
only ever degrades the accuracy of the *smallest* values).

Latency tails are exactly what this trades well for: p50/p99/p999 of
millions of samples in a few hundred integers, with a deterministic
answer — no sampling, no randomness, and ``+inf`` (the zero-completion
sentinel of :meth:`repro.core.equinox.EquinoxAccelerator._report`)
counted in its own bucket rather than poisoning interpolation.
"""

import math
from typing import Dict, Iterable, List, Optional

__all__ = ["QuantileSketch"]


def _grow_expansion(partials: List[float], x: float) -> None:
    """Add ``x`` into a Shewchuk expansion of non-overlapping partials.

    The expansion represents the *exact* real sum of every term ever
    added (each two-sum step is error-free), so two sketches that
    observed the same multiset of samples carry the same exact sum no
    matter how the observations were grouped or merged — the property
    the sharded executor's window merge relies on for byte-identical
    artifacts. Same algorithm as ``math.fsum``, kept incremental.
    """
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]

#: Default guaranteed relative accuracy of quantile estimates.
DEFAULT_RELATIVE_ACCURACY = 0.005

#: Default cap on occupied buckets (the lowest collapse first). At the
#: default accuracy one bucket spans a ~1% value ratio, so 4096 buckets
#: cover ~17 orders of magnitude — far beyond any latency range here.
DEFAULT_MAX_BUCKETS = 4096


class QuantileSketch:
    """Streaming quantile estimator over non-negative samples.

    Args:
        relative_accuracy: Guaranteed bound on the relative error of
            :meth:`quantile` for finite positive samples.
        max_buckets: Memory bound; lowest buckets collapse upward when
            exceeded.
    """

    __slots__ = (
        "relative_accuracy", "max_buckets", "_gamma", "_log_gamma",
        "_buckets", "_zero_count", "_inf_count", "_count", "_partials",
        "_min", "_max",
    )

    def __init__(
        self,
        relative_accuracy: float = DEFAULT_RELATIVE_ACCURACY,
        max_buckets: int = DEFAULT_MAX_BUCKETS,
    ):
        if not 0 < relative_accuracy < 1:
            raise ValueError(
                f"relative accuracy must be in (0, 1), got {relative_accuracy}"
            )
        if max_buckets < 2:
            raise ValueError(f"need at least 2 buckets, got {max_buckets}")
        self.relative_accuracy = relative_accuracy
        self.max_buckets = max_buckets
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self._buckets: Dict[int, int] = {}
        self._zero_count = 0
        self._inf_count = 0
        self._count = 0
        #: Exact running sum as a Shewchuk expansion (finite terms only;
        #: infinities are tracked by ``_inf_count``). Exactness makes
        #: ``sum`` independent of observation grouping and merge order.
        self._partials: List[float] = []
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def observe(self, value: float, count: int = 1) -> None:
        """Record ``value`` (``count`` times). Accepts ``+inf``; rejects
        negatives and NaN (a NaN sample is always an upstream bug)."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot observe NaN")
        if value < 0:
            raise ValueError(f"cannot observe negative value {value}")
        self._count += count
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        if math.isinf(value):
            self._inf_count += count
            return
        _grow_expansion(self._partials, value * count)
        if value == 0.0:
            self._zero_count += count
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self._buckets[index] = self._buckets.get(index, 0) + count
        if len(self._buckets) > self.max_buckets:
            self._collapse_lowest()

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    def merge(self, other: "QuantileSketch") -> None:
        """Accumulate another sketch (bucket layouts must match)."""
        if other.relative_accuracy != self.relative_accuracy:
            raise ValueError(
                "cannot merge sketches with different accuracies "
                f"({self.relative_accuracy} vs {other.relative_accuracy})"
            )
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self._zero_count += other._zero_count
        self._inf_count += other._inf_count
        self._count += other._count
        # Folding the other expansion term-by-term keeps the merged sum
        # exact, so merging per-window sketches in any grouping equals
        # the serial cumulative sketch bit-for-bit.
        for partial in other._partials:
            _grow_expansion(self._partials, partial)
        for bound in (other._min, other._max):
            if bound is not None:
                self._min = bound if self._min is None else min(self._min, bound)
                self._max = bound if self._max is None else max(self._max, bound)
        while len(self._buckets) > self.max_buckets:
            self._collapse_lowest()

    def _collapse_lowest(self) -> None:
        """Fold the lowest bucket into its neighbour (bounded memory)."""
        lowest, second = sorted(self._buckets)[:2]
        self._buckets[second] += self._buckets.pop(lowest)

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def inf_count(self) -> int:
        return self._inf_count

    @property
    def sum(self) -> float:
        if self._inf_count:
            return math.inf
        return math.fsum(self._partials)

    @property
    def min(self) -> float:
        if self._min is None:
            raise ValueError("no samples observed")
        return self._min

    @property
    def max(self) -> float:
        if self._max is None:
            raise ValueError("no samples observed")
        return self._max

    def mean(self) -> float:
        if self._count == 0:
            raise ValueError("no samples observed")
        return self.sum / self._count

    def quantile(self, q: float) -> float:
        """The ``q``-th percentile (0-100), nearest-rank over buckets.

        Finite positive samples come back within ``relative_accuracy``
        of the exact order statistic; a rank landing in the ``+inf``
        tail returns ``inf`` deterministically.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self._count == 0:
            raise ValueError("no samples observed")
        rank = max(1, math.ceil(q / 100.0 * self._count))
        if rank <= self._zero_count:
            return 0.0
        seen = self._zero_count
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if rank <= seen:
                # Mid-point estimate of (gamma**(i-1), gamma**i].
                return 2.0 * self._gamma ** index / (self._gamma + 1.0)
        return math.inf  # rank lands in the infinite tail

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_state(self) -> Dict[str, object]:
        """Full, lossless, JSON-able dump of the sketch.

        Unlike :meth:`to_dict` (a summary for artifacts), the state
        carries every bucket, so ``from_state`` reconstructs a sketch
        that answers every query identically. This is how parallel
        workers ship their latency observations back to the parent
        process for deterministic merging.
        """
        return {
            "relative_accuracy": self.relative_accuracy,
            "max_buckets": self.max_buckets,
            "buckets": {
                str(index): self._buckets[index]
                for index in sorted(self._buckets)
            },
            "zero_count": self._zero_count,
            "inf_count": self._inf_count,
            "count": self._count,
            "sum": self.sum,
            # The exact expansion itself: "sum" above is the rounded
            # summary, the partials are what merge losslessly.
            "partials": list(self._partials),
            "min": self._min,
            "max": self._max,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "QuantileSketch":
        """Inverse of :meth:`to_state`."""
        sketch = cls(
            relative_accuracy=float(state["relative_accuracy"]),  # type: ignore[arg-type]
            max_buckets=int(state["max_buckets"]),  # type: ignore[arg-type]
        )
        sketch._buckets = {
            int(index): int(count)
            for index, count in state["buckets"].items()  # type: ignore[union-attr]
        }
        sketch._zero_count = int(state["zero_count"])  # type: ignore[arg-type]
        sketch._inf_count = int(state["inf_count"])  # type: ignore[arg-type]
        sketch._count = int(state["count"])  # type: ignore[arg-type]
        partials = state.get("partials")
        if partials is None:
            # Pre-partials snapshot: the rounded sum is the best
            # expansion available (exact for any sum that fits one
            # float, which covers every such legacy artifact in-repo).
            total = float(state["sum"])  # type: ignore[arg-type]
            partials = [total] if math.isfinite(total) and total else []
        sketch._partials = [float(p) for p in partials]
        for bound in ("min", "max"):
            value = state[bound]
            setattr(
                sketch, f"_{bound}",
                None if value is None else float(value),  # type: ignore[arg-type]
            )
        return sketch

    def merge_state(self, state: Dict[str, object]) -> None:
        """Merge a :meth:`to_state` dump (worker → parent hand-off)."""
        self.merge(QuantileSketch.from_state(state))

    def to_dict(self) -> Dict[str, float]:
        """Deterministic summary (embedded in run artifacts)."""
        out: Dict[str, float] = {"count": float(self._count)}
        if self._count == 0:
            return out
        out.update(
            sum=self.sum,
            min=self.min,
            max=self.max,
            mean=self.mean(),
            p50=self.quantile(50.0),
            p99=self.quantile(99.0),
            p999=self.quantile(99.9),
        )
        if self._inf_count:
            out["inf_count"] = float(self._inf_count)
        return out
