"""Hierarchical span tracing layered on :class:`repro.sim.trace.Tracer`.

A span is a named interval of simulated time with an optional parent —
the request lifecycle nests as::

    request                       (arrival -> completion)
      request.queue               (arrival -> batch formation)
      request.execute             (batch dispatch -> tile completion)

and the training lifecycle as::

    train.iteration               (iteration start -> gradient done)
      train.prefetch              (DRAM stream issue -> staged)
      train.step                  (step issue -> SIMD tail done)
      train.aggregate             (parameter-sync transfer)

Spans come in two flavours: *live* (``begin``/``end`` across simulator
callbacks — there is no call stack to lean on in an event-driven
program, so the handle is explicit) and *retroactive* (``record`` with
both cycles, used by components that already stamp lifecycle cycles on
their request records).

Aggregation is always on and bounded: per-name count/total/max plus a
duration histogram in the attached :class:`MetricsRegistry` under
``span.<name>.cycles``. Full per-span records are optional
(``keep_records=True``) and stored through the existing
:class:`~repro.sim.trace.Tracer`, so the trace tooling (filter,
timeline) works on spans unchanged.
"""

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.sim.engine import Simulator, SnapshotError
from repro.sim.trace import Tracer

__all__ = ["Span", "SpanTracer"]

#: Tracer component under which span records are emitted.
SPAN_COMPONENT = "span"


@dataclass
class Span:
    """One named interval of simulated time."""

    span_id: int
    name: str
    start_cycle: float
    parent_id: Optional[int] = None
    end_cycle: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_cycles(self) -> float:
        if self.end_cycle is None:
            raise ValueError(f"span {self.name}#{self.span_id} still open")
        return self.end_cycle - self.start_cycle


class SpanTracer:
    """Collects spans against one simulator clock.

    Args:
        sim: The clock spans are stamped from.
        registry: Duration histograms land here as
            ``span.<name>.cycles`` (optional).
        tracer: Storage for full span records; defaults to an internal
            :class:`Tracer`. Only used when ``keep_records`` is True.
        keep_records: Retain every finished span as a trace record.
            Off by default so long runs stay bounded-memory — the
            per-name aggregates and histograms are always maintained.
    """

    def __init__(
        self,
        sim: Simulator,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        keep_records: bool = False,
    ):
        self.sim = sim
        self.registry = registry
        self.keep_records = keep_records
        self.tracer = tracer if tracer is not None else Tracer(enabled=keep_records)
        # An explicit cursor (not itertools.count) so a snapshot can
        # record and a restore can replay the id sequence.
        self._next_id = 0
        self._open: Dict[int, Span] = {}
        #: name -> [count, total_cycles, max_cycles]
        self._aggregate: Dict[str, list] = {}

    # ------------------------------------------------------------------
    # Live spans
    # ------------------------------------------------------------------

    def _new_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def begin(
        self, name: str, parent: Optional[Span] = None, **attrs: Any
    ) -> Span:
        span = Span(
            span_id=self._new_id(),
            name=name,
            start_cycle=self.sim.now,
            parent_id=parent.span_id if parent is not None else None,
            attrs=dict(attrs),
        )
        self._open[span.span_id] = span
        return span

    def end(self, span: Span, **attrs: Any) -> Span:
        if span.end_cycle is not None:
            raise ValueError(f"span {span.name}#{span.span_id} already ended")
        span.end_cycle = self.sim.now
        span.attrs.update(attrs)
        self._open.pop(span.span_id, None)
        self._finish(span)
        return span

    # ------------------------------------------------------------------
    # Retroactive spans
    # ------------------------------------------------------------------

    def record(
        self,
        name: str,
        start_cycle: float,
        end_cycle: float,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Record a span whose endpoints were stamped elsewhere (the
        dispatcher's request records already carry lifecycle cycles)."""
        if end_cycle < start_cycle:
            raise ValueError(
                f"span {name!r} ends before it starts "
                f"({end_cycle} < {start_cycle})"
            )
        span = Span(
            span_id=self._new_id(),
            name=name,
            start_cycle=start_cycle,
            parent_id=parent.span_id if parent is not None else None,
            end_cycle=end_cycle,
            attrs=dict(attrs),
        )
        self._finish(span)
        return span

    # ------------------------------------------------------------------
    # Internals + export
    # ------------------------------------------------------------------

    def _finish(self, span: Span) -> None:
        duration = span.duration_cycles
        entry = self._aggregate.get(span.name)
        if entry is None:
            self._aggregate[span.name] = [1, duration, duration]
        else:
            entry[0] += 1
            entry[1] += duration
            entry[2] = max(entry[2], duration)
        if self.registry is not None:
            self.registry.histogram(
                f"span.{span.name}.cycles"
            ).observe(duration)
        if self.keep_records:
            self.tracer.emit(
                span.start_cycle,
                SPAN_COMPONENT,
                span.name,
                payload={
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "end_cycle": span.end_cycle,
                    **span.attrs,
                },
            )

    @property
    def open_spans(self) -> int:
        return len(self._open)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Deterministic per-name aggregate for run artifacts."""
        out: Dict[str, Dict[str, float]] = {}
        for name in sorted(self._aggregate):
            count, total, peak = self._aggregate[name]
            out[name] = {
                "count": float(count),
                "total_cycles": total,
                "mean_cycles": total / count,
                "max_cycles": peak,
            }
        return out

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract): the id cursor and the
        per-name aggregates.

        An open span holds a live handle some component will ``end``
        later, and ``keep_records`` mode holds full per-span records in
        the tracer — both refuse, because restoring either faithfully
        would require serializing object identity. Snapshot between
        requests with aggregation-only tracing (the default).
        """
        if self._open:
            raise SnapshotError(
                f"{len(self._open)} span(s) still open; snapshot at a "
                "quiescence point"
            )
        if self.keep_records:
            raise SnapshotError(
                "span tracer with keep_records=True cannot be "
                "snapshotted (full per-span records are a debugging "
                "mode, not resumable state)"
            )
        return {
            "next_id": self._next_id,
            "aggregate": {
                name: list(entry)
                for name, entry in sorted(self._aggregate.items())
            },
        }

    def from_state(self, state: Dict[str, Any]) -> None:
        self._next_id = int(state["next_id"])
        self._aggregate = {
            str(name): [int(entry[0]), float(entry[1]), float(entry[2])]
            for name, entry in state["aggregate"].items()
        }
