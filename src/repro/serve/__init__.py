"""Multi-tenant SLO-tiered serving over a simulated Equinox chip fleet.

The paper's single-chip claim — inference p99 SLOs hold while idle
cycles train for free — only matters operationally if it survives
multi-tenancy: N tenants in distinct SLO tiers sharing a fleet of
chips, flash crowds in one tier, chips dying mid-run. This package
layers that serving fabric over the cycle-calibrated chip model:

* **service classes** (:mod:`repro.serve.classes`) — SLO tiers
  (latency-critical / best-effort / batch-training) expressed in
  chip-relative units and calibrated into per-tenant admission
  budgets, queue deadlines, and fair-share weights;
* **fair-share batching** (:class:`repro.core.dispatcher.
  FairShareDispatcher`) — weighted deficit round-robin over per-tenant
  bounded queues, so a saturating tenant sheds its own traffic instead
  of starving another tier's p99;
* **fleet routing** (:mod:`repro.serve.router`) — least-outstanding-
  work placement with power-of-two-choices over seeded substreams,
  service-affinity arcs, and chip-kill failover that drains a dead
  chip's requests back through admission on the survivors;
* **the scenario matrix** (:mod:`repro.serve.scenarios`, CLI
  ``python -m repro serve``) — sustained RPS and p50/p99/p999 per SLO
  class per fleet size, emitted as the schema-validated
  ``repro.serve/fleet-report/v1`` artifact whose every point carries a
  double-run determinism verdict.

Everything here draws randomness only through seeded, crc32-keyed
substreams (lint rule EQX310 enforces this), so reports are
byte-identical across runs and ``--jobs`` settings.
"""

from repro.serve.classes import (
    BATCH_TRAINING,
    BEST_EFFORT,
    LATENCY_CRITICAL,
    ServiceClass,
    TenantSpec,
    register_service_class,
    registered_service_classes,
    service_class,
)
from repro.serve.report import SCHEMA_ID, FleetReport, validate_fleet_report
from repro.serve.router import ChipServer, FleetRouter
from repro.serve.scenarios import default_tenants, render, run, run_scenario

__all__ = [
    "BATCH_TRAINING",
    "BEST_EFFORT",
    "LATENCY_CRITICAL",
    "SCHEMA_ID",
    "ChipServer",
    "FleetReport",
    "FleetRouter",
    "ServiceClass",
    "TenantSpec",
    "default_tenants",
    "register_service_class",
    "registered_service_classes",
    "render",
    "run",
    "run_scenario",
    "service_class",
    "validate_fleet_report",
]
