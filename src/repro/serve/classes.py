"""SLO service classes and tenant specs for multi-tenant serving.

Equinox's hardware priority scheduler keeps one request context per
installed service (paper §3.2, :mod:`repro.core.contexts`); the fleet
layer generalizes that to N tenants, each bound to a *service class*
that fixes its latency objective and its slice of every chip's
front-end:

- ``latency-critical`` — interactive inference; tight p99 SLO (the
  paper's 10× service-time objective, :data:`repro.workload.metrics.
  SLO_MULTIPLE`), large fair-share weight, short queue deadline.
- ``best-effort`` — throughput inference; loose SLO, small weight,
  tightly bounded admission queue so a flash crowd sheds rather than
  queues.
- ``batch-training`` — the paper's free-training service; effectively
  unbounded latency tolerance, minimal weight, deep queue.

A :class:`ServiceClass` is *relative* config: budgets are expressed as
multiples of one batch service time and of the batch size, so the same
class calibrates to any chip model. :meth:`ServiceClass.share` and
:meth:`ServiceClass.slo_cycles` turn a class into the absolute
:class:`repro.core.dispatcher.TenantShare` and SLO bound once the chip
is probed.
"""

from dataclasses import asdict, dataclass
from math import ceil
from typing import Any, Dict, Mapping, Optional

from repro.core.dispatcher import TenantShare
from repro.workload.metrics import SLO_MULTIPLE

#: Request-context names a service class maps onto (paper §3.2): the
#: datapath is oblivious to tenancy; only the controller-side context
#: differs, and only training uses the training context.
CONTEXT_INFERENCE = "inference"
CONTEXT_TRAINING = "training"


@dataclass(frozen=True)
class ServiceClass:
    """One SLO tier, in chip-relative units.

    Attributes:
        name: Registry key (``"latency-critical"`` etc.).
        context: Hardware request context this class occupies
            (:data:`CONTEXT_INFERENCE` or :data:`CONTEXT_TRAINING`).
        slo_multiple: p99 latency objective as a multiple of one batch
            service time.
        weight: Fair-share weight for WDRR batch formation.
        queue_depth_batches: Per-tenant admission bound, in batches
            (``ceil(queue_depth_batches * batch_slots)`` requests).
        deadline_multiple: Per-request queue deadline as a multiple of
            one batch service time; ``None`` = requests never time out
            of the queue.
    """

    name: str
    context: str = CONTEXT_INFERENCE
    slo_multiple: float = SLO_MULTIPLE
    weight: float = 1.0
    queue_depth_batches: float = 2.0
    deadline_multiple: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("service class name must be non-empty")
        if self.context not in (CONTEXT_INFERENCE, CONTEXT_TRAINING):
            raise ValueError(f"unknown context {self.context!r}")
        if self.slo_multiple <= 0:
            raise ValueError(f"slo_multiple must be positive, got {self.slo_multiple}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        if self.queue_depth_batches <= 0:
            raise ValueError(
                f"queue_depth_batches must be positive, got {self.queue_depth_batches}"
            )
        if self.deadline_multiple is not None and self.deadline_multiple <= 0:
            raise ValueError(
                f"deadline_multiple must be positive, got {self.deadline_multiple}"
            )

    def slo_cycles(self, batch_service_cycles: float) -> float:
        """Absolute p99 objective for a chip with this service time."""
        return self.slo_multiple * batch_service_cycles

    def share(
        self, tenant: str, batch_slots: int, batch_service_cycles: float
    ) -> TenantShare:
        """Calibrate this class into one tenant's dispatcher share."""
        deadline = (
            None
            if self.deadline_multiple is None
            else self.deadline_multiple * batch_service_cycles
        )
        return TenantShare(
            name=tenant,
            weight=self.weight,
            max_queue_requests=ceil(self.queue_depth_batches * batch_slots),
            deadline_cycles=deadline,
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServiceClass":
        return cls(**dict(data))


#: The built-in tiers. Weights 8/2/1: with all three backlogged, a
#: latency-critical tenant takes 8/11 of every batch's slots — enough
#: that its queueing delay stays within one service time even while a
#: best-effort tenant saturates the chip (the starvation regression
#: test pins this).
LATENCY_CRITICAL = ServiceClass(
    name="latency-critical",
    context=CONTEXT_INFERENCE,
    slo_multiple=SLO_MULTIPLE,
    weight=8.0,
    queue_depth_batches=4.0,
    deadline_multiple=6.0,
)

BEST_EFFORT = ServiceClass(
    name="best-effort",
    context=CONTEXT_INFERENCE,
    slo_multiple=8.0 * SLO_MULTIPLE,
    weight=2.0,
    queue_depth_batches=2.0,
    deadline_multiple=None,
)

BATCH_TRAINING = ServiceClass(
    name="batch-training",
    context=CONTEXT_TRAINING,
    slo_multiple=40.0 * SLO_MULTIPLE,
    weight=1.0,
    queue_depth_batches=8.0,
    deadline_multiple=None,
)

_REGISTRY: Dict[str, ServiceClass] = {
    cls.name: cls for cls in (LATENCY_CRITICAL, BEST_EFFORT, BATCH_TRAINING)
}


def service_class(name: str) -> ServiceClass:
    """Look up a registered service class by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown service class {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def register_service_class(cls: ServiceClass, replace: bool = False) -> None:
    """Add a custom tier to the registry (``replace`` guards rebinds)."""
    if not replace and cls.name in _REGISTRY:
        raise ValueError(f"service class {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls


def registered_service_classes() -> Dict[str, ServiceClass]:
    """Snapshot of the registry (name → class), insertion-ordered."""
    return dict(_REGISTRY)


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the fleet: identity, tier, and offered load.

    Attributes:
        name: Tenant identity; requests carry it end to end.
        service_class: Registered :class:`ServiceClass` name.
        load_fraction: Offered load as a fraction of one chip's
            capacity **per chip** — the tenant's arrival rate scales
            with fleet size, so the RPS-vs-fleet-size curve measures
            scaling at constant per-chip utilization.
    """

    name: str
    service_class: str
    load_fraction: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.load_fraction <= 0:
            raise ValueError(
                f"load_fraction must be positive, got {self.load_fraction}"
            )
        service_class(self.service_class)  # validate eagerly

    @property
    def slo(self) -> ServiceClass:
        return service_class(self.service_class)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TenantSpec":
        return cls(**dict(data))
