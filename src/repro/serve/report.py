"""The ``repro.serve/fleet-report/v1`` artifact.

One fleet report captures a whole tenant-mix scenario matrix: for each
fleet size, sustained RPS and p50/p99/p999 latency per SLO class, the
chip-kill record, and the per-class accounting identity (every placed
request is completed, shed, timed out, or dropped in failover —
nothing vanishes). Encoding reuses the repo-wide canonical JSON policy
(:func:`repro.obs.report.jsonable`): sorted keys, 2-space indent,
inf/nan as sentinel strings, so identically seeded runs emit
byte-identical artifacts regardless of ``--jobs``.
"""

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping

from repro.obs.report import from_jsonable, jsonable

#: Schema identifier embedded in (and required of) every artifact.
SCHEMA_ID = "repro.serve/fleet-report/v1"

#: Required per-class measurement keys in every curve point.
_CLASS_KEYS = {
    "tenants",
    "submitted",
    "completed",
    "shed",
    "timed_out",
    "failover_dropped",
    "unroutable",
    "sustained_rps",
    "p50_cycles",
    "p99_cycles",
    "p999_cycles",
    "slo_cycles",
    "slo_met",
}

#: Required totals keys in every curve point.
_TOTAL_KEYS = {
    "submitted",
    "completed",
    "shed",
    "timed_out",
    "failover_redispatched",
    "failover_dropped",
    "unroutable",
    "chips_killed",
}

_COUNT_KEYS = (
    "submitted",
    "completed",
    "shed",
    "timed_out",
    "failover_dropped",
    "unroutable",
)


@dataclass
class FleetReport:
    """One serving scenario matrix, exportable and validated."""

    seed: int
    tenants: List[Dict[str, Any]] = field(default_factory=list)
    service_classes: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    calibration: Dict[str, Any] = field(default_factory=dict)
    fault_plan: Any = None
    curve: List[Dict[str, Any]] = field(default_factory=list)
    schema: str = SCHEMA_ID

    @property
    def reproducible(self) -> bool:
        """Every curve point passed its double-run determinism check."""
        return all(point.get("reproducible") for point in self.curve)

    def to_dict(self) -> Dict[str, Any]:
        return jsonable(
            {
                "schema": self.schema,
                "seed": self.seed,
                "tenants": self.tenants,
                "service_classes": self.service_classes,
                "calibration": self.calibration,
                "fault_plan": self.fault_plan,
                "curve": self.curve,
            }
        )

    def to_json(self) -> str:
        """Canonical JSON — byte-identical for identically seeded runs."""
        return json.dumps(
            self.to_dict(), sort_keys=True, indent=2, allow_nan=False
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetReport":
        problems = validate_fleet_report(data)
        if problems:
            raise ValueError(
                "invalid fleet report: " + "; ".join(problems[:5])
            )
        decoded = from_jsonable(dict(data))
        return cls(
            seed=decoded["seed"],
            tenants=decoded["tenants"],
            service_classes=decoded["service_classes"],
            calibration=decoded["calibration"],
            fault_plan=decoded.get("fault_plan"),
            curve=decoded["curve"],
            schema=decoded["schema"],
        )


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_fleet_report(data: Mapping[str, Any]) -> List[str]:
    """Structural + sanity validation; returns problems (empty = valid).

    Beyond shape, this enforces the two properties the artifact exists
    to witness: no NaN in any latency column, and the per-class
    accounting identity ``submitted == completed + shed + timed_out +
    failover_dropped`` (the invariant the dispatcher retry-leak bug
    used to violate).
    """
    problems: List[str] = []
    if data.get("schema") != SCHEMA_ID:
        problems.append(
            f"schema must be {SCHEMA_ID!r}, got {data.get('schema')!r}"
        )
    for key in ("seed", "tenants", "service_classes", "calibration", "curve"):
        if key not in data:
            problems.append(f"missing top-level key {key!r}")
    curve = data.get("curve")
    if not isinstance(curve, list) or not curve:
        problems.append("curve must be a non-empty list")
        return problems
    previous_size = 0
    for position, point in enumerate(curve):
        where = f"curve[{position}]"
        if not isinstance(point, Mapping):
            problems.append(f"{where}: not an object")
            continue
        size = point.get("fleet_size")
        if not isinstance(size, int) or size < 1:
            problems.append(f"{where}: fleet_size must be a positive int")
            continue
        if size <= previous_size:
            problems.append(
                f"{where}: fleet sizes must be strictly increasing"
            )
        previous_size = size
        if not isinstance(point.get("reproducible"), bool):
            problems.append(f"{where}: missing reproducible flag")
        duration = from_jsonable(point.get("duration_cycles"))
        if not _is_number(duration) or not duration > 0:
            problems.append(f"{where}: duration_cycles must be positive")
        totals = point.get("totals")
        if not isinstance(totals, Mapping) or not _TOTAL_KEYS <= set(totals):
            problems.append(
                f"{where}: totals must carry keys {sorted(_TOTAL_KEYS)}"
            )
        classes = point.get("classes")
        if not isinstance(classes, Mapping) or not classes:
            problems.append(f"{where}: classes must be a non-empty object")
            continue
        for class_name, entry in classes.items():
            label = f"{where}.classes[{class_name!r}]"
            if not isinstance(entry, Mapping):
                problems.append(f"{label}: not an object")
                continue
            missing = _CLASS_KEYS - set(entry)
            if missing:
                problems.append(f"{label}: missing keys {sorted(missing)}")
                continue
            for key in _COUNT_KEYS:
                value = entry[key]
                if not isinstance(value, int) or value < 0:
                    problems.append(
                        f"{label}: {key} must be a non-negative int"
                    )
            identity = (
                entry["completed"]
                + entry["shed"]
                + entry["timed_out"]
                + entry["failover_dropped"]
            )
            if (
                isinstance(entry["submitted"], int)
                and identity != entry["submitted"]
            ):
                problems.append(
                    f"{label}: accounting identity broken — submitted "
                    f"{entry['submitted']} != completed + shed + timed_out "
                    f"+ failover_dropped = {identity}"
                )
            for key in ("p50_cycles", "p99_cycles", "p999_cycles"):
                value = from_jsonable(entry[key])
                if value is None:
                    continue  # no completions in this class
                if not _is_number(value) or math.isnan(value):
                    problems.append(f"{label}: {key} must be non-nan")
            slo = from_jsonable(entry["slo_cycles"])
            if not _is_number(slo) or not slo > 0 or math.isnan(slo):
                problems.append(f"{label}: slo_cycles must be positive")
            p99 = from_jsonable(entry["p99_cycles"])
            if (
                isinstance(entry["slo_met"], bool)
                and _is_number(p99)
                and _is_number(slo)
                and entry["slo_met"] != (p99 <= slo)
            ):
                problems.append(
                    f"{label}: slo_met flag contradicts p99 vs slo_cycles"
                )
            rps = from_jsonable(entry["sustained_rps"])
            if not _is_number(rps) or rps < 0 or math.isnan(rps):
                problems.append(
                    f"{label}: sustained_rps must be a non-negative number"
                )
    return problems
