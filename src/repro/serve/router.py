"""Chip-fleet request router: load-aware placement over N chips.

The fleet layer runs many simulated Equinox chips on one shared
:class:`repro.sim.engine.Simulator`. Each :class:`ChipServer` is a
queueing model of one chip's serving front end, calibrated from the
cycle-accurate single-chip model: its batch size is the chip's
``batch_slots`` and its service time one ``batch_service_cycles`` (the
numbers :class:`repro.core.equinox.EquinoxAccelerator` probes), so a
100-chip fleet scenario stays tractable while every latency is in real
chip cycles.

Placement is least-outstanding-work with power-of-two-choices: two
distinct alive candidates are sampled from the tenant's affinity set
(falling back to the whole alive fleet) and the one with less
outstanding work wins, ties to the lower chip id. The sampler draws
from a dedicated crc32-keyed substream — the same discipline
:meth:`repro.faults.plan.FaultPlan.rng` uses — so the placement
sequence is a pure function of the seed (and lint rule EQX310 forbids
anything else in this package).

Chip failure composes with :class:`repro.faults.plan.FaultPlan` worker
specs: each crashed worker id becomes a chip-kill event at a
plan-seeded cycle. A killed chip cancels its in-service batches and
its queued requests are *drained back through admission* on surviving
chips — re-placed, re-bounded, re-deadlined; their latency clocks keep
running from the original arrival, so failover cost shows up in the
tail percentiles where it belongs.
"""

import zlib
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.batching import PullBatching
from repro.core.dispatcher import FairShareDispatcher, TenantShare
from repro.core.requests import Batch, InferenceRequest
from repro.faults.admission import AdmissionControl
from repro.faults.counters import FaultCounters
from repro.faults.plan import FaultPlan
from repro.obs.sketch import QuantileSketch
from repro.sim.engine import Event, Simulator, SnapshotError
from repro.state.protocol import restore_rng, rng_state

#: Substream labels (crc32-keyed, matching ``FaultPlan.rng``).
ROUTER_SUBSTREAM = "serve.router"
CHIP_KILL_SUBSTREAM = "serve.chip_kill"

#: Kill times land in this fraction band of the scenario horizon, so a
#: dead chip always has live traffic to fail over (not a cold start or
#: an already-drained tail).
KILL_WINDOW = (0.2, 0.6)


class ChipServer:
    """One chip's serving front end: fair-share dispatcher + fixed
    service-time batch engine with ``max_inflight`` overlap.

    Formation is demand-driven (:class:`PullBatching`): a batch forms
    exactly when a service slot frees up, so queued requests stay in
    the bounded per-tenant admission queues until the datapath can
    take them.
    """

    def __init__(
        self,
        sim: Simulator,
        chip_id: int,
        shares: Sequence[TenantShare],
        batch_service_cycles: float,
        batch_slots: int,
        admission: Optional[AdmissionControl] = None,
        counters: Optional[FaultCounters] = None,
        max_inflight: int = 2,
        slowdown: float = 1.0,
        on_complete: Optional[Callable[["ChipServer", Batch], None]] = None,
    ):
        if batch_service_cycles <= 0:
            raise ValueError("batch service time must be positive")
        if max_inflight < 1:
            raise ValueError("need at least one batch in flight")
        if slowdown < 1.0:
            raise ValueError(f"slowdown must be >= 1, got {slowdown}")
        self.sim = sim
        self.chip_id = chip_id
        self.batch_service_cycles = batch_service_cycles
        self.max_inflight = max_inflight
        self.slowdown = slowdown
        self.on_complete = on_complete
        self.dispatcher = FairShareDispatcher(
            sim,
            PullBatching(batch_slots),
            self._on_batch,
            shares,
            admission=admission,
            counters=counters,
        )
        # A retry re-admission on an otherwise idle chip must start
        # service immediately — nothing else would pump until the next
        # completion, which on an idle chip never comes.
        self.dispatcher.on_queue_increase = self.pump
        self.alive = True
        self.batches_served = 0
        self.requests_served = 0
        #: Formed but not yet started (only the end-of-run flush and a
        #: failover burst can outpace the service slots).
        self._staged: Deque[Batch] = deque()
        self._inflight: Dict[int, Tuple[Event, Batch]] = {}

    @property
    def outstanding_requests(self) -> int:
        """Live requests this chip owes: queued + retrying + staged +
        in service. The placement load signal."""
        return (
            self.dispatcher.queue_size
            + self.dispatcher.pending_retries
            + sum(batch.real_count for batch in self._staged)
            + sum(batch.real_count for _, batch in self._inflight.values())
        )

    def pump(self) -> None:
        """Start as much staged/queued work as the slots allow."""
        if not self.alive:
            return
        self._start_staged()
        while (
            len(self._inflight) < self.max_inflight
            and self.dispatcher.queue_size
        ):
            # form_one fires _on_batch, which stages and starts it.
            self.dispatcher.form_one()

    def _on_batch(self, batch: Batch) -> None:
        self._staged.append(batch)
        self._start_staged()

    def _start_staged(self) -> None:
        while (
            self.alive
            and self._staged
            and len(self._inflight) < self.max_inflight
        ):
            batch = self._staged.popleft()
            batch.started_cycle = self.sim.now
            event = self.sim.after(
                self.batch_service_cycles * self.slowdown,
                lambda b=batch: self._finish(b),
            )
            self._inflight[batch.batch_id] = (event, batch)

    def _finish(self, batch: Batch) -> None:
        self._inflight.pop(batch.batch_id, None)
        batch.complete(self.sim.now)
        self.batches_served += 1
        self.requests_served += batch.real_count
        if self.on_complete is not None:
            self.on_complete(self, batch)
        self.pump()

    def flush(self) -> None:
        """End-of-run drain: form everything still queued (pending
        retries fold back in first); service finishes on the clock."""
        if self.alive:
            self.dispatcher.flush()

    def kill(self) -> List[InferenceRequest]:
        """The chip dies now. Every in-service batch is cancelled and
        every live request evacuated (request-id order) for the router
        to re-admit elsewhere; served tallies stay as they were."""
        self.alive = False
        evacuated: List[InferenceRequest] = []
        for event, batch in self._inflight.values():
            event.cancel()
            evacuated.extend(batch.requests)
        self._inflight.clear()
        for batch in self._staged:
            evacuated.extend(batch.requests)
        self._staged.clear()
        evacuated.extend(self.dispatcher.drain())
        for request in evacuated:
            # Back through admission: the batch it was in never ran.
            request.batched_cycle = None
        evacuated.sort(key=lambda request: request.request_id)
        return evacuated

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract), at serving quiescence
        (no staged or in-service batches; dispatcher drained)."""
        if self._staged or self._inflight:
            raise SnapshotError(
                f"chip {self.chip_id} has {len(self._staged)} staged and "
                f"{len(self._inflight)} in-service batch(es); snapshot "
                "at a run boundary"
            )
        return {
            "alive": self.alive,
            "batches_served": self.batches_served,
            "requests_served": self.requests_served,
            "dispatcher": self.dispatcher.to_state(),
        }

    def from_state(self, state: Dict[str, Any]) -> None:
        self.alive = bool(state["alive"])
        self.batches_served = int(state["batches_served"])
        self.requests_served = int(state["requests_served"])
        self.dispatcher.from_state(state["dispatcher"])


class FleetRouter:
    """Routes tenant request streams across a fleet of chip servers.

    Attributes:
        sim: The shared simulator all chips run on.
        chips: The fleet, indexed by chip id.
        sketches: Per-tenant end-to-end latency sketches (completed
            requests only; cycles).
    """

    def __init__(
        self,
        sim: Simulator,
        tenants: Sequence[TenantShare],
        fleet_size: int,
        batch_slots: int,
        batch_service_cycles: float,
        seed: int = 0,
        admission: Optional[AdmissionControl] = None,
        fault_plan: Optional[FaultPlan] = None,
        counters: Optional[FaultCounters] = None,
        max_inflight: int = 2,
        affinity_size: Optional[int] = None,
    ):
        if fleet_size < 1:
            raise ValueError(f"fleet size must be >= 1, got {fleet_size}")
        self.sim = sim
        self.fleet_size = fleet_size
        self.fault_plan = fault_plan
        self.counters = counters if counters is not None else FaultCounters()
        self._tenant_names = [share.name for share in tenants]
        self._rng = np.random.default_rng(
            [seed, zlib.crc32(ROUTER_SUBSTREAM.encode("utf-8"))]
        )
        workers = fault_plan.workers if fault_plan is not None else None
        self.chips = [
            ChipServer(
                sim,
                chip_id,
                tenants,
                batch_service_cycles,
                batch_slots,
                admission=admission,
                counters=self.counters,
                max_inflight=max_inflight,
                slowdown=(
                    workers.slowdown_for(chip_id) if workers is not None else 1.0
                ),
                on_complete=self._on_batch_complete,
            )
            for chip_id in range(fleet_size)
        ]
        # Service-affinity hints: each tenant prefers a contiguous arc
        # of the fleet starting at a crc32-derived offset — placement
        # locality without hard partitioning (the arcs overlap, and a
        # fully-dead arc falls back to the whole alive fleet).
        if affinity_size is None:
            affinity_size = max(2, (fleet_size + 1) // 2)
        affinity_size = min(affinity_size, fleet_size)
        self._affinity: Dict[str, List[int]] = {}
        for share in tenants:
            start = zlib.crc32(share.name.encode("utf-8")) % fleet_size
            self._affinity[share.name] = [
                (start + offset) % fleet_size for offset in range(affinity_size)
            ]
        self._next_request_id = 0
        #: Optional per-tenant *window* sketches: when set (by the
        #: sharded scenario driver), every completion is observed into
        #: these in addition to the cumulative ``sketches`` — the
        #: window's delta, shipped back for ordered merging. Transient
        #: by design: never part of :meth:`to_state`.
        self.window_sketches: Optional[Dict[str, QuantileSketch]] = None
        self.submitted_by_tenant: Dict[str, int] = dict.fromkeys(
            self._tenant_names, 0
        )
        self.completed_by_tenant: Dict[str, int] = dict.fromkeys(
            self._tenant_names, 0
        )
        self.sketches: Dict[str, QuantileSketch] = {
            name: QuantileSketch() for name in self._tenant_names
        }
        self.chips_killed: List[int] = []
        #: Cycle of the most recent batch completion anywhere in the
        #: fleet — the scenario duration measure (``Simulator.run`` may
        #: advance past it popping cancelled-timeout tombstones).
        self.last_completion_cycle = 0.0
        self.failover_redispatched = 0
        self.failover_dropped_by_tenant: Dict[str, int] = dict.fromkeys(
            self._tenant_names, 0
        )
        self.unroutable_by_tenant: Dict[str, int] = dict.fromkeys(
            self._tenant_names, 0
        )

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def _alive_candidates(self, tenant: str) -> List[ChipServer]:
        preferred = [
            self.chips[chip_id]
            for chip_id in self._affinity[tenant]
            if self.chips[chip_id].alive
        ]
        if preferred:
            return preferred
        return [chip for chip in self.chips if chip.alive]

    def _place(self, tenant: str) -> Optional[ChipServer]:
        """Power-of-two-choices, least outstanding work, ties to the
        lower chip id. ``None`` when every chip is dead."""
        candidates = self._alive_candidates(tenant)
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]
        first, second = self._rng.choice(
            len(candidates), size=2, replace=False
        )
        pair = (candidates[int(first)], candidates[int(second)])
        return min(
            pair, key=lambda chip: (chip.outstanding_requests, chip.chip_id)
        )

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------

    def submit(self, tenant: str) -> Optional[InferenceRequest]:
        """A tenant request arrives now; place it on a chip. Returns
        ``None`` (counted ``unroutable``) only with the fleet dead."""
        if tenant not in self.submitted_by_tenant:
            raise ValueError(
                f"unknown tenant {tenant!r}; "
                f"registered: {self._tenant_names}"
            )
        chip = self._place(tenant)
        if chip is None:
            self.unroutable_by_tenant[tenant] += 1
            return None
        request = InferenceRequest(
            request_id=self._next_request_id,
            arrival_cycle=self.sim.now,
            tenant=tenant,
        )
        self._next_request_id += 1
        self.submitted_by_tenant[tenant] += 1
        chip.dispatcher.inject(request)
        chip.pump()
        return request

    def _on_batch_complete(self, chip: ChipServer, batch: Batch) -> None:
        self.last_completion_cycle = self.sim.now
        for request in batch.requests:
            assert request.tenant is not None
            self.sketches[request.tenant].observe(request.latency_cycles)
            if self.window_sketches is not None:
                self.window_sketches[request.tenant].observe(
                    request.latency_cycles
                )
            self.completed_by_tenant[request.tenant] += 1

    # ------------------------------------------------------------------
    # Chip failure
    # ------------------------------------------------------------------

    def kill_keys(self) -> Dict[str, "Any"]:
        """Key → callback for every plan kill event, ``serve.kill.<id>``.

        The kill events are **keyed** so a mid-run fleet snapshot can
        serialize them; a restoring driver passes this mapping (built
        on the new router) to :meth:`repro.sim.engine.Simulator.
        from_state` to re-arm the un-fired kills bit-exactly.
        """
        if self.fault_plan is None:
            return {}
        return {
            f"serve.kill.{chip_id}": (
                lambda cid=chip_id: self.kill_chip(cid)
            )
            for chip_id in self.fault_plan.workers.crashed
            if 0 <= chip_id < self.fleet_size
        }

    def schedule_kills(self, horizon_cycles: float) -> None:
        """Arm one kill event per crashed worker id in the fault plan,
        at a plan-seeded cycle inside :data:`KILL_WINDOW`."""
        if self.fault_plan is None:
            return
        keys = self.kill_keys()
        for chip_id in self.fault_plan.workers.crashed:
            if not 0 <= chip_id < self.fleet_size:
                continue
            rng = self.fault_plan.rng(CHIP_KILL_SUBSTREAM, chip_id)
            low, high = KILL_WINDOW
            kill_cycle = float(rng.uniform(low, high)) * horizon_cycles
            key = f"serve.kill.{chip_id}"
            self.sim.at(kill_cycle, keys[key], key=key)

    def kill_chip(self, chip_id: int) -> None:
        """Kill a chip now and fail its live requests over through
        admission on the surviving fleet."""
        chip = self.chips[chip_id]
        if not chip.alive:
            return
        evacuated = chip.kill()
        self.chips_killed.append(chip_id)
        self.counters.workers_crashed += 1
        for request in evacuated:
            assert request.tenant is not None
            self.failover_redispatched += 1
            target = self._place(request.tenant)
            if target is None:
                request.rejected = True
                self.counters.rejected_requests += 1
                self.failover_dropped_by_tenant[request.tenant] += 1
                continue
            target.dispatcher.inject(request)
            target.pump()

    # ------------------------------------------------------------------
    # Drain / aggregate
    # ------------------------------------------------------------------

    @property
    def outstanding_requests(self) -> int:
        return sum(chip.outstanding_requests for chip in self.chips)

    @property
    def alive_chips(self) -> int:
        return sum(1 for chip in self.chips if chip.alive)

    @property
    def failover_dropped(self) -> int:
        return sum(self.failover_dropped_by_tenant.values())

    @property
    def unroutable(self) -> int:
        return sum(self.unroutable_by_tenant.values())

    def flush(self) -> None:
        """End-of-run drain on every surviving chip."""
        for chip in self.chips:
            chip.flush()

    def shed_by_tenant(self) -> Dict[str, int]:
        """Fleet-wide per-tenant shed totals (admission + failover)."""
        totals = dict.fromkeys(self._tenant_names, 0)
        for chip in self.chips:
            for name, count in chip.dispatcher.shed_by_tenant.items():
                totals[name] += count
        return totals

    def timed_out_by_tenant(self) -> Dict[str, int]:
        totals = dict.fromkeys(self._tenant_names, 0)
        for chip in self.chips:
            for name, count in chip.dispatcher.timed_out_by_tenant.items():
                totals[name] += count
        return totals

    # ------------------------------------------------------------------
    # Snapshot (repro.state contract)
    # ------------------------------------------------------------------

    def to_state(self) -> Dict[str, Any]:
        """Snapshot (``repro.state`` contract), at fleet quiescence.

        Captures the placement RNG position, every chip's state, the
        per-tenant sketches and the failover tallies; refused while any
        chip still owes requests (their service closures are live sim
        events a restore cannot re-create bit-exactly).
        """
        if self.outstanding_requests:
            raise SnapshotError(
                f"fleet router has {self.outstanding_requests} outstanding "
                "request(s); snapshot at a run boundary (after flush)"
            )
        return {
            "rng": rng_state(self._rng),
            "next_request_id": self._next_request_id,
            "chips": [chip.to_state() for chip in self.chips],
            "sketches": {
                name: self.sketches[name].to_state()
                for name in self._tenant_names
            },
            "submitted_by_tenant": dict(self.submitted_by_tenant),
            "completed_by_tenant": dict(self.completed_by_tenant),
            "chips_killed": list(self.chips_killed),
            "last_completion_cycle": self.last_completion_cycle,
            "failover_redispatched": self.failover_redispatched,
            "failover_dropped_by_tenant": dict(self.failover_dropped_by_tenant),
            "unroutable_by_tenant": dict(self.unroutable_by_tenant),
        }

    def from_state(self, state: Dict[str, Any]) -> None:
        chips = state["chips"]
        if len(chips) != len(self.chips):
            raise ValueError(
                f"snapshot has {len(chips)} chip(s), fleet has "
                f"{len(self.chips)}"
            )
        restore_rng(self._rng, state["rng"])
        self._next_request_id = int(state["next_request_id"])
        for chip, chip_state in zip(self.chips, chips):
            chip.from_state(chip_state)
        self.sketches = {
            name: QuantileSketch.from_state(state["sketches"][name])
            for name in self._tenant_names
        }
        self.submitted_by_tenant = {
            name: int(state["submitted_by_tenant"][name])
            for name in self._tenant_names
        }
        self.completed_by_tenant = {
            name: int(state["completed_by_tenant"][name])
            for name in self._tenant_names
        }
        self.chips_killed = [int(chip_id) for chip_id in state["chips_killed"]]
        self.last_completion_cycle = float(state["last_completion_cycle"])
        self.failover_redispatched = int(state["failover_redispatched"])
        self.failover_dropped_by_tenant = {
            name: int(state["failover_dropped_by_tenant"][name])
            for name in self._tenant_names
        }
        self.unroutable_by_tenant = {
            name: int(state["unroutable_by_tenant"][name])
            for name in self._tenant_names
        }
