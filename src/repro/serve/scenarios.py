"""The tenant-mix scenario matrix behind ``python -m repro serve``.

One scenario is one fleet size: the same tenant mix (arrival rates
scaled per chip) is driven through a :class:`repro.serve.router.
FleetRouter` under the scenario's chip-kill fault plan, and the run is
summarized per SLO class — sustained RPS and p50/p99/p999 against each
class's objective. Every scenario executes **twice** from its seed and
the two summaries are compared as canonical JSON, so the emitted
``repro.serve/fleet-report/v1`` artifact doubles as a determinism
self-check (the same discipline as :mod:`repro.faults.chaos`).

Scenario specs are pure data (tenant dicts, calibration numbers, a
:meth:`repro.faults.plan.FaultPlan.to_dict` plan), so the matrix fans
out unchanged across :class:`repro.exec.JobRunner` workers as
``serve.fleet_scenario`` jobs — byte-identical serial or parallel.
"""

import json
import zlib
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.report import jsonable
from repro.obs.sketch import QuantileSketch
from repro.serve.classes import TenantSpec, service_class
from repro.serve.report import SCHEMA_ID, FleetReport, validate_fleet_report

#: Design point every scenario calibrates from (same as the chaos
#: matrix): one probe accelerator turns class multiples into cycles.
LATENCY_CLASS = "500us"

#: Default fleet-size sweep for the scenario matrix.
DEFAULT_FLEET_SIZES = (1, 2, 4, 8)

#: Requests driven per chip per scenario — the offered-load *duration*
#: knob; rates come from the tenant mix.
DEFAULT_REQUESTS_PER_CHIP = 320

#: Arrival-process substream label (crc32-keyed per tenant index).
ARRIVALS_SUBSTREAM = "serve.arrivals"

#: Every 8th chip starting at 1 dies mid-run (``KILL_WINDOW``), so any
#: fleet of 2+ chips exercises failover while fleet 1 stays clean.
KILL_STRIDE = 8

#: The default three-tenant mix, cycled (with ``-N`` suffixes) when
#: more tenants are requested. ``bulk`` alone offers a full chip's
#: capacity — the standing flash crowd the fair-share weights must
#: contain.
DEFAULT_TENANT_CYCLE = (
    ("interactive", "latency-critical", 0.25),
    ("bulk", "best-effort", 1.0),
    ("trainer", "batch-training", 0.35),
)


def default_tenants(count: int = 3) -> List[TenantSpec]:
    """The standard tenant mix, cycled out to ``count`` tenants."""
    if count < 1:
        raise ValueError(f"need at least one tenant, got {count}")
    tenants: List[TenantSpec] = []
    for index in range(count):
        name, cls, fraction = DEFAULT_TENANT_CYCLE[
            index % len(DEFAULT_TENANT_CYCLE)
        ]
        if index >= len(DEFAULT_TENANT_CYCLE):
            name = f"{name}-{index // len(DEFAULT_TENANT_CYCLE) + 1}"
        tenants.append(TenantSpec(name, cls, fraction))
    return tenants


def _simulate(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """One seeded fleet run from a pure-data spec → one curve point."""
    # Heavy imports stay inside the body so job workers pay them once.
    from repro.faults.admission import AdmissionControl
    from repro.faults.counters import FaultCounters
    from repro.faults.plan import FaultPlan
    from repro.serve.router import FleetRouter
    from repro.sim.engine import Simulator
    from repro.workload.loadgen import MixedArrivals, PoissonArrivals

    tenants = [TenantSpec.from_dict(entry) for entry in config["tenants"]]
    fleet_size = int(config["fleet_size"])
    requests = int(config["requests"])
    service_cycles = float(config["batch_service_cycles"])
    slots = int(config["batch_slots"])
    frequency_hz = float(config["frequency_hz"])
    plan = (
        FaultPlan.from_dict(config["plan"])
        if config.get("plan") is not None
        else None
    )

    sim = Simulator()
    counters = FaultCounters()
    shares = [
        spec.slo.share(spec.name, slots, service_cycles) for spec in tenants
    ]
    # The fleet-wide backstop: per-tenant queue bounds and deadlines
    # come from the service classes (the shares); this only arms the
    # one-retry failback path and a far-out default deadline.
    admission = AdmissionControl(
        deadline_cycles=64.0 * service_cycles,
        max_retries=1,
        backoff_cycles=0.5 * service_cycles,
    )
    router = FleetRouter(
        sim,
        shares,
        fleet_size=fleet_size,
        batch_slots=slots,
        batch_service_cycles=service_cycles,
        seed=seed,
        admission=admission,
        fault_plan=plan,
        counters=counters,
    )

    # Offered load: each tenant's rate is its load fraction of one
    # chip's capacity, times the fleet size — constant per-chip
    # utilization across the sweep.
    capacity_per_chip = slots / service_cycles
    rates = [
        spec.load_fraction * capacity_per_chip * fleet_size
        for spec in tenants
    ]
    streams = [
        PoissonArrivals(
            rate,
            seed=[seed, zlib.crc32(ARRIVALS_SUBSTREAM.encode("utf-8")), index],
        )
        for index, rate in enumerate(rates)
    ]
    mixed = MixedArrivals(streams)

    remaining = requests

    def _schedule_next() -> None:
        gap, source = mixed.next_tagged()

        def _fire(source: int = source) -> None:
            nonlocal remaining
            router.submit(tenants[source].name)
            remaining -= 1
            if remaining:
                _schedule_next()

        sim.after(gap, _fire)

    _schedule_next()
    router.schedule_kills(requests / sum(rates))

    sim.run()
    for _ in range(8):
        if not router.outstanding_requests:
            break
        # Tail drain: pull batching leaves sub-batch remainders queued
        # (and retries pending); flush forms them, service completes on
        # the clock. Retries re-armed during a drain need another pass.
        router.flush()
        sim.run()
    if router.outstanding_requests:
        raise RuntimeError(
            f"fleet failed to drain: {router.outstanding_requests} "
            "request(s) still outstanding after flush"
        )

    return _summarize(router, tenants, service_cycles, frequency_hz)


def _summarize(
    router: Any,
    tenants: List[TenantSpec],
    service_cycles: float,
    frequency_hz: float,
) -> Dict[str, Any]:
    """Fold a finished fleet run into one curve point (shared by the
    monolithic scenario and the final window of a sharded one)."""
    fleet_size = router.fleet_size
    shed = router.shed_by_tenant()
    timed_out = router.timed_out_by_tenant()
    duration = router.last_completion_cycle

    # Per-tenant accounting identity — every placed request ended
    # exactly one way. A violation here is a dispatcher bug (the retry
    # leak this module's regression tests pin), not a report problem.
    for spec in tenants:
        name = spec.name
        placed = router.submitted_by_tenant[name]
        ended = (
            router.completed_by_tenant[name]
            + shed[name]
            + timed_out[name]
            + router.failover_dropped_by_tenant[name]
        )
        if placed != ended:
            raise RuntimeError(
                f"tenant {name!r} accounting identity broken: "
                f"submitted {placed} != completed + shed + timed_out "
                f"+ failover_dropped = {ended}"
            )

    classes: Dict[str, Dict[str, Any]] = {}
    for spec in tenants:
        cls = spec.slo
        entry = classes.setdefault(
            cls.name,
            {
                "tenants": [],
                "submitted": 0,
                "completed": 0,
                "shed": 0,
                "timed_out": 0,
                "failover_dropped": 0,
                "unroutable": 0,
                "slo_cycles": cls.slo_cycles(service_cycles),
                "_sketch": QuantileSketch(),
            },
        )
        entry["tenants"].append(spec.name)
        entry["submitted"] += router.submitted_by_tenant[spec.name]
        entry["completed"] += router.completed_by_tenant[spec.name]
        entry["shed"] += shed[spec.name]
        entry["timed_out"] += timed_out[spec.name]
        entry["failover_dropped"] += router.failover_dropped_by_tenant[
            spec.name
        ]
        entry["unroutable"] += router.unroutable_by_tenant[spec.name]
        entry["_sketch"].merge_state(router.sketches[spec.name].to_state())
    for entry in classes.values():
        sketch = entry.pop("_sketch")
        completed = entry["completed"]
        if completed:
            entry["p50_cycles"] = sketch.quantile(50)
            entry["p99_cycles"] = sketch.quantile(99)
            entry["p999_cycles"] = sketch.quantile(99.9)
        else:
            entry["p50_cycles"] = None
            entry["p99_cycles"] = None
            entry["p999_cycles"] = None
        entry["slo_met"] = (
            entry["p99_cycles"] is not None
            and entry["p99_cycles"] <= entry["slo_cycles"]
        )
        entry["sustained_rps"] = completed / duration * frequency_hz

    return {
        "fleet_size": fleet_size,
        "duration_cycles": duration,
        "totals": {
            "submitted": sum(router.submitted_by_tenant.values()),
            "completed": sum(router.completed_by_tenant.values()),
            "shed": sum(shed.values()),
            "timed_out": sum(timed_out.values()),
            "failover_redispatched": router.failover_redispatched,
            "failover_dropped": router.failover_dropped,
            "unroutable": router.unroutable,
            "chips_killed": len(router.chips_killed),
        },
        "classes": classes,
    }


def simulate_scenario_window(
    config: Dict[str, Any],
    seed: int,
    *,
    index: int,
    windows: int,
    resume: Optional[Dict[str, Any]] = None,
    collect_window_sketches: bool = False,
) -> Dict[str, Any]:
    """Run arrival window ``index`` of a ``windows``-way split of one
    fleet scenario (the sharded executor's serve unit of work).

    The windowed schedule is a canonical run of its own: window ``k``
    fires arrivals up to the cumulative quota ``requests·(k+1) //
    windows``, drains the fleet to zero outstanding requests (in
    bounded slices, so kill events armed for later cycles never fire
    early), and snapshots ``(sim, router, counters, arrivals,
    remaining)``. The arrival chain carries no live event across a
    boundary — the next window redraws its first gap from the restored
    mixed stream — and the plan's kill events are **keyed**, so they
    re-arm bit-exactly through ``Simulator.from_state``. Forward pass
    and replay workers both execute this same function on fresh
    objects, which is what makes the phases agree byte-for-byte.

    Returns ``{"payload", "summary", "window_sketches"?,
    "cumulative_sketches"?}`` — ``summary`` is the curve point, only
    from the final window; ``window_sketches`` (when requested) are
    this window's per-tenant latency deltas for the ordered merge.
    """
    from repro.faults.admission import AdmissionControl
    from repro.faults.counters import FaultCounters
    from repro.faults.plan import FaultPlan
    from repro.serve.router import FleetRouter
    from repro.sim.engine import Simulator
    from repro.workload.loadgen import MixedArrivals, PoissonArrivals

    if windows < 1:
        raise ValueError(f"need at least one window, got {windows}")
    if not 0 <= index < windows:
        raise ValueError(f"window index {index} outside [0, {windows})")
    if (resume is None) != (index == 0):
        raise ValueError(
            "window 0 starts fresh (resume=None); every later window "
            "requires its predecessor's boundary payload"
        )

    tenants = [TenantSpec.from_dict(entry) for entry in config["tenants"]]
    fleet_size = int(config["fleet_size"])
    requests = int(config["requests"])
    service_cycles = float(config["batch_service_cycles"])
    slots = int(config["batch_slots"])
    frequency_hz = float(config["frequency_hz"])
    plan = (
        FaultPlan.from_dict(config["plan"])
        if config.get("plan") is not None
        else None
    )

    counters = FaultCounters()
    shares = [
        spec.slo.share(spec.name, slots, service_cycles) for spec in tenants
    ]
    admission = AdmissionControl(
        deadline_cycles=64.0 * service_cycles,
        max_retries=1,
        backoff_cycles=0.5 * service_cycles,
    )

    def _build_router(sim: Simulator) -> FleetRouter:
        return FleetRouter(
            sim,
            shares,
            fleet_size=fleet_size,
            batch_slots=slots,
            batch_service_cycles=service_cycles,
            seed=seed,
            admission=admission,
            fault_plan=plan,
            counters=counters,
        )

    if index == 0:
        sim = Simulator()
        router = _build_router(sim)
    else:
        # The un-fired kill events need the router; the router needs
        # the restored simulator. Late-bind through a cell.
        cell: Dict[str, FleetRouter] = {}
        crashed = plan.workers.crashed if plan is not None else ()
        callbacks = {
            f"serve.kill.{cid}": (
                lambda cid=cid: cell["router"].kill_chip(cid)
            )
            for cid in crashed
            if 0 <= cid < fleet_size
        }
        sim = Simulator.from_state(resume["sim"], callbacks)
        router = _build_router(sim)
        cell["router"] = router
        router.from_state(resume["router"])
        counters.from_state(resume["counters"])

    capacity_per_chip = slots / service_cycles
    rates = [
        spec.load_fraction * capacity_per_chip * fleet_size
        for spec in tenants
    ]
    streams = [
        PoissonArrivals(
            rate,
            seed=[seed, zlib.crc32(ARRIVALS_SUBSTREAM.encode("utf-8")), index_],
        )
        for index_, rate in enumerate(rates)
    ]
    mixed = MixedArrivals(streams)
    if index == 0:
        remaining = requests
    else:
        mixed.from_state(resume["arrivals"])
        remaining = int(resume["remaining"])

    if collect_window_sketches:
        router.window_sketches = {
            spec.name: QuantileSketch() for spec in tenants
        }

    quota = (requests * (index + 1)) // windows
    stop_at = requests - quota

    def _schedule_next() -> None:
        gap, source = mixed.next_tagged()

        def _fire(source: int = source) -> None:
            nonlocal remaining
            router.submit(tenants[source].name)
            remaining -= 1
            if remaining > stop_at:
                _schedule_next()

        sim.after(gap, _fire)

    if remaining > stop_at:
        _schedule_next()
    if index == 0:
        # Same insertion order as the monolithic run: first arrival,
        # then the keyed kill events.
        router.schedule_kills(requests / sum(rates))

    # Run the window's arrival chain to its quota, then drain the
    # fleet to quiescence — in bounded slices either way, so a kill
    # event armed for a later cycle is never popped early by an
    # unbounded run. One slice is the admission deadline: the longest
    # a placed request can stay outstanding without a state change.
    drain_slice = 64.0 * service_cycles
    while remaining > stop_at:
        if sim.peek() is None:
            raise RuntimeError(
                "arrival chain drained before reaching the window quota"
            )
        sim.run(until=sim.now + drain_slice)
    for _ in range(64):
        if not router.outstanding_requests:
            break
        router.flush()
        sim.run(until=sim.now + drain_slice)
    if router.outstanding_requests:
        raise RuntimeError(
            f"fleet failed to drain: {router.outstanding_requests} "
            "request(s) still outstanding at the window boundary"
        )

    summary = None
    cumulative_sketches = None
    if index == windows - 1:
        # Post-traffic events (kills armed beyond the last completion)
        # fire now, exactly as the monolithic run's final drain does.
        sim.run()
        summary = _summarize(router, tenants, service_cycles, frequency_hz)
        cumulative_sketches = {
            spec.name: router.sketches[spec.name].to_state()
            for spec in tenants
        }

    payload = {
        "sim": sim.to_state(),
        "router": router.to_state(),
        "counters": counters.to_state(),
        "arrivals": mixed.to_state(),
        "remaining": remaining,
    }
    result: Dict[str, Any] = {"payload": payload, "summary": summary}
    if collect_window_sketches:
        result["window_sketches"] = {
            name: sketch.to_state()
            for name, sketch in router.window_sketches.items()
        }
        if cumulative_sketches is not None:
            result["cumulative_sketches"] = cumulative_sketches
    return result


def _canonical(point: Dict[str, Any]) -> str:
    return json.dumps(jsonable(point), sort_keys=True, allow_nan=False)


def run_scenario(config: Dict[str, Any], seed: int) -> Dict[str, Any]:
    """Execute one fleet-size scenario from pure data — the
    ``serve.fleet_scenario`` job. Runs the simulation twice and stamps
    the curve point with its double-run determinism verdict."""
    first = _simulate(config, seed)
    second = _simulate(config, seed)
    first["reproducible"] = _canonical(first) == _canonical(second)
    return first


def _map_scenarios(
    specs: List[Dict[str, Any]], seed: int, executor: Optional[Any]
) -> List[Dict[str, Any]]:
    """Run scenario specs, in order — inline, or fanned out as
    ``serve.fleet_scenario`` jobs. Both paths execute
    :func:`run_scenario` on identical data, so the report is
    byte-identical either way."""
    if executor is None:
        return [run_scenario(spec, seed) for spec in specs]
    from repro.exec.jobs import Job

    return executor.map(
        [Job("serve.fleet_scenario", spec, seed=seed) for spec in specs]
    )


def run(
    fleet_sizes: Sequence[int] = DEFAULT_FLEET_SIZES,
    tenants: Optional[Sequence[TenantSpec]] = None,
    requests_per_chip: int = DEFAULT_REQUESTS_PER_CHIP,
    seed: int = 7,
    executor: Optional[Any] = None,
    shards: int = 1,
) -> FleetReport:
    """Execute the tenant-mix matrix and return the validated report.

    Args:
        fleet_sizes: Strictly increasing fleet sizes to sweep.
        tenants: The tenant mix (default: :func:`default_tenants`).
        requests_per_chip: Measured requests per chip per scenario.
        seed: Base seed for arrivals, placement, and kill times.
        executor: Optional :class:`repro.exec.JobRunner`; scenarios
            (independent by construction) fan out across workers.
        shards: With ``shards > 1`` each scenario runs as a
            W=``shards`` snapshot-sharded simulation whose window jobs
            fan out across the executor (:mod:`repro.exec.shard`); the
            curve point's ``reproducible`` flag then reports the
            digest-chain + sketch-merge cross-check instead of the
            monolithic double-run self-check.
    """
    from repro.core.equinox import EquinoxAccelerator
    from repro.dse.table1 import equinox_configuration
    from repro.faults.plan import FaultPlan, WorkerFaultSpec
    from repro.models.lstm import deepbench_lstm

    sizes = [int(size) for size in fleet_sizes]
    if not sizes or sizes != sorted(set(sizes)) or sizes[0] < 1:
        raise ValueError(
            f"fleet sizes must be strictly increasing positive ints, "
            f"got {list(fleet_sizes)}"
        )
    if requests_per_chip < 1:
        raise ValueError(
            f"requests_per_chip must be >= 1, got {requests_per_chip}"
        )
    mix = list(tenants) if tenants is not None else default_tenants()

    config = equinox_configuration(LATENCY_CLASS)
    probe = EquinoxAccelerator(config, deepbench_lstm())
    calibration = {
        "latency_class": LATENCY_CLASS,
        "batch_service_cycles": probe.batch_service_cycles(),
        "batch_slots": probe.batch_slots,
        "frequency_hz": config.frequency_hz,
    }

    def _plan(fleet_size: int) -> Optional[Dict[str, Any]]:
        crashed = tuple(range(1, fleet_size, KILL_STRIDE))
        if not crashed:
            return None
        return FaultPlan(
            seed=seed, workers=WorkerFaultSpec(crashed=crashed)
        ).to_dict()

    specs = [
        {
            "fleet_size": size,
            "requests": requests_per_chip * size,
            "tenants": [spec.to_dict() for spec in mix],
            "plan": _plan(size),
            "batch_service_cycles": calibration["batch_service_cycles"],
            "batch_slots": calibration["batch_slots"],
            "frequency_hz": calibration["frequency_hz"],
        }
        for size in sizes
    ]
    if shards > 1:
        from repro.exec.shard import run_scenario_sharded

        curve = [
            run_scenario_sharded(spec, seed, shards, executor=executor)
            for spec in specs
        ]
    else:
        curve = _map_scenarios(specs, seed, executor)

    report = FleetReport(
        seed=seed,
        tenants=[spec.to_dict() for spec in mix],
        service_classes={
            name: service_class(name).to_dict()
            for name in dict.fromkeys(spec.service_class for spec in mix)
        },
        calibration=calibration,
        fault_plan=specs[-1]["plan"],
        curve=curve,
    )
    problems = validate_fleet_report(report.to_dict())
    if problems:
        raise RuntimeError(
            "fleet report failed self-validation: " + "; ".join(problems[:5])
        )
    return report


def render(report: FleetReport) -> str:
    """Format the RPS/latency-vs-fleet-size table per SLO class."""
    calibration = report.calibration
    lines = [
        f"Fleet serving matrix (seed={report.seed}, "
        f"{len(report.tenants)} tenant(s), "
        f"design point {calibration.get('latency_class')}) — "
        f"schema {SCHEMA_ID}",
        "",
        f"{'fleet':>5} {'class':<17} {'rps':>12} {'p50 (cyc)':>12} "
        f"{'p99 (cyc)':>12} {'p999 (cyc)':>12} {'slo (cyc)':>12} "
        f"{'met':>4} {'shed':>6} {'kill':>5} {'repro':>6}",
    ]
    lines.append("-" * len(lines[-1]))

    def _cell(value: Any) -> str:
        return "—" if value is None else f"{value:12.0f}"

    for point in report.curve:
        killed = point["totals"]["chips_killed"]
        repro = "ok" if point.get("reproducible") else "FAIL"
        for name in sorted(point["classes"]):
            entry = point["classes"][name]
            lines.append(
                f"{point['fleet_size']:>5} {name:<17} "
                f"{entry['sustained_rps']:>12.1f} "
                f"{_cell(entry['p50_cycles']):>12} "
                f"{_cell(entry['p99_cycles']):>12} "
                f"{_cell(entry['p999_cycles']):>12} "
                f"{entry['slo_cycles']:>12.0f} "
                f"{'yes' if entry['slo_met'] else 'NO':>4} "
                f"{entry['shed']:>6d} {killed:>5d} {repro:>6}"
            )
    bad = [
        str(point["fleet_size"])
        for point in report.curve
        if not point.get("reproducible")
    ]
    lines.append("")
    lines.append(
        "determinism self-check: every scenario ran twice from its seed — "
        + (
            "all summaries identical"
            if not bad
            else f"MISMATCH at fleet size(s) {', '.join(bad)}"
        )
    )
    return "\n".join(lines)
