"""Discrete-event simulation kernel.

The paper evaluates Equinox with an in-house cycle-accurate simulator
validated against RTL traces. This package is the reproduction's
equivalent: a deterministic event-driven kernel with cycle-resolution
timestamps, serial resources with priority queueing (execution units,
buffer ports), bandwidth channels (DRAM/host links), and statistics
collectors (tail latency, throughput, per-category cycle accounting).

The hardware models in :mod:`repro.hw` and the Equinox front-end in
:mod:`repro.core` are state machines driven by this kernel.
"""

from repro.sim.engine import Simulator, Event
from repro.sim.resources import SerialResource, BandwidthChannel, PortSet
from repro.sim.stats import LatencyStats, CycleAccounting, ThroughputMeter

__all__ = [
    "Simulator",
    "Event",
    "SerialResource",
    "BandwidthChannel",
    "PortSet",
    "LatencyStats",
    "CycleAccounting",
    "ThroughputMeter",
]
