"""Event queue and simulator kernel.

Time is measured in *cycles* of the accelerator clock, stored as floats
so that sub-cycle quantities (e.g. DRAM latencies converted from
nanoseconds) do not accumulate rounding error. Events at the same
timestamp execute in scheduling order, which keeps runs deterministic.
"""

import heapq
import itertools
from typing import Any, Callable, Optional

#: Values :meth:`Simulator.run` returns to say why it stopped.
STOP_DRAINED = "drained"
STOP_UNTIL = "until"
STOP_MAX_EVENTS = "max_events"


class Event:
    """A scheduled callback.

    Events compare by (time, sequence number) so that simultaneous
    events fire in the order they were scheduled. Cancelled events are
    skipped when popped; the simulator additionally compacts the heap
    when cancelled entries outnumber live ones, so cancel-heavy
    workloads (watchdogs, speculative timeouts) keep O(live) memory
    instead of leaking every tombstone until drain.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "_sim")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._sim: Optional["Simulator"] = None  # set while in the heap

    def cancel(self) -> None:
        """Prevent this event from firing."""
        if self.cancelled:
            return
        self.cancelled = True
        # Only a cancel of an event still sitting in a heap creates a
        # tombstone; events already popped (or compacted out) have been
        # detached and must not skew the tombstone count.
        if self._sim is not None:
            self._sim._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """A deterministic discrete-event simulator.

    Example:
        >>> sim = Simulator()
        >>> fired = []
        >>> _ = sim.at(10, lambda: fired.append(sim.now))
        >>> sim.run()
        >>> fired
        [10.0]
    """

    #: Below this heap size compaction is pointless (the scan costs more
    #: than the tombstones).
    _COMPACT_MIN_SIZE = 64

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._cancelled_in_heap = 0
        self._profiler: Optional[Any] = None

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (for instrumentation)."""
        return self._events_processed

    @property
    def queue_depth(self) -> int:
        """Live (non-cancelled) events currently in the heap."""
        return len(self._heap) - self._cancelled_in_heap

    def _note_cancelled(self) -> None:
        """Bookkeeping for an in-heap cancel; compacts past ~50% dead.

        Amortized O(1): a compaction scans the whole heap but removes at
        least half of it, and the threshold must be re-reached by new
        cancels before the next scan.
        """
        self._cancelled_in_heap += 1
        if (
            len(self._heap) >= self._COMPACT_MIN_SIZE
            and 2 * self._cancelled_in_heap > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify the survivors."""
        live = []
        for event in self._heap:
            if event.cancelled:
                event._sim = None
            else:
                live.append(event)
        heapq.heapify(live)
        self._heap = live
        self._cancelled_in_heap = 0

    def set_profiler(self, profiler: Optional[Any]) -> None:
        """Attach a hot-path profiler (``None`` detaches).

        The profiler (duck-typed; see
        :class:`repro.obs.profile.SimProfiler`) receives
        ``before_event(event, heap_depth)`` / ``after_event(event)``
        around every callback. The kernel itself never reads the wall
        clock — keeping ``repro.sim`` deterministic — so any wall
        timing lives entirely in the hook object.
        """
        self._profiler = profiler

    def at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute ``time``.

        Scheduling in the past raises ``ValueError``: components must
        never rewind the clock.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule at {time} < now {self.now}")
        event = Event(float(time), next(self._seq), callback)
        event._sim = self
        heapq.heappush(self._heap, event)
        return event

    def after(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` after a non-negative ``delay``."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.at(self.now + delay, callback)

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> str:
        """Run events until the queue drains, ``until``, or ``max_events``.

        ``until`` is inclusive: an event scheduled exactly at ``until``
        fires. The clock advance to ``until`` happens **only** on the
        ``until`` and drained stops: when the run stops because the
        event budget ran out the clock stays at the last executed
        event — there may be live events between it and ``until``, so
        advancing would fabricate simulated time that never elapsed
        (and silently skew any windowed statistic computed from
        ``now``).

        Returns the stop reason: :data:`STOP_DRAINED` (queue empty),
        :data:`STOP_UNTIL` (next live event is beyond ``until``) or
        :data:`STOP_MAX_EVENTS` (budget exhausted, **clock not
        advanced**).
        """
        processed = 0
        profiler = self._profiler
        stop = STOP_DRAINED
        while self._heap:
            event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)._sim = None
                self._cancelled_in_heap -= 1
                continue
            if until is not None and event.time > until:
                stop = STOP_UNTIL
                break
            if max_events is not None and processed >= max_events:
                return STOP_MAX_EVENTS
            heapq.heappop(self._heap)._sim = None
            self.now = event.time
            if profiler is None:
                event.callback()
            else:
                profiler.before_event(event, len(self._heap))
                event.callback()
                profiler.after_event(event)
            self._events_processed += 1
            processed += 1
        if until is not None and self.now < until:
            self.now = float(until)
        return stop

    def every(
        self, interval: float, callback: Callable[[], None]
    ) -> "RecurringEvent":
        """Schedule ``callback`` every ``interval`` cycles until cancelled.

        The first firing is one interval from now. Recurring events are
        the watchdog primitive of the fault-tolerance layer (the SLO
        guard samples backlog on one); they reschedule themselves, so a
        simulation holding a live recurring event never drains — cancel
        it when the observed experiment ends.
        """
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        return RecurringEvent(self, float(interval), callback)

    def peek(self) -> Optional[float]:
        """Timestamp of the next live event, or None when drained."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)._sim = None
            self._cancelled_in_heap -= 1
        return self._heap[0].time if self._heap else None


class RecurringEvent:
    """A self-rescheduling periodic callback (see :meth:`Simulator.every`).

    ``cancel`` stops future firings; a firing in flight at cancel time
    is skipped via the underlying event's cancellation.
    """

    __slots__ = ("sim", "interval", "callback", "cancelled", "_event")

    def __init__(
        self, sim: Simulator, interval: float, callback: Callable[[], None]
    ):
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.cancelled = False
        self._event = sim.after(interval, self._fire)

    def _fire(self) -> None:
        if self.cancelled:
            return
        self.callback()
        # The callback may have cancelled *this* recurring event — at
        # that point self._event is the already-popped event whose
        # cancel() is a no-op, so an unconditional reschedule would
        # push one more live event and keep the heap from draining.
        if self.cancelled:
            return
        self._event = self.sim.after(self.interval, self._fire)

    def cancel(self) -> None:
        self.cancelled = True
        self._event.cancel()
